//! In-memory representation of the reduced AVU-GSR matrix and known terms.
//!
//! The storage mirrors the production arrays described in §III-B of the
//! paper: coefficient values are stored per block
//! (`systemMatrixAstro/Att/Instr/Glob`), and the sparsity is encoded by
//! `matrixIndexAstro` (start column of the 5 contiguous astrometric
//! non-zeros), `matrixIndexAtt` (offset of the first attitude non-zero
//! inside an axis segment; the 3 per-axis blocks repeat with a stride equal
//! to the attitude degrees of freedom), and `instrCol` (explicit columns of
//! the 6 irregular instrumental non-zeros). The global block has at most a
//! single non-zero per row in the one global column.
//!
//! Constraint rows (appended after the `n_stars × obs_per_star` observation
//! rows) carry only attitude coefficients; see [`crate::constraints`].

use std::sync::OnceLock;

use crate::ell::EllSystem;
#[cfg(test)]
use crate::layout::BlockKind;
use crate::layout::{ColumnBlocks, SystemLayout};
use crate::{ASTRO_PARAMS_PER_STAR, ATT_AXES, ATT_PARAMS_PER_AXIS, INSTR_PARAMS_PER_ROW};

/// Number of attitude coefficients stored per row (3 axes × 4).
pub const ATT_NNZ_PER_ROW: usize = (ATT_AXES * ATT_PARAMS_PER_AXIS) as usize;
/// Number of astrometric coefficients stored per observation row.
pub const ASTRO_NNZ_PER_ROW: usize = ASTRO_PARAMS_PER_STAR as usize;
/// Number of instrumental coefficients stored per observation row.
pub const INSTR_NNZ_PER_ROW: usize = INSTR_PARAMS_PER_ROW as usize;

/// The reduced sparse system `A x = b`.
///
/// All index arrays use *block-local* offsets; absolute columns are obtained
/// through [`ColumnBlocks`]. Invariants are enforced by
/// [`SparseSystem::from_parts`] and preserved by the read-only API.
#[derive(Debug, Clone)]
pub struct SparseSystem {
    layout: SystemLayout,
    cols: ColumnBlocks,
    /// Astrometric coefficients, `n_obs_rows × 5`, row-major.
    values_astro: Vec<f64>,
    /// Attitude coefficients, `n_rows × 12`, row-major
    /// (axis-major within a row: `[axis0 k0..k3, axis1 k0..k3, axis2 ...]`).
    values_att: Vec<f64>,
    /// Instrumental coefficients, `n_obs_rows × 6`, row-major.
    values_instr: Vec<f64>,
    /// Global coefficients, `n_obs_rows × n_glob_params`.
    values_glob: Vec<f64>,
    /// Start column of the astrometric block of each observation row
    /// (always `5 × star`, stored explicitly as in production).
    matrix_index_astro: Vec<u64>,
    /// Offset of the first attitude non-zero inside each axis segment,
    /// per row (observations and constraints), in `0..=dof-4`.
    matrix_index_att: Vec<u64>,
    /// Instrument-block-local columns of the 6 instrumental non-zeros,
    /// `n_obs_rows × 6`, strictly increasing within a row.
    instr_col: Vec<u32>,
    /// Known terms `b`, `n_rows`.
    known_terms: Vec<f64>,
    /// Lazily built ELL (slot-major) mirror, shared by layout-aware
    /// kernels. Reset by every mutating method so it can never go stale.
    ell: OnceLock<EllSystem>,
}

impl SparseSystem {
    /// Assemble a system from raw arrays, validating every structural
    /// invariant (lengths, index bounds, instrument column ordering).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        layout: SystemLayout,
        values_astro: Vec<f64>,
        values_att: Vec<f64>,
        values_instr: Vec<f64>,
        values_glob: Vec<f64>,
        matrix_index_astro: Vec<u64>,
        matrix_index_att: Vec<u64>,
        instr_col: Vec<u32>,
        known_terms: Vec<f64>,
    ) -> Result<Self, SystemError> {
        layout.validate().map_err(SystemError::Layout)?;
        Self::from_parts_impl(
            layout,
            values_astro,
            values_att,
            values_instr,
            values_glob,
            matrix_index_astro,
            matrix_index_att,
            instr_col,
            known_terms,
        )
    }

    /// Assemble a *shard* of a larger system (an MPI rank's slice of the
    /// observations). Identical validation to [`SparseSystem::from_parts`]
    /// except the overdetermined check: a shard shares the attitude /
    /// instrumental / global columns with the other ranks, so locally it
    /// may have fewer rows than columns — the global system remains
    /// overdetermined.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_shard(
        layout: SystemLayout,
        values_astro: Vec<f64>,
        values_att: Vec<f64>,
        values_instr: Vec<f64>,
        values_glob: Vec<f64>,
        matrix_index_astro: Vec<u64>,
        matrix_index_att: Vec<u64>,
        instr_col: Vec<u32>,
        known_terms: Vec<f64>,
    ) -> Result<Self, SystemError> {
        match layout.validate() {
            Ok(()) | Err(crate::layout::LayoutError::Underdetermined { .. }) => {}
            Err(e) => return Err(SystemError::Layout(e)),
        }
        Self::from_parts_impl(
            layout,
            values_astro,
            values_att,
            values_instr,
            values_glob,
            matrix_index_astro,
            matrix_index_att,
            instr_col,
            known_terms,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts_impl(
        layout: SystemLayout,
        values_astro: Vec<f64>,
        values_att: Vec<f64>,
        values_instr: Vec<f64>,
        values_glob: Vec<f64>,
        matrix_index_astro: Vec<u64>,
        matrix_index_att: Vec<u64>,
        instr_col: Vec<u32>,
        known_terms: Vec<f64>,
    ) -> Result<Self, SystemError> {
        let n_obs = layout.n_obs_rows() as usize;
        let n_rows = layout.n_rows() as usize;
        let expect = |name: &'static str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(SystemError::ArrayLength { name, got, want })
            }
        };
        expect(
            "values_astro",
            values_astro.len(),
            n_obs * ASTRO_NNZ_PER_ROW,
        )?;
        expect("values_att", values_att.len(), n_rows * ATT_NNZ_PER_ROW)?;
        expect(
            "values_instr",
            values_instr.len(),
            n_obs * INSTR_NNZ_PER_ROW,
        )?;
        expect(
            "values_glob",
            values_glob.len(),
            n_obs * layout.n_glob_params as usize,
        )?;
        expect("matrix_index_astro", matrix_index_astro.len(), n_obs)?;
        expect("matrix_index_att", matrix_index_att.len(), n_rows)?;
        expect("instr_col", instr_col.len(), n_obs * INSTR_NNZ_PER_ROW)?;
        expect("known_terms", known_terms.len(), n_rows)?;

        for (row, &start) in matrix_index_astro.iter().enumerate() {
            let star = layout.star_of_row(row as u64);
            if start != star * ASTRO_PARAMS_PER_STAR as u64 {
                return Err(SystemError::AstroIndex { row, start, star });
            }
        }
        let max_att_off = layout.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
        for (row, &off) in matrix_index_att.iter().enumerate() {
            if off > max_att_off {
                return Err(SystemError::AttIndex {
                    row,
                    off,
                    max: max_att_off,
                });
            }
        }
        for row in 0..n_obs {
            let cols = &instr_col[row * INSTR_NNZ_PER_ROW..(row + 1) * INSTR_NNZ_PER_ROW];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SystemError::InstrColumnOrder { row });
                }
            }
            if u64::from(cols[INSTR_NNZ_PER_ROW - 1]) >= layout.n_instr_params {
                return Err(SystemError::InstrColumnRange { row });
            }
        }

        Ok(SparseSystem {
            cols: layout.columns(),
            layout,
            values_astro,
            values_att,
            values_instr,
            values_glob,
            matrix_index_astro,
            matrix_index_att,
            instr_col,
            known_terms,
            ell: OnceLock::new(),
        })
    }

    /// The ELL (slot-major) mirror, built on first use and cached.
    ///
    /// Layout-aware kernels call this per section; the transpose cost is
    /// paid once per system (and re-paid only after a mutation, which
    /// resets the cache).
    pub fn ell(&self) -> &EllSystem {
        self.ell.get_or_init(|| EllSystem::from_system(self))
    }

    /// The layout this system was built from.
    pub fn layout(&self) -> &SystemLayout {
        &self.layout
    }

    /// Column block offsets.
    pub fn columns(&self) -> ColumnBlocks {
        self.cols
    }

    /// Total rows (observations + constraints).
    pub fn n_rows(&self) -> usize {
        self.layout.n_rows() as usize
    }

    /// Observation rows only.
    pub fn n_obs_rows(&self) -> usize {
        self.layout.n_obs_rows() as usize
    }

    /// Total unknowns.
    pub fn n_cols(&self) -> usize {
        self.layout.n_cols() as usize
    }

    /// Known terms `b` (length [`SparseSystem::n_rows`]).
    pub fn known_terms(&self) -> &[f64] {
        &self.known_terms
    }

    /// Replace the known terms (used by the generator to install
    /// `b = A x_true + noise`). Length must match.
    pub fn set_known_terms(&mut self, b: Vec<f64>) {
        assert_eq!(b.len(), self.n_rows(), "known terms length mismatch");
        self.known_terms = b;
        self.ell = OnceLock::new();
    }

    /// Astrometric coefficients of an observation row and the absolute
    /// column of the first of the 5 contiguous entries.
    #[inline]
    pub fn astro_row(&self, row: usize) -> (&[f64], u64) {
        debug_assert!(row < self.n_obs_rows());
        let vals = &self.values_astro[row * ASTRO_NNZ_PER_ROW..(row + 1) * ASTRO_NNZ_PER_ROW];
        (vals, self.cols.astro + self.matrix_index_astro[row])
    }

    /// Attitude coefficients of any row (observation or constraint), and the
    /// block-local offset of the first non-zero within each axis segment.
    #[inline]
    pub fn att_row(&self, row: usize) -> (&[f64], u64) {
        debug_assert!(row < self.n_rows());
        let vals = &self.values_att[row * ATT_NNZ_PER_ROW..(row + 1) * ATT_NNZ_PER_ROW];
        (vals, self.matrix_index_att[row])
    }

    /// Absolute column of attitude entry (`axis`, `k`) for a row whose
    /// axis-segment offset is `off`.
    #[inline]
    pub fn att_col(&self, off: u64, axis: usize, k: usize) -> u64 {
        self.cols.att + axis as u64 * self.layout.n_deg_freedom_att + off + k as u64
    }

    /// Instrumental coefficients and their block-local columns for an
    /// observation row.
    #[inline]
    pub fn instr_row(&self, row: usize) -> (&[f64], &[u32]) {
        debug_assert!(row < self.n_obs_rows());
        let r = row * INSTR_NNZ_PER_ROW..(row + 1) * INSTR_NNZ_PER_ROW;
        (&self.values_instr[r.clone()], &self.instr_col[r])
    }

    /// Global coefficient of an observation row, if the layout solves the
    /// global parameter, together with its absolute column.
    #[inline]
    pub fn glob_row(&self, row: usize) -> Option<(f64, u64)> {
        debug_assert!(row < self.n_obs_rows());
        if self.layout.n_glob_params == 0 {
            None
        } else {
            Some((self.values_glob[row], self.cols.glob))
        }
    }

    /// Iterate over every stored `(absolute column, value)` pair of a row.
    /// Constraint rows yield attitude entries only.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (u64, f64)> + '_ {
        let obs = row < self.n_obs_rows();
        let astro = obs.then(|| {
            let (vals, start) = self.astro_row(row);
            vals.iter()
                .enumerate()
                .map(move |(k, &v)| (start + k as u64, v))
        });
        let (att_vals, att_off) = self.att_row(row);
        let att = att_vals.iter().enumerate().map(move |(i, &v)| {
            let axis = i / ATT_PARAMS_PER_AXIS as usize;
            let k = i % ATT_PARAMS_PER_AXIS as usize;
            (self.att_col(att_off, axis, k), v)
        });
        let instr = obs.then(|| {
            let (vals, cols) = self.instr_row(row);
            vals.iter()
                .zip(cols.iter())
                .map(move |(&v, &c)| (self.cols.instr + u64::from(c), v))
        });
        let glob = obs.then(|| self.glob_row(row)).flatten();
        astro
            .into_iter()
            .flatten()
            .chain(att)
            .chain(instr.into_iter().flatten())
            .chain(glob.map(|(v, c)| (c, v)))
    }

    /// Reference (sequential, obviously-correct) dot product of one row with
    /// a full-length vector `x`. Used as the oracle by every backend test.
    pub fn row_dot(&self, row: usize, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_cols());
        self.row_entries(row)
            .map(|(col, val)| val * x[col as usize])
            .sum()
    }

    /// Reference scatter of `scale ×` one row into a full-length vector
    /// (the transpose-product building block).
    pub fn row_scatter(&self, row: usize, scale: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_cols());
        for (col, val) in self.row_entries(row) {
            out[col as usize] += val * scale;
        }
    }

    /// Column 2-norms of `A`, used to build the Jacobi (column-scaling)
    /// preconditioner of the customized LSQR.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut sq = vec![0.0f64; self.n_cols()];
        for row in 0..self.n_rows() {
            for (col, val) in self.row_entries(row) {
                sq[col as usize] += val * val;
            }
        }
        sq.iter().map(|&s| s.sqrt()).collect()
    }

    /// Raw astrometric value array (row-major, 5 per observation row).
    pub fn values_astro(&self) -> &[f64] {
        &self.values_astro
    }

    /// Raw attitude value array (row-major, 12 per row).
    pub fn values_att(&self) -> &[f64] {
        &self.values_att
    }

    /// Raw instrumental value array (row-major, 6 per observation row).
    pub fn values_instr(&self) -> &[f64] {
        &self.values_instr
    }

    /// Raw global value array (one per observation row, empty if the global
    /// parameter is not solved).
    pub fn values_glob(&self) -> &[f64] {
        &self.values_glob
    }

    /// Raw `matrixIndexAstro` array.
    pub fn matrix_index_astro(&self) -> &[u64] {
        &self.matrix_index_astro
    }

    /// Raw `matrixIndexAtt` array.
    pub fn matrix_index_att(&self) -> &[u64] {
        &self.matrix_index_att
    }

    /// Raw `instrCol` array.
    pub fn instr_col(&self) -> &[u32] {
        &self.instr_col
    }

    /// Scale every stored coefficient in absolute column `col` by `factor`,
    /// returning how many stored entries were touched.
    ///
    /// Scaling column `j` by `s` maps a solution `x` of `A x = b` to a
    /// solution with `x_j / s` — the column-scaling equivariance exploited
    /// by the metamorphic suite in `gaia-verify`. When `s` is a power of
    /// two the products are exact in IEEE-754, so the property can be
    /// asserted bitwise for deterministic backends.
    pub fn scale_column(&mut self, col: u64, factor: f64) -> usize {
        assert!(col < self.cols.end, "column {col} out of range");
        self.ell = OnceLock::new();
        let mut touched = 0usize;
        if col < self.cols.att {
            for row in 0..self.n_obs_rows() {
                let start = self.cols.astro + self.matrix_index_astro[row];
                if (start..start + ASTRO_NNZ_PER_ROW as u64).contains(&col) {
                    self.values_astro[row * ASTRO_NNZ_PER_ROW + (col - start) as usize] *= factor;
                    touched += 1;
                }
            }
        } else if col < self.cols.instr {
            let dof = self.layout.n_deg_freedom_att;
            for row in 0..self.n_rows() {
                let off = self.matrix_index_att[row];
                for axis in 0..ATT_AXES as usize {
                    let seg = self.cols.att + axis as u64 * dof + off;
                    if (seg..seg + ATT_PARAMS_PER_AXIS as u64).contains(&col) {
                        let k = axis * ATT_PARAMS_PER_AXIS as usize + (col - seg) as usize;
                        self.values_att[row * ATT_NNZ_PER_ROW + k] *= factor;
                        touched += 1;
                    }
                }
            }
        } else if col < self.cols.glob {
            let local = (col - self.cols.instr) as u32;
            for row in 0..self.n_obs_rows() {
                let r = row * INSTR_NNZ_PER_ROW..(row + 1) * INSTR_NNZ_PER_ROW;
                if let Some(k) = self.instr_col[r.clone()].iter().position(|&c| c == local) {
                    self.values_instr[r.start + k] *= factor;
                    touched += 1;
                }
            }
        } else {
            for v in &mut self.values_glob {
                *v *= factor;
                touched += 1;
            }
        }
        touched
    }

    /// Apply a row permutation: after the call, row `i` holds what used to
    /// be row `perm[i]` (coefficients, indices, and known term together).
    ///
    /// `perm` must be a bijection on `0..n_rows()` that maps every
    /// observation row to an observation row *of the same star* and every
    /// constraint row to a constraint row — the only reorderings that
    /// preserve the structural invariants enforced by
    /// [`SparseSystem::from_parts`] (the astrometric index of a row is
    /// pinned to its star). Such permutations leave the least-squares
    /// solution unchanged, which is the row-permutation invariance checked
    /// by the metamorphic suite in `gaia-verify`.
    pub fn permute_rows(&mut self, perm: &[usize]) -> Result<(), SystemError> {
        let n_rows = self.n_rows();
        let n_obs = self.n_obs_rows();
        if perm.len() != n_rows {
            return Err(SystemError::ArrayLength {
                name: "perm",
                got: perm.len(),
                want: n_rows,
            });
        }
        let mut seen = vec![false; n_rows];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n_rows || seen[old] {
                return Err(SystemError::Permutation { row: new });
            }
            seen[old] = true;
            let same_side = (new < n_obs) == (old < n_obs);
            let same_star = new >= n_obs
                || self.layout.star_of_row(new as u64) == self.layout.star_of_row(old as u64);
            if !same_side || !same_star {
                return Err(SystemError::Permutation { row: new });
            }
        }
        fn gather<T: Copy>(src: &[T], perm: &[usize], rows: usize, stride: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(rows * stride);
            for &old in &perm[..rows] {
                out.extend_from_slice(&src[old * stride..(old + 1) * stride]);
            }
            out
        }
        self.values_astro = gather(&self.values_astro, perm, n_obs, ASTRO_NNZ_PER_ROW);
        self.values_att = gather(&self.values_att, perm, n_rows, ATT_NNZ_PER_ROW);
        self.values_instr = gather(&self.values_instr, perm, n_obs, INSTR_NNZ_PER_ROW);
        if self.layout.n_glob_params > 0 {
            let g = self.layout.n_glob_params as usize;
            self.values_glob = gather(&self.values_glob, perm, n_obs, g);
        }
        self.matrix_index_astro = gather(&self.matrix_index_astro, perm, n_obs, 1);
        self.matrix_index_att = gather(&self.matrix_index_att, perm, n_rows, 1);
        self.instr_col = gather(&self.instr_col, perm, n_obs, INSTR_NNZ_PER_ROW);
        self.known_terms = gather(&self.known_terms, perm, n_rows, 1);
        self.ell = OnceLock::new();
        Ok(())
    }
}

/// Assembly / validation failures for [`SparseSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The layout itself is invalid.
    Layout(crate::layout::LayoutError),
    /// An array has the wrong length.
    ArrayLength {
        /// Array name.
        name: &'static str,
        /// Provided length.
        got: usize,
        /// Required length.
        want: usize,
    },
    /// `matrixIndexAstro[row]` does not point at the row's star block.
    AstroIndex {
        /// Offending row.
        row: usize,
        /// Stored start column.
        start: u64,
        /// Star the row belongs to.
        star: u64,
    },
    /// `matrixIndexAtt[row]` exceeds the axis segment.
    AttIndex {
        /// Offending row.
        row: usize,
        /// Stored offset.
        off: u64,
        /// Maximum allowed offset.
        max: u64,
    },
    /// Instrument columns of a row are not strictly increasing.
    InstrColumnOrder {
        /// Offending row.
        row: usize,
    },
    /// An instrument column exceeds the instrument block width.
    InstrColumnRange {
        /// Offending row.
        row: usize,
    },
    /// A row permutation is not a star-preserving bijection
    /// (see [`SparseSystem::permute_rows`]).
    Permutation {
        /// First destination row at which the permutation is invalid.
        row: usize,
    },
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Layout(e) => write!(f, "invalid layout: {e}"),
            SystemError::ArrayLength { name, got, want } => {
                write!(f, "array {name} has length {got}, expected {want}")
            }
            SystemError::AstroIndex { row, start, star } => write!(
                f,
                "matrixIndexAstro[{row}] = {start} does not match star {star}"
            ),
            SystemError::AttIndex { row, off, max } => {
                write!(f, "matrixIndexAtt[{row}] = {off} exceeds {max}")
            }
            SystemError::InstrColumnOrder { row } => {
                write!(
                    f,
                    "instrCol entries of row {row} are not strictly increasing"
                )
            }
            SystemError::InstrColumnRange { row } => {
                write!(f, "instrCol entry of row {row} out of range")
            }
            SystemError::Permutation { row } => {
                write!(
                    f,
                    "row permutation is not a star-preserving bijection at row {row}"
                )
            }
        }
    }
}

impl std::error::Error for SystemError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    fn sys() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(7)).generate()
    }

    #[test]
    fn row_entries_counts_match_layout() {
        let s = sys();
        let l = *s.layout();
        for row in 0..s.n_rows() {
            let n = s.row_entries(row).count();
            if row < s.n_obs_rows() {
                assert_eq!(
                    n,
                    ASTRO_NNZ_PER_ROW
                        + ATT_NNZ_PER_ROW
                        + INSTR_NNZ_PER_ROW
                        + l.n_glob_params as usize
                );
            } else {
                assert_eq!(n, ATT_NNZ_PER_ROW);
            }
        }
    }

    #[test]
    fn row_entries_columns_land_in_their_blocks() {
        let s = sys();
        let c = s.columns();
        for row in 0..s.n_obs_rows() {
            let (_, start) = s.astro_row(row);
            assert!(start + 5 <= c.att, "astro block overruns");
            let (_, off) = s.att_row(row);
            for axis in 0..3 {
                for k in 0..4 {
                    let col = s.att_col(off, axis, k);
                    assert!(c.range(BlockKind::Attitude).contains(&col));
                }
            }
            let (_, icols) = s.instr_row(row);
            for &ic in icols {
                assert!(c
                    .range(BlockKind::Instrumental)
                    .contains(&(c.instr + u64::from(ic))));
            }
            if let Some((_, gc)) = s.glob_row(row) {
                assert!(c.range(BlockKind::Global).contains(&gc));
            }
        }
    }

    #[test]
    fn observations_of_one_star_share_the_astro_block() {
        // The block-diagonal property that makes aprod2_astro collision-free
        // when parallelized over stars (§IV).
        let s = sys();
        let l = *s.layout();
        for star in 0..l.n_stars {
            let mut starts = l.rows_of_star(star).map(|r| s.astro_row(r as usize).1);
            let first = starts.next().unwrap();
            assert!(starts.all(|st| st == first));
            assert_eq!(first, star * 5);
        }
    }

    #[test]
    fn row_dot_equals_entry_sum() {
        let s = sys();
        let x: Vec<f64> = (0..s.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        for row in 0..s.n_rows() {
            let manual: f64 = s.row_entries(row).map(|(c, v)| v * x[c as usize]).sum();
            assert_eq!(s.row_dot(row, &x), manual);
        }
    }

    #[test]
    fn from_parts_rejects_bad_lengths() {
        let s = sys();
        let l = *s.layout();
        let err = SparseSystem::from_parts(
            l,
            vec![0.0; 1],
            s.values_att().to_vec(),
            s.values_instr().to_vec(),
            s.values_glob().to_vec(),
            s.matrix_index_astro().to_vec(),
            s.matrix_index_att().to_vec(),
            s.instr_col().to_vec(),
            s.known_terms().to_vec(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SystemError::ArrayLength {
                name: "values_astro",
                ..
            }
        ));
    }

    #[test]
    fn from_parts_rejects_unsorted_instr_cols() {
        let s = sys();
        let l = *s.layout();
        let mut instr = s.instr_col().to_vec();
        instr.swap(0, 1);
        let err = SparseSystem::from_parts(
            l,
            s.values_astro().to_vec(),
            s.values_att().to_vec(),
            s.values_instr().to_vec(),
            s.values_glob().to_vec(),
            s.matrix_index_astro().to_vec(),
            s.matrix_index_att().to_vec(),
            instr,
            s.known_terms().to_vec(),
        )
        .unwrap_err();
        assert!(matches!(err, SystemError::InstrColumnOrder { row: 0 }));
    }

    #[test]
    fn scale_column_scales_exactly_one_column_norm() {
        let base = sys();
        let before = base.column_norms();
        for col in [
            0u64,
            base.columns().att + 1,
            base.columns().instr,
            base.columns().glob,
        ] {
            let mut s = base.clone();
            let touched = s.scale_column(col, 2.0);
            assert!(touched > 0, "column {col} has stored entries");
            let after = s.column_norms();
            for (j, (&a, &b)) in after.iter().zip(before.iter()).enumerate() {
                if j as u64 == col {
                    // ×2 is exact in IEEE-754, and so is sqrt(4y) = 2√y.
                    assert_eq!(a, 2.0 * b, "column {j}");
                } else {
                    assert_eq!(a, b, "column {j} must be untouched");
                }
            }
        }
    }

    #[test]
    fn scale_column_glob_touches_every_observation_row() {
        let mut s = sys();
        let touched = s.scale_column(s.columns().glob, 3.0);
        assert_eq!(touched, s.n_obs_rows());
    }

    #[test]
    fn permute_rows_reorders_row_views_consistently() {
        let base = sys();
        let l = *base.layout();
        let n_obs = base.n_obs_rows();
        let n_rows = base.n_rows();
        // Reverse each star's observations and the constraint block.
        let mut perm: Vec<usize> = Vec::with_capacity(n_rows);
        for star in 0..l.n_stars {
            perm.extend(l.rows_of_star(star).rev().map(|r| r as usize));
        }
        perm.extend((n_obs..n_rows).rev());
        let mut s = base.clone();
        s.permute_rows(&perm).unwrap();
        let x: Vec<f64> = (0..s.n_cols()).map(|i| (i as f64 * 0.61).cos()).collect();
        for (new, &old) in perm.iter().enumerate().take(n_rows) {
            assert_eq!(s.row_dot(new, &x), base.row_dot(old, &x), "row {new}");
            assert_eq!(s.known_terms()[new], base.known_terms()[old]);
        }
    }

    #[test]
    fn permute_rows_rejects_cross_star_and_non_bijective_maps() {
        let mut s = sys();
        let n_rows = s.n_rows();
        let obs = s.layout().obs_per_star as usize;
        // Swap a row of star 0 with a row of star 1: star-preservation fails.
        let mut cross: Vec<usize> = (0..n_rows).collect();
        cross.swap(0, obs);
        assert!(matches!(
            s.permute_rows(&cross),
            Err(SystemError::Permutation { .. })
        ));
        // Duplicate entry: not a bijection.
        let mut dup: Vec<usize> = (0..n_rows).collect();
        dup[1] = 0;
        assert!(matches!(
            s.permute_rows(&dup),
            Err(SystemError::Permutation { row: 1 })
        ));
        // Wrong length.
        assert!(matches!(
            s.permute_rows(&[0usize]),
            Err(SystemError::ArrayLength { name: "perm", .. })
        ));
    }

    #[test]
    fn ell_cache_resets_on_mutation() {
        let mut s = sys();
        let before = s.ell().astro_slot(0)[0];
        let touched = s.scale_column(0, 2.0);
        assert!(touched > 0);
        // The mirror must reflect the scaled values, not the cached ones.
        assert_eq!(s.ell().astro_slot(0)[0], 2.0 * before);
        let mut b = s.known_terms().to_vec();
        b[0] += 1.0;
        let want = b[0];
        s.set_known_terms(b);
        let ell = s.ell();
        let back = ell.to_system().unwrap();
        assert_eq!(back.known_terms()[0], want);
    }

    #[test]
    fn column_norms_are_positive_for_touched_columns() {
        let s = sys();
        let norms = s.column_norms();
        let touched = norms.iter().filter(|&&n| n > 0.0).count();
        // Every astrometric and attitude column is touched by construction.
        assert!(touched >= (s.layout().n_astro_cols() + s.layout().n_att_cols()) as usize);
    }
}
