//! Seeded synthetic dataset generator.
//!
//! The real Gaia datasets are covered by a non-disclosure agreement, so the
//! paper's artifact generates synthetic data "distributed in the system as
//! the real data" from a runtime problem size in GB and a seed (Appendix
//! A-C). This module is the Rust equivalent: given a [`SystemLayout`] and a
//! seed, it produces a [`SparseSystem`] whose sparsity pattern reproduces
//! the structure of Fig. 2 of the paper:
//!
//! * astrometric blocks on the star diagonal;
//! * attitude offsets that advance with observation time (rows are
//!   time-ordered, so consecutive rows hit nearby attitude parameters —
//!   this is what gives the attitude block its banded look and the GPU
//!   kernels their partial coalescing);
//! * instrumental columns drawn irregularly from the instrument table;
//! * a single dense global column.
//!
//! The right-hand side can be synthesized from a known true solution
//! (`b = A x_true + ε`, [`Rhs::FromTrueSolution`]) so that convergence and
//! solution-validation experiments (paper §V-C, Fig. 6) are meaningful, or
//! uniformly at random ([`Rhs::Random`]) when only iteration timing matters
//! (paper §V-B runs 100 iterations without requiring convergence).

use std::path::Path;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::constraints::build_constraint_rows;
use crate::layout::SystemLayout;
use crate::system::{SparseSystem, ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use crate::{ASTRO_PARAMS_PER_STAR, ATT_PARAMS_PER_AXIS};

/// How the known terms `b` are synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rhs {
    /// Draw a true solution `x_true ∈ [-1, 1)^n`, set `b = A x_true + ε`
    /// with Gaussian noise of standard deviation `noise_sigma`.
    FromTrueSolution {
        /// Standard deviation of the added observation noise.
        noise_sigma: f64,
    },
    /// Uniform random known terms (timing-only runs).
    Random,
}

/// How observation rows map to attitude parameters over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttitudePattern {
    /// Monotone sweep through the attitude segment with small jitter —
    /// the simplest time-ordering (each attitude parameter is visited in
    /// one contiguous burst).
    LinearSweep,
    /// Gaia-like scanning law: the satellite spins (~6 h period) while
    /// precessing, so the attitude segment is swept back and forth and
    /// every region is *revisited* `revolutions` times across the mission
    /// segment. Revisits raise the per-column collision counts of
    /// `aprod2_att` and spread each star's observations over distant
    /// attitude parameters — both properties of the real datasets.
    ScanLaw {
        /// Number of full sweeps across the attitude segment.
        revolutions: u32,
    },
}

/// How the 6 instrumental columns of each row are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstrumentPattern {
    /// 6 distinct uniform columns (the maximally irregular pattern).
    Uniform,
    /// One column from each of 6 equal groups of the instrument table —
    /// the real calibration model's shape, where each observation touches
    /// one parameter per instrument effect (CCD, gate, AC window, ...).
    Grouped,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Shape of the system to generate.
    pub layout: SystemLayout,
    /// PRNG seed; equal seeds produce bit-identical systems.
    pub seed: u64,
    /// Right-hand-side synthesis mode.
    pub rhs: Rhs,
    /// Attitude time pattern.
    pub attitude: AttitudePattern,
    /// Instrument column pattern.
    pub instrument: InstrumentPattern,
}

impl GeneratorConfig {
    /// Configuration with the artifact's defaults: seed 0, a consistent
    /// right-hand side with 1e-6 noise, linear attitude sweep, uniform
    /// instrument columns.
    pub fn new(layout: SystemLayout) -> Self {
        GeneratorConfig {
            layout,
            seed: 0,
            rhs: Rhs::FromTrueSolution { noise_sigma: 1e-6 },
            attitude: AttitudePattern::LinearSweep,
            instrument: InstrumentPattern::Uniform,
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the right-hand-side mode.
    pub fn rhs(mut self, rhs: Rhs) -> Self {
        self.rhs = rhs;
        self
    }

    /// Override the attitude time pattern.
    pub fn attitude(mut self, pattern: AttitudePattern) -> Self {
        self.attitude = pattern;
        self
    }

    /// Override the instrument column pattern.
    pub fn instrument(mut self, pattern: InstrumentPattern) -> Self {
        self.instrument = pattern;
        self
    }
}

/// Seeded synthetic system generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// Create a generator for the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        config.layout.validate().expect("invalid layout");
        Generator { config }
    }

    /// Generate the system, discarding the true solution (if any).
    pub fn generate(&self) -> SparseSystem {
        self.generate_with_truth().0
    }

    /// Generate the system together with the true solution used to build
    /// the right-hand side (`None` for [`Rhs::Random`]).
    pub fn generate_with_truth(&self) -> (SparseSystem, Option<Vec<f64>>) {
        let layout = self.config.layout;
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let n_obs = layout.n_obs_rows() as usize;
        let n_rows = layout.n_rows() as usize;

        let mut values_astro = vec![0.0f64; n_obs * ASTRO_NNZ_PER_ROW];
        for v in &mut values_astro {
            *v = draw_coeff(&mut rng);
        }
        let mut values_att = vec![0.0f64; n_rows * ATT_NNZ_PER_ROW];
        for v in values_att[..n_obs * ATT_NNZ_PER_ROW].iter_mut() {
            *v = draw_coeff(&mut rng);
        }
        let mut values_instr = vec![0.0f64; n_obs * INSTR_NNZ_PER_ROW];
        for v in &mut values_instr {
            *v = draw_coeff(&mut rng);
        }
        let mut values_glob = vec![0.0f64; n_obs * layout.n_glob_params as usize];
        for v in &mut values_glob {
            *v = draw_coeff(&mut rng);
        }

        // matrixIndexAstro: star-diagonal by construction.
        let matrix_index_astro: Vec<u64> = (0..n_obs)
            .map(|row| layout.star_of_row(row as u64) * ASTRO_PARAMS_PER_STAR as u64)
            .collect();

        // matrixIndexAtt: time-ordered traversal of the axis segment with
        // small jitter — consecutive observations see nearby attitude
        // parameters. The traversal shape depends on the attitude pattern.
        let max_off = layout.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
        let mut matrix_index_att = vec![0u64; n_rows];
        for (row, slot) in matrix_index_att[..n_obs].iter_mut().enumerate() {
            let t = if n_obs <= 1 {
                0.0
            } else {
                row as f64 / (n_obs as f64 - 1.0)
            };
            let base = match self.config.attitude {
                AttitudePattern::LinearSweep => (t * max_off as f64) as u64,
                AttitudePattern::ScanLaw { revolutions } => {
                    // Triangle-wave sweep: |…| of a sawtooth, so the
                    // segment is crossed `revolutions` times with smooth
                    // turnarounds (locality preserved at every step).
                    let phase = t * f64::from(revolutions.max(1));
                    let tri = 1.0 - (2.0 * (phase - phase.floor()) - 1.0).abs();
                    (tri * max_off as f64) as u64
                }
            };
            let jitter = rng.gen_range(0..=2u64);
            *slot = (base + jitter).min(max_off);
        }

        // instrCol: 6 distinct, sorted columns per row.
        let mut instr_col = vec![0u32; n_obs * INSTR_NNZ_PER_ROW];
        let n_instr = layout.n_instr_params;
        for row in 0..n_obs {
            let slots = &mut instr_col[row * INSTR_NNZ_PER_ROW..(row + 1) * INSTR_NNZ_PER_ROW];
            match self.config.instrument {
                InstrumentPattern::Uniform => sample_distinct_sorted(&mut rng, n_instr, slots),
                InstrumentPattern::Grouped => {
                    // One column from each of 6 near-equal groups; groups
                    // are contiguous, so the result is sorted and distinct
                    // by construction.
                    for (g, slot) in slots.iter_mut().enumerate() {
                        let g = g as u64;
                        let start = g * n_instr / INSTR_NNZ_PER_ROW as u64;
                        let end = (g + 1) * n_instr / INSTR_NNZ_PER_ROW as u64;
                        *slot = rng.gen_range(start..end.max(start + 1)) as u32;
                    }
                }
            }
        }

        // Constraint rows: attitude-only, appended at the end.
        let (constr_vals, constr_offs) = build_constraint_rows(&layout, &mut rng);
        values_att[n_obs * ATT_NNZ_PER_ROW..].copy_from_slice(&constr_vals);
        matrix_index_att[n_obs..].copy_from_slice(&constr_offs);

        let known_terms = vec![0.0f64; n_rows];
        let mut system = SparseSystem::from_parts(
            layout,
            values_astro,
            values_att,
            values_instr,
            values_glob,
            matrix_index_astro,
            matrix_index_att,
            instr_col,
            known_terms,
        )
        .expect("generator produced an invalid system");

        let truth = match self.config.rhs {
            Rhs::Random => {
                let b: Vec<f64> = (0..n_rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
                system.set_known_terms(b);
                None
            }
            Rhs::FromTrueSolution { noise_sigma } => {
                let x_true: Vec<f64> = (0..system.n_cols())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                let mut b = vec![0.0f64; n_rows];
                for (row, slot) in b.iter_mut().enumerate() {
                    *slot = system.row_dot(row, &x_true)
                        + if noise_sigma > 0.0 {
                            noise_sigma * gaussian(&mut rng)
                        } else {
                            0.0
                        };
                }
                system.set_known_terms(b);
                Some(x_true)
            }
        };
        (system, truth)
    }

    /// Streamed (chunk-at-a-time) generation straight to a `gaia-tiles/v1`
    /// spill directory with `tile_stars` stars per tile: the full system is
    /// never materialized in memory, yet the tiles are bit-identical to
    /// tiling the in-memory [`Generator::generate`] output (same seed ⇒
    /// same bytes). The capacity budget applies when the directory is
    /// *opened* for solving ([`crate::tiled::TiledSystem::open_with_budget`]),
    /// not at generation time — generation is inherently streaming.
    pub fn generate_tiled(
        &self,
        dir: &Path,
        tile_stars: u64,
    ) -> Result<crate::tiled::TileManifest, crate::tiled::TileError> {
        crate::tiled::generate_tiled_impl(&self.config, dir, tile_stars)
    }
}

/// Coefficient values: uniform in [-1, 1), excluding near-zero values
/// so that no stored non-zero degenerates (mirrors the artifact, which
/// draws from the same kind of bounded distribution). Shared with the
/// streamed tiled generator, which must replay the identical RNG stream.
pub(crate) fn draw_coeff<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v.abs() > 1e-3 {
            return v;
        }
    }
}

/// Draw `out.len()` distinct values from `0..n`, sorted ascending.
/// `n` may be small (tests use 8), so rejection sampling with a retry loop
/// is both simple and adequate.
pub(crate) fn sample_distinct_sorted<R: Rng>(rng: &mut R, n: u64, out: &mut [u32]) {
    debug_assert!(n as usize >= out.len());
    let k = out.len();
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    while chosen.len() < k {
        let c = rng.gen_range(0..n) as u32;
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    chosen.sort_unstable();
    out.copy_from_slice(&chosen);
}

/// Standard normal variate via Box–Muller (avoids pulling in `rand_distr`).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny()).seed(42);
        let a = Generator::new(cfg).generate();
        let b = Generator::new(cfg).generate();
        assert_eq!(a.values_astro(), b.values_astro());
        assert_eq!(a.values_att(), b.values_att());
        assert_eq!(a.instr_col(), b.instr_col());
        assert_eq!(a.known_terms(), b.known_terms());
    }

    #[test]
    fn different_seeds_differ() {
        let l = SystemLayout::tiny();
        let a = Generator::new(GeneratorConfig::new(l).seed(1)).generate();
        let b = Generator::new(GeneratorConfig::new(l).seed(2)).generate();
        assert_ne!(a.values_astro(), b.values_astro());
    }

    #[test]
    fn consistent_rhs_matches_true_solution() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(3)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        let x = truth.unwrap();
        for row in 0..sys.n_rows() {
            let want = sys.row_dot(row, &x);
            assert!((sys.known_terms()[row] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn attitude_offsets_are_time_ordered_within_jitter() {
        let (sys, _) = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(4))
            .generate_with_truth();
        let offs = sys.matrix_index_att();
        let n_obs = sys.n_obs_rows();
        // Monotone up to the ±2 jitter.
        for w in offs[..n_obs].windows(2) {
            assert!(
                w[1] + 3 >= w[0],
                "attitude offsets regress: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn scan_law_revisits_attitude_regions() {
        let layout = SystemLayout::small();
        let sweeps = |pattern: AttitudePattern| -> usize {
            let sys =
                Generator::new(GeneratorConfig::new(layout).seed(5).attitude(pattern)).generate();
            let offs = sys.matrix_index_att();
            let n_obs = sys.n_obs_rows();
            // Count crossings of the segment midpoint with hysteresis
            // (robust to the ±2 jitter): a crossing is a transition from
            // the bottom quarter to the top quarter or back.
            let max_off = layout.n_deg_freedom_att - 4;
            let (lo, hi) = (max_off / 4, 3 * max_off / 4);
            let mut crossings = 0;
            let mut region = 0i8; // -1 bottom, +1 top
            for &o in &offs[..n_obs] {
                let r = if o <= lo {
                    -1
                } else if o >= hi {
                    1
                } else {
                    0
                };
                if r != 0 {
                    if region != 0 && r != region {
                        crossings += 1;
                    }
                    region = r;
                }
            }
            crossings
        };
        let linear = sweeps(AttitudePattern::LinearSweep);
        let scan = sweeps(AttitudePattern::ScanLaw { revolutions: 6 });
        assert!(linear <= 1, "linear sweep crosses at most once: {linear}");
        assert!(
            scan >= 5,
            "scan law with 6 revolutions must cross the segment repeatedly: {scan}"
        );
        // The faster sweep rate spreads each star's (time-contiguous)
        // observations over a wider attitude range — the real-dataset
        // property that couples the astrometric and attitude blocks.
        let span = |pattern: AttitudePattern| -> f64 {
            let sys =
                Generator::new(GeneratorConfig::new(layout).seed(5).attitude(pattern)).generate();
            let offs = sys.matrix_index_att();
            let mut total = 0u64;
            for star in 0..layout.n_stars {
                let rows = layout.rows_of_star(star);
                let s = &offs[rows.start as usize..rows.end as usize];
                total += s.iter().max().unwrap() - s.iter().min().unwrap();
            }
            total as f64 / layout.n_stars as f64
        };
        let span_linear = span(AttitudePattern::LinearSweep);
        let span_scan = span(AttitudePattern::ScanLaw { revolutions: 6 });
        assert!(
            span_scan > 2.0 * span_linear,
            "scan law must widen per-star attitude spans: {span_linear} vs {span_scan}"
        );
    }

    #[test]
    fn grouped_instrument_pattern_picks_one_column_per_group() {
        let layout = SystemLayout {
            n_instr_params: 30,
            ..SystemLayout::small()
        };
        let sys = Generator::new(
            GeneratorConfig::new(layout)
                .seed(6)
                .instrument(InstrumentPattern::Grouped),
        )
        .generate();
        for row in 0..sys.n_obs_rows() {
            let (_, cols) = sys.instr_row(row);
            for (g, &c) in cols.iter().enumerate() {
                let g = g as u64;
                let start = g * 30 / 6;
                let end = (g + 1) * 30 / 6;
                assert!(
                    (start..end).contains(&u64::from(c)),
                    "row {row} group {g}: column {c} outside [{start}, {end})"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn generated_systems_are_always_structurally_valid(
            seed in 0u64..1000,
            stars in 4u64..20,
            obs in 6u64..16,
        ) {
            let layout = SystemLayout {
                n_stars: stars,
                obs_per_star: obs,
                n_deg_freedom_att: 10,
                n_instr_params: 9,
                n_glob_params: 1,
                n_constraint_rows: 4,
            };
            prop_assume!(layout.validate().is_ok());
            // from_parts re-validates every invariant; generate() panics on
            // violation, so reaching here means the structure is valid.
            let sys = Generator::new(GeneratorConfig::new(layout).seed(seed)).generate();
            prop_assert_eq!(sys.n_rows() as u64, layout.n_rows());
        }

        #[test]
        fn instr_cols_distinct_sorted(seed in 0u64..200) {
            let sys = Generator::new(
                GeneratorConfig::new(SystemLayout::tiny()).seed(seed),
            ).generate();
            for row in 0..sys.n_obs_rows() {
                let (_, cols) = sys.instr_row(row);
                for w in cols.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}
