//! Incremental system construction.
//!
//! The synthetic [`crate::generator`] covers benchmarking; users with
//! *real* observations (the GSR pre-processor's output, Fig. 1) need to
//! assemble a [`SparseSystem`] row by row. [`SystemBuilder`] provides that
//! path with the same invariants enforced incrementally: every star
//! carries exactly `obs_per_star` observations, attitude offsets stay
//! inside the axis segment, instrument columns are strictly increasing,
//! and the finished system is re-validated by
//! [`SparseSystem::from_parts`].
//!
//! ```
//! use gaia_sparse::builder::SystemBuilder;
//!
//! let mut b = SystemBuilder::new(8, 6, true, 2);
//! let star = b.add_star();
//! for k in 0..2 {
//!     b.observation(star)
//!         .astro([1.0, 0.5, -0.25, 0.125, 2.0])
//!         .attitude(1, [0.1; 12])
//!         .instrument([(0, 0.3), (1, 0.4), (2, 0.5), (3, 0.6), (4, 0.7), (5, 0.8)])
//!         .global(0.01)
//!         .known_term(k as f64)
//!         .commit()
//!         .unwrap();
//! }
//! b.constraint(0, 0, [1.0; 4], 0.0).unwrap();
//! // 2 observation rows + 1 constraint < 22 columns: a shard-style build.
//! let sys = b.build_shard().unwrap();
//! assert_eq!(sys.n_rows(), 3);
//! ```

use crate::layout::SystemLayout;
use crate::system::{
    SparseSystem, SystemError, ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW,
};
use crate::{ATT_AXES, ATT_PARAMS_PER_AXIS};

/// Errors raised while assembling a system incrementally.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A star received a different number of observations than
    /// `obs_per_star`.
    WrongObservationCount {
        /// Offending star.
        star: u64,
        /// Observations recorded.
        got: u64,
        /// Observations required.
        want: u64,
    },
    /// An attitude offset exceeds the axis segment.
    AttitudeOffsetOutOfRange {
        /// Offending offset.
        offset: u64,
        /// Maximum allowed.
        max: u64,
    },
    /// Instrument columns not strictly increasing or out of range.
    BadInstrumentColumns,
    /// Observations were added out of star order (stars must be filled
    /// one at a time, in creation order).
    OutOfOrder,
    /// Final validation failed.
    System(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::WrongObservationCount { star, got, want } => {
                write!(f, "star {star} has {got} observations (needs {want})")
            }
            BuildError::AttitudeOffsetOutOfRange { offset, max } => {
                write!(f, "attitude offset {offset} exceeds {max}")
            }
            BuildError::BadInstrumentColumns => {
                write!(
                    f,
                    "instrument columns must be strictly increasing and in range"
                )
            }
            BuildError::OutOfOrder => write!(f, "observations must be added star by star"),
            BuildError::System(m) => write!(f, "assembled system invalid: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder; see the module docs.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    n_deg_freedom_att: u64,
    n_instr_params: u64,
    has_global: bool,
    obs_per_star: u64,
    n_stars: u64,
    // Observation storage, appended in row order.
    values_astro: Vec<f64>,
    values_att: Vec<f64>,
    values_instr: Vec<f64>,
    values_glob: Vec<f64>,
    matrix_index_att: Vec<u64>,
    instr_col: Vec<u32>,
    known_terms: Vec<f64>,
    // Constraint rows (attitude-only), appended after build.
    constr_values: Vec<f64>,
    constr_offsets: Vec<u64>,
    constr_known: Vec<f64>,
}

impl SystemBuilder {
    /// Start a builder for a system with `n_deg_freedom_att` attitude DOF
    /// per axis, `n_instr_params` instrument parameters, optionally a
    /// global parameter, and `obs_per_star` observations per star.
    pub fn new(
        n_deg_freedom_att: u64,
        n_instr_params: u64,
        has_global: bool,
        obs_per_star: u64,
    ) -> Self {
        assert!(n_deg_freedom_att >= ATT_PARAMS_PER_AXIS as u64);
        assert!(n_instr_params >= INSTR_NNZ_PER_ROW as u64);
        assert!(obs_per_star > 0);
        SystemBuilder {
            n_deg_freedom_att,
            n_instr_params,
            has_global,
            obs_per_star,
            n_stars: 0,
            values_astro: Vec::new(),
            values_att: Vec::new(),
            values_instr: Vec::new(),
            values_glob: Vec::new(),
            matrix_index_att: Vec::new(),
            instr_col: Vec::new(),
            known_terms: Vec::new(),
            constr_values: Vec::new(),
            constr_offsets: Vec::new(),
            constr_known: Vec::new(),
        }
    }

    /// Register a new star; returns its id. Observations for it must be
    /// added before the next star is registered.
    pub fn add_star(&mut self) -> u64 {
        let id = self.n_stars;
        self.n_stars += 1;
        id
    }

    /// Observations recorded so far (over all stars; constraint rows are
    /// tracked separately).
    pub fn n_observations(&self) -> u64 {
        self.known_terms.len() as u64
    }

    /// Begin an observation row for `star`.
    pub fn observation(&mut self, star: u64) -> ObservationBuilder<'_> {
        ObservationBuilder {
            builder: self,
            star,
            astro: [0.0; ASTRO_NNZ_PER_ROW],
            attitude_offset: 0,
            attitude: [0.0; ATT_NNZ_PER_ROW],
            instrument: [(0, 0.0); INSTR_NNZ_PER_ROW],
            global: 0.0,
            known: 0.0,
        }
    }

    /// Append an attitude constraint row: weight `values` on `axis`'s four
    /// parameters starting at `offset`, with known term `rhs`.
    pub fn constraint(
        &mut self,
        axis: u32,
        offset: u64,
        values: [f64; ATT_PARAMS_PER_AXIS as usize],
        rhs: f64,
    ) -> Result<(), BuildError> {
        assert!(axis < ATT_AXES, "axis {axis} out of range");
        let max = self.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
        if offset > max {
            return Err(BuildError::AttitudeOffsetOutOfRange { offset, max });
        }
        let mut row = [0.0f64; ATT_NNZ_PER_ROW];
        for (k, v) in values.into_iter().enumerate() {
            row[axis as usize * ATT_PARAMS_PER_AXIS as usize + k] = v;
        }
        self.constr_values.extend_from_slice(&row);
        self.constr_offsets.push(offset);
        self.constr_known.push(rhs);
        Ok(())
    }

    fn layout(&self) -> SystemLayout {
        SystemLayout {
            n_stars: self.n_stars,
            obs_per_star: self.obs_per_star,
            n_deg_freedom_att: self.n_deg_freedom_att,
            n_instr_params: self.n_instr_params,
            n_glob_params: u32::from(self.has_global),
            n_constraint_rows: self.constr_offsets.len() as u64,
        }
    }

    fn finish(mut self, shard: bool) -> Result<SparseSystem, BuildError> {
        // Every star must be complete.
        let expected = self.n_stars * self.obs_per_star;
        let got = self.known_terms.len() as u64;
        if got != expected {
            let star = got / self.obs_per_star.max(1);
            return Err(BuildError::WrongObservationCount {
                star: star.min(self.n_stars.saturating_sub(1)),
                got: got - star.min(self.n_stars.saturating_sub(1)) * self.obs_per_star,
                want: self.obs_per_star,
            });
        }
        let layout = self.layout();
        let matrix_index_astro: Vec<u64> = (0..layout.n_obs_rows())
            .map(|r| layout.star_of_row(r) * ASTRO_NNZ_PER_ROW as u64)
            .collect();
        // Append constraint rows.
        self.values_att.extend_from_slice(&self.constr_values);
        let mut matrix_index_att = self.matrix_index_att;
        matrix_index_att.extend_from_slice(&self.constr_offsets);
        let mut known = self.known_terms;
        known.extend_from_slice(&self.constr_known);

        let make = if shard {
            SparseSystem::from_parts_shard
        } else {
            SparseSystem::from_parts
        };
        make(
            layout,
            self.values_astro,
            self.values_att,
            self.values_instr,
            self.values_glob,
            matrix_index_astro,
            matrix_index_att,
            self.instr_col,
            known,
        )
        .map_err(|e: SystemError| BuildError::System(e.to_string()))
    }

    /// Finish; requires the assembled system to be overdetermined.
    pub fn build(self) -> Result<SparseSystem, BuildError> {
        self.finish(false)
    }

    /// Finish as a shard (skips the overdetermined check; see
    /// [`SparseSystem::from_parts_shard`]).
    pub fn build_shard(self) -> Result<SparseSystem, BuildError> {
        self.finish(true)
    }
}

/// One observation row under construction; set its pieces, then
/// [`ObservationBuilder::commit`].
pub struct ObservationBuilder<'a> {
    builder: &'a mut SystemBuilder,
    star: u64,
    astro: [f64; ASTRO_NNZ_PER_ROW],
    attitude_offset: u64,
    attitude: [f64; ATT_NNZ_PER_ROW],
    instrument: [(u32, f64); INSTR_NNZ_PER_ROW],
    global: f64,
    known: f64,
}

impl ObservationBuilder<'_> {
    /// The five astrometric coefficients.
    pub fn astro(mut self, values: [f64; ASTRO_NNZ_PER_ROW]) -> Self {
        self.astro = values;
        self
    }

    /// Attitude offset within the axis segment and the 3×4 coefficients.
    pub fn attitude(mut self, offset: u64, values: [f64; ATT_NNZ_PER_ROW]) -> Self {
        self.attitude_offset = offset;
        self.attitude = values;
        self
    }

    /// The six `(column, value)` instrument entries (columns must be
    /// strictly increasing).
    pub fn instrument(mut self, entries: [(u32, f64); INSTR_NNZ_PER_ROW]) -> Self {
        self.instrument = entries;
        self
    }

    /// The global (PPN-γ) coefficient; ignored when the builder has no
    /// global parameter.
    pub fn global(mut self, value: f64) -> Self {
        self.global = value;
        self
    }

    /// The observation's known term.
    pub fn known_term(mut self, b: f64) -> Self {
        self.known = b;
        self
    }

    /// Validate and append the row.
    pub fn commit(self) -> Result<(), BuildError> {
        let b = self.builder;
        // Rows must be appended star by star, in order.
        let current_star = b.known_terms.len() as u64 / b.obs_per_star;
        if self.star != current_star.min(b.n_stars.saturating_sub(1))
            || b.known_terms.len() as u64 >= b.n_stars * b.obs_per_star
        {
            return Err(BuildError::OutOfOrder);
        }
        let max = b.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
        if self.attitude_offset > max {
            return Err(BuildError::AttitudeOffsetOutOfRange {
                offset: self.attitude_offset,
                max,
            });
        }
        for w in self.instrument.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(BuildError::BadInstrumentColumns);
            }
        }
        if u64::from(self.instrument[INSTR_NNZ_PER_ROW - 1].0) >= b.n_instr_params {
            return Err(BuildError::BadInstrumentColumns);
        }
        b.values_astro.extend_from_slice(&self.astro);
        b.values_att.extend_from_slice(&self.attitude);
        b.matrix_index_att.push(self.attitude_offset);
        for (col, val) in self.instrument {
            b.instr_col.push(col);
            b.values_instr.push(val);
        }
        if b.has_global {
            b.values_glob.push(self.global);
        }
        b.known_terms.push(self.known);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs(b: &mut SystemBuilder, star: u64, seed: f64) -> Result<(), BuildError> {
        b.observation(star)
            .astro([seed, seed + 0.1, seed + 0.2, seed + 0.3, seed + 0.4])
            .attitude(1, [seed * 0.5; 12])
            .instrument([
                (0, seed),
                (1, seed + 1.0),
                (2, seed - 1.0),
                (3, 0.5),
                (4, -0.5),
                (5, 0.25),
            ])
            .global(0.01)
            .known_term(seed * 2.0)
            .commit()
    }

    #[test]
    fn built_system_matches_hand_computed_row_dot() {
        let mut b = SystemBuilder::new(8, 6, true, 3);
        let s0 = b.add_star();
        for k in 0..3 {
            sample_obs(&mut b, s0, k as f64).unwrap();
        }
        b.constraint(1, 2, [1.0, -1.0, 1.0, -1.0], 0.0).unwrap();
        let sys = b.build_shard().unwrap();
        assert_eq!(sys.n_rows(), 4);
        assert_eq!(sys.n_obs_rows(), 3);
        // Row 1 (seed 1.0): astro starts at col 0, x = all ones ⇒ dot =
        // Σastro + Σatt + Σinstr + glob.
        let x = vec![1.0; sys.n_cols()];
        let want: f64 = (1.0 + 1.1 + 1.2 + 1.3 + 1.4)
            + 12.0 * 0.5
            + (1.0 + 2.0 + 0.0 + 0.5 - 0.5 + 0.25)
            + 0.01;
        assert!((sys.row_dot(1, &x) - want).abs() < 1e-12);
        // Constraint row touches only axis 1.
        let c = sys.columns();
        let entries: Vec<(u64, f64)> = sys.row_entries(3).filter(|&(_, v)| v != 0.0).collect();
        assert_eq!(entries.len(), 4);
        for (col, _) in entries {
            let axis1 = c.att + 8..c.att + 16;
            assert!(axis1.contains(&col), "constraint column {col}");
        }
    }

    #[test]
    fn incomplete_star_is_rejected() {
        let mut b = SystemBuilder::new(8, 6, false, 2);
        let s = b.add_star();
        sample_obs(&mut b, s, 0.0).unwrap();
        let err = b.build_shard().unwrap_err();
        assert!(
            matches!(err, BuildError::WrongObservationCount { .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_order_observation_is_rejected() {
        let mut b = SystemBuilder::new(8, 6, false, 1);
        let s0 = b.add_star();
        let s1 = b.add_star();
        // s1 before s0: rejected.
        let err = sample_obs(&mut b, s1, 0.0).unwrap_err();
        assert_eq!(err, BuildError::OutOfOrder);
        sample_obs(&mut b, s0, 0.0).unwrap();
        sample_obs(&mut b, s1, 1.0).unwrap();
        // A third observation overflows the declared capacity.
        let err = sample_obs(&mut b, s1, 2.0).unwrap_err();
        assert_eq!(err, BuildError::OutOfOrder);
    }

    #[test]
    fn bad_attitude_offset_and_instrument_columns_are_rejected() {
        let mut b = SystemBuilder::new(8, 6, false, 1);
        let s = b.add_star();
        let err = b
            .observation(s)
            .attitude(5, [0.0; 12]) // max is 8 − 4 = 4
            .instrument([(0, 0.0), (1, 0.0), (2, 0.0), (3, 0.0), (4, 0.0), (5, 0.0)])
            .commit()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::AttitudeOffsetOutOfRange { max: 4, .. }
        ));
        let err = b
            .observation(s)
            .attitude(0, [0.0; 12])
            .instrument([(0, 0.0), (0, 0.0), (2, 0.0), (3, 0.0), (4, 0.0), (5, 0.0)])
            .commit()
            .unwrap_err();
        assert_eq!(err, BuildError::BadInstrumentColumns);
        assert!(matches!(
            b.constraint(2, 99, [0.0; 4], 0.0),
            Err(BuildError::AttitudeOffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn built_system_is_solvable() {
        // Build an overdetermined system: 8 stars × 16 obs = 128 rows,
        // 8·5 + 24 + 6 + 0 = 70 cols.
        let mut b = SystemBuilder::new(8, 6, false, 16);
        for star in 0..8 {
            let s = b.add_star();
            let _ = star;
            for k in 0..16 {
                sample_obs(&mut b, s, 0.1 * k as f64 + s as f64).unwrap();
            }
        }
        b.constraint(0, 0, [1.0; 4], 0.0).unwrap();
        let sys = b.build().unwrap();
        assert!(sys.n_rows() > sys.n_cols());
        // And the dense oracle can mirror it (round-trip of invariants).
        let d = crate::dense::DenseMatrix::from_sparse(&sys);
        assert!(d.nnz() > 0);
    }
}
