//! Binary dataset serialization.
//!
//! The production pipeline materializes the system on disk between the
//! GSR pre-processor and the solver (Fig. 1: "System Generation →
//! Solver"); the artifact's solver can also read pre-generated datasets.
//! This module provides the equivalent: a compact little-endian binary
//! container for a [`SparseSystem`], bit-exact by construction.
//!
//! Layout: magic `GAVU`, format version (u32), the eight [`SystemLayout`]
//! scalars, then each array prefixed with its element count. Everything is
//! written through a `Write` and read back through a `Read`, so files,
//! sockets, and in-memory buffers all work.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::layout::SystemLayout;
use crate::system::SparseSystem;

/// File magic.
pub const MAGIC: [u8; 4] = *b"GAVU";
/// Container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from reading a dataset container.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a GAVU container or unsupported version.
    Format(String),
    /// The arrays decode but violate a structural invariant.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "dataset I/O error: {e}"),
            IoError::Format(m) => write!(f, "dataset format error: {m}"),
            IoError::Invalid(m) => write!(f, "dataset invalid: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn write_f64_array<W: Write>(w: &mut W, v: &[f64]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_bits().to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_f64_array<R: Read>(r: &mut R) -> Result<Vec<f64>, IoError> {
    let len = read_u64(r)? as usize;
    if len > (1 << 33) {
        return Err(IoError::Format(format!("implausible array length {len}")));
    }
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f64::from_bits(u64::from_le_bytes(buf)));
    }
    Ok(out)
}

pub(crate) fn write_u64_array<W: Write>(w: &mut W, v: &[u64]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        write_u64(w, x)?;
    }
    Ok(())
}

pub(crate) fn read_u64_array<R: Read>(r: &mut R) -> Result<Vec<u64>, IoError> {
    let len = read_u64(r)? as usize;
    if len > (1 << 33) {
        return Err(IoError::Format(format!("implausible array length {len}")));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

pub(crate) fn write_u32_array<W: Write>(w: &mut W, v: &[u32]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        write_u32(w, x)?;
    }
    Ok(())
}

pub(crate) fn read_u32_array<R: Read>(r: &mut R) -> Result<Vec<u32>, IoError> {
    let len = read_u64(r)? as usize;
    if len > (1 << 34) {
        return Err(IoError::Format(format!("implausible array length {len}")));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

/// Serialize a system into a writer.
pub fn write_system<W: Write>(sys: &SparseSystem, mut w: W) -> Result<(), IoError> {
    w.write_all(&MAGIC)?;
    write_u32(&mut w, FORMAT_VERSION)?;
    let l = sys.layout();
    write_u64(&mut w, l.n_stars)?;
    write_u64(&mut w, l.obs_per_star)?;
    write_u64(&mut w, l.n_deg_freedom_att)?;
    write_u64(&mut w, l.n_instr_params)?;
    write_u32(&mut w, l.n_glob_params)?;
    write_u64(&mut w, l.n_constraint_rows)?;
    write_f64_array(&mut w, sys.values_astro())?;
    write_f64_array(&mut w, sys.values_att())?;
    write_f64_array(&mut w, sys.values_instr())?;
    write_f64_array(&mut w, sys.values_glob())?;
    write_u64_array(&mut w, sys.matrix_index_astro())?;
    write_u64_array(&mut w, sys.matrix_index_att())?;
    write_u32_array(&mut w, sys.instr_col())?;
    write_f64_array(&mut w, sys.known_terms())?;
    w.flush()?;
    Ok(())
}

/// Deserialize a system from a reader, re-validating every structural
/// invariant via [`SparseSystem::from_parts`].
pub fn read_system<R: Read>(mut r: R) -> Result<SparseSystem, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::Format("bad magic (not a GAVU dataset)".into()));
    }
    let version = read_u32(&mut r)?;
    if version != FORMAT_VERSION {
        return Err(IoError::Format(format!(
            "format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let layout = SystemLayout {
        n_stars: read_u64(&mut r)?,
        obs_per_star: read_u64(&mut r)?,
        n_deg_freedom_att: read_u64(&mut r)?,
        n_instr_params: read_u64(&mut r)?,
        n_glob_params: read_u32(&mut r)?,
        n_constraint_rows: read_u64(&mut r)?,
    };
    let values_astro = read_f64_array(&mut r)?;
    let values_att = read_f64_array(&mut r)?;
    let values_instr = read_f64_array(&mut r)?;
    let values_glob = read_f64_array(&mut r)?;
    let matrix_index_astro = read_u64_array(&mut r)?;
    let matrix_index_att = read_u64_array(&mut r)?;
    let instr_col = read_u32_array(&mut r)?;
    let known_terms = read_f64_array(&mut r)?;
    SparseSystem::from_parts(
        layout,
        values_astro,
        values_att,
        values_instr,
        values_glob,
        matrix_index_astro,
        matrix_index_att,
        instr_col,
        known_terms,
    )
    .map_err(|e| IoError::Invalid(e.to_string()))
}

/// Save to a file path.
pub fn save_system(sys: &SparseSystem, path: &Path) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_system(sys, io::BufWriter::new(file))
}

/// Load from a file path.
pub fn load_system(path: &Path) -> Result<SparseSystem, IoError> {
    let file = std::fs::File::open(path)?;
    read_system(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    fn sys() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(77)).generate()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let original = sys();
        let mut buf = Vec::new();
        write_system(&original, &mut buf).unwrap();
        let loaded = read_system(buf.as_slice()).unwrap();
        assert_eq!(loaded.layout(), original.layout());
        assert_eq!(loaded.values_astro(), original.values_astro());
        assert_eq!(loaded.values_att(), original.values_att());
        assert_eq!(loaded.values_instr(), original.values_instr());
        assert_eq!(loaded.values_glob(), original.values_glob());
        assert_eq!(loaded.matrix_index_astro(), original.matrix_index_astro());
        assert_eq!(loaded.matrix_index_att(), original.matrix_index_att());
        assert_eq!(loaded.instr_col(), original.instr_col());
        assert_eq!(loaded.known_terms(), original.known_terms());
    }

    #[test]
    fn file_round_trip() {
        let original = sys();
        let dir = std::env::temp_dir().join(format!("gaia-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sys.gavu");
        save_system(&original, &path).unwrap();
        let loaded = load_system(&path).unwrap();
        assert_eq!(loaded.known_terms(), original.known_terms());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_system(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let original = sys();
        let mut buf = Vec::new();
        write_system(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = read_system(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Io(_)), "{err}");
    }

    #[test]
    fn corrupted_structure_is_rejected_by_validation() {
        let original = sys();
        let mut buf = Vec::new();
        write_system(&original, &mut buf).unwrap();
        // Flip the star count: array lengths no longer match the layout.
        let magic_and_version = 4 + 4;
        buf[magic_and_version] ^= 0xff;
        let err = read_system(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::Invalid(_) | IoError::Format(_) | IoError::Io(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let original = sys();
        let mut buf = Vec::new();
        write_system(&original, &mut buf).unwrap();
        buf[4] = 99; // version field
        let err = read_system(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "{err}");
    }
}
