//! # gaia-sparse
//!
//! The block-structured sparse linear system at the heart of the ESA Gaia
//! AVU-GSR (Astrometric Verification Unit — Global Sphere Reconstruction)
//! solver, as described in §III-B of
//! *"Performance portability via C++ PSTL, SYCL, OpenMP, and HIP: the Gaia
//! AVU-GSR case study"* (Malenza et al., SC-W 2024).
//!
//! The AVU-GSR pipeline solves an overdetermined system `A x = b` where the
//! coefficient matrix `A` has `O(10^{8..11})` rows (one per observation of a
//! primary star, plus constraint rows) and `O(10^8)` columns (unknowns).
//! Only the non-zero coefficients are stored; each observation row carries at
//! most 24 of them, split across four column blocks with very different
//! structure:
//!
//! * **Astrometric** — 5 contiguous non-zeros per row in a block-diagonal
//!   pattern (all observations of star `s` hit columns `5s..5s+5`). This
//!   block is ~90 % of the memory footprint.
//! * **Attitude** — 12 non-zeros per row, arranged as 3 blocks of 4
//!   contiguous entries, one block per attitude axis, separated by a stride
//!   equal to the attitude degrees of freedom per axis.
//! * **Instrumental** — 6 non-zeros per row at irregular column positions.
//! * **Global** — at most 1 non-zero per row (the PPN-γ parameter).
//!
//! This crate provides:
//!
//! * [`SystemLayout`] — the integer shape of a problem instance, including
//!   the analytic layouts of the paper's 10/30/60 GB benchmark problems
//!   (which can be *described* without being allocated);
//! * [`SparseSystem`] — the in-memory representation (values + compressed
//!   index arrays, exactly mirroring the production `systemMatrix`,
//!   `matrixIndexAstro`, `matrixIndexAtt`, `instrCol` arrays);
//! * [`generator`] — the seeded synthetic dataset generator (the paper's
//!   production datasets are under NDA; its artifact ships the same kind of
//!   generator, parameterized by problem size in GB);
//! * [`constraints`] — the null-space constraint rows that make the
//!   overdetermined solution unique;
//! * [`partition`] — observation-row sharding across ranks (the MPI
//!   decomposition of §IV);
//! * [`footprint`] — byte-exact memory accounting used for the capacity
//!   gating of §V-B (which GPUs can hold which problem size);
//! * [`dense`] — dense mirrors of small systems for oracle testing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod constraints;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod footprint;
pub mod fuzz;
pub mod generator;
pub mod io;
pub mod layout;
pub mod partition;
pub mod stats;
pub mod system;
pub mod tiled;

pub use ell::{EllSystem, MatrixLayout};
pub use generator::{AttitudePattern, Generator, GeneratorConfig, InstrumentPattern, Rhs};
pub use layout::{BlockKind, ColumnBlocks, SystemLayout};
pub use partition::{RowPartition, RowRange};
pub use system::SparseSystem;
pub use tiled::{
    resolve_tiles_dir, source_fingerprint, write_tiles, CapacityBudget, TileAccess, TileCache,
    TileCacheStats, TileError, TileManifest, TileMeta, TileShard, TiledSystem, TILES_DIR_ENV,
};

/// Number of astrometric parameters solved per star (right ascension,
/// declination, parallax, and the two proper motions).
pub const ASTRO_PARAMS_PER_STAR: u32 = 5;
/// Number of attitude axes of the Gaia satellite.
pub const ATT_AXES: u32 = 3;
/// Number of contiguous attitude parameters per axis touched by one row.
pub const ATT_PARAMS_PER_AXIS: u32 = 4;
/// Number of instrumental parameters touched by one row.
pub const INSTR_PARAMS_PER_ROW: u32 = 6;
/// Maximum number of global (PPN-γ) parameters touched by one row.
pub const GLOBAL_PARAMS_PER_ROW: u32 = 1;
/// Maximum number of non-zero coefficients stored per observation row.
pub const NNZ_PER_ROW: u32 = ASTRO_PARAMS_PER_STAR
    + ATT_AXES * ATT_PARAMS_PER_AXIS
    + INSTR_PARAMS_PER_ROW
    + GLOBAL_PARAMS_PER_ROW;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_per_row_is_24_as_in_the_paper() {
        // §III-B: "at most ~(10^11) × 24 elements, i.e., 5 astrometric,
        // 12 attitude, 6 instrumental, and 1 global parameters per row".
        assert_eq!(NNZ_PER_ROW, 24);
    }
}
