//! Seeded fuzz entry points for the verification harness.
//!
//! `gaia-verify`'s metamorphic suite explores many randomly-shaped systems;
//! everything here is a **pure function of a `u64` seed**, so any failure a
//! property test finds reproduces from the seed alone. The seeds that drive
//! CI live in a committed corpus file in `crates/verify`, and
//! `scripts/replay_verify_seed.sh` replays a single one.
//!
//! The generated layouts are deliberately small (tens to a few hundred
//! rows) so a full solve takes microseconds, but they vary every structural
//! degree of freedom: star count, observations per star, attitude DOF and
//! time pattern, instrument table width and pattern, presence of the global
//! parameter, and the number of constraint rows.

use crate::generator::{AttitudePattern, Generator, GeneratorConfig, InstrumentPattern, Rhs};
use crate::layout::SystemLayout;
use crate::system::SparseSystem;

/// SplitMix64 — the same finalizer the schedule-exploration controller
/// uses; one call per decision keeps every draw independent of ordering.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draw from `lo..=hi` using an independent stream of `seed` labeled by
/// `stream`.
fn draw(seed: u64, stream: u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    lo + mix(seed ^ mix(stream)) % (hi - lo + 1)
}

/// A small random-but-valid [`SystemLayout`], a pure function of `seed`.
///
/// `obs_per_star` is raised as needed to keep the system overdetermined,
/// so `validate()` always passes.
pub fn layout_from_seed(seed: u64) -> SystemLayout {
    let n_stars = draw(seed, 1, 2, 8);
    let n_deg_freedom_att = draw(seed, 2, 4, 12);
    let n_instr_params = draw(seed, 3, 6, 16);
    let n_glob_params = draw(seed, 4, 0, 1) as u32;
    let n_constraint_rows = draw(seed, 5, 0, 6);
    let n_cols = n_stars * crate::ASTRO_PARAMS_PER_STAR as u64
        + crate::ATT_AXES as u64 * n_deg_freedom_att
        + n_instr_params
        + n_glob_params as u64;
    // Enough observations per star to be overdetermined, plus random slack.
    let needed = n_cols.saturating_sub(n_constraint_rows).div_ceil(n_stars);
    let obs_per_star = needed + draw(seed, 6, 1, 8);
    let layout = SystemLayout {
        n_stars,
        obs_per_star,
        n_deg_freedom_att,
        n_instr_params,
        n_glob_params,
        n_constraint_rows,
    };
    layout
        .validate()
        .expect("layout_from_seed must always be valid");
    layout
}

/// The generator configuration for `seed`: the layout of
/// [`layout_from_seed`] plus seed-selected attitude / instrument / RHS
/// modes.
pub fn config_from_seed(seed: u64) -> GeneratorConfig {
    let attitude = if draw(seed, 7, 0, 1) == 0 {
        AttitudePattern::LinearSweep
    } else {
        AttitudePattern::ScanLaw {
            revolutions: draw(seed, 8, 2, 5) as u32,
        }
    };
    let instrument = if draw(seed, 9, 0, 1) == 0 {
        InstrumentPattern::Uniform
    } else {
        InstrumentPattern::Grouped
    };
    GeneratorConfig::new(layout_from_seed(seed))
        .seed(mix(seed ^ 0x5eed))
        .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 })
        .attitude(attitude)
        .instrument(instrument)
}

/// A complete random small system, a pure function of `seed`.
pub fn system_from_seed(seed: u64) -> SparseSystem {
    Generator::new(config_from_seed(seed)).generate()
}

/// Like [`system_from_seed`] but also returns the true solution the known
/// terms were synthesized from (for known-solution recovery properties).
pub fn system_with_truth_from_seed(seed: u64) -> (SparseSystem, Vec<f64>) {
    let (system, truth) = Generator::new(config_from_seed(seed)).generate_with_truth();
    (
        system,
        truth.expect("config_from_seed always uses Rhs::FromTrueSolution"),
    )
}

/// A seeded star-preserving row permutation for `layout`: each star's
/// observation rows are shuffled among themselves and the constraint rows
/// among themselves, which is exactly the class
/// [`SparseSystem::permute_rows`] accepts.
pub fn permutation_within_stars(seed: u64, layout: &SystemLayout) -> Vec<usize> {
    let n_obs = layout.n_obs_rows() as usize;
    let n_rows = layout.n_rows() as usize;
    let mut perm: Vec<usize> = (0..n_rows).collect();
    let mut shuffle = |range: std::ops::Range<usize>, stream: u64| {
        let len = range.end - range.start;
        for i in (1..len).rev() {
            let j = (mix(seed ^ mix(stream ^ (i as u64) << 8)) % (i as u64 + 1)) as usize;
            perm.swap(range.start + i, range.start + j);
        }
    };
    for star in 0..layout.n_stars {
        let r = layout.rows_of_star(star);
        shuffle(r.start as usize..r.end as usize, star);
    }
    shuffle(n_obs..n_rows, u64::MAX);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_are_valid_and_seed_sensitive_for_many_seeds() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..200 {
            let l = layout_from_seed(seed);
            l.validate().unwrap();
            distinct.insert((l.n_stars, l.obs_per_star, l.n_deg_freedom_att));
        }
        assert!(
            distinct.len() > 50,
            "only {} distinct shapes",
            distinct.len()
        );
    }

    #[test]
    fn systems_are_bit_identical_per_seed() {
        let a = system_from_seed(42);
        let b = system_from_seed(42);
        assert_eq!(a.values_att(), b.values_att());
        assert_eq!(a.known_terms(), b.known_terms());
        assert_eq!(a.instr_col(), b.instr_col());
    }

    #[test]
    fn permutations_are_accepted_and_nontrivial() {
        let mut moved = 0usize;
        for seed in 0..20 {
            let mut s = system_from_seed(seed);
            let perm = permutation_within_stars(seed, s.layout());
            s.permute_rows(&perm).unwrap();
            moved += perm.iter().enumerate().filter(|&(i, &p)| i != p).count();
        }
        assert!(moved > 0, "no permutation moved any row");
    }

    #[test]
    fn truth_vector_matches_column_count() {
        let (s, truth) = system_with_truth_from_seed(7);
        assert_eq!(truth.len(), s.n_cols());
    }
}
