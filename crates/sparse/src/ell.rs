//! ELL-style (slot-major) mirror of a [`SparseSystem`].
//!
//! The production storage is row-major: the 5/12/6 coefficients of a row
//! sit contiguously, which is ideal for one thread walking one row. GPU
//! SpMV literature (and the amd-lab-notes kernels the paper benchmarks
//! against) instead favours ELLPACK: because every AVU-GSR row stores a
//! *fixed* number of non-zeros per block, the value arrays transpose
//! losslessly into slot-major order — `values[slot][row]` — so that
//! consecutive rows of one slot are contiguous. On CPUs this is the
//! layout auto-vectorizers want for the row-parallel `aprod1` gather and
//! it keeps the per-slot stream of `aprod2` reads sequential.
//!
//! The transpose is a pure permutation of the stored values — no
//! arithmetic — so the round-trip `SparseSystem` → [`EllSystem`] →
//! `SparseSystem` is bit-identical, which the tests assert. Backends pick
//! the layout per [`MatrixLayout`] carried by their launch plan, not by
//! code path: the same kernels exist in row-major and ELL flavours and
//! the tuner decides which wins on a given shape.

use serde::{Deserialize, Serialize};

use crate::layout::SystemLayout;
use crate::system::{SparseSystem, ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};

/// Which physical value layout a kernel reads.
///
/// Carried by `LaunchPlan` in `gaia-backends`; defined here so the sparse
/// crate can account its footprint honestly and convert between forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MatrixLayout {
    /// Production row-major arrays (`values[row][slot]`).
    #[default]
    RowMajor,
    /// ELL-style slot-major transpose (`values[slot][row]`).
    Ell,
}

impl MatrixLayout {
    /// Stable name used in profiles and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            MatrixLayout::RowMajor => "row-major",
            MatrixLayout::Ell => "ell",
        }
    }

    /// Parse a profile / CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "row-major" => Some(MatrixLayout::RowMajor),
            "ell" => Some(MatrixLayout::Ell),
            _ => None,
        }
    }

    /// All layouts, for tuner sweeps.
    pub const ALL: [MatrixLayout; 2] = [MatrixLayout::RowMajor, MatrixLayout::Ell];
}

impl std::fmt::Display for MatrixLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Slot-major mirror of a [`SparseSystem`].
///
/// Every value array is transposed so slot `k` of all rows is contiguous:
/// `astro_slot(k)[row] == values_astro[row * 5 + k]`, and likewise for the
/// attitude (12 slots over all rows incl. constraints) and instrumental
/// (6 value slots + 6 column slots) blocks. Index arrays and known terms
/// are copied verbatim; the global block already stores one value per row
/// so it is shared as-is.
#[derive(Debug, Clone, PartialEq)]
pub struct EllSystem {
    layout: SystemLayout,
    /// `5 × n_obs_rows`, slot-major.
    astro: Vec<f64>,
    /// `12 × n_rows`, slot-major.
    att: Vec<f64>,
    /// `6 × n_obs_rows`, slot-major.
    instr: Vec<f64>,
    /// `6 × n_obs_rows`, slot-major columns matching `instr`.
    instr_col: Vec<u32>,
    /// `n_obs_rows × n_glob_params`, copied row-major (≤ 1 slot).
    glob: Vec<f64>,
    matrix_index_astro: Vec<u64>,
    matrix_index_att: Vec<u64>,
    known_terms: Vec<f64>,
}

/// Transpose `rows × slots` row-major into `slots × rows` slot-major.
fn transpose<T: Copy + Default>(src: &[T], rows: usize, slots: usize) -> Vec<T> {
    debug_assert_eq!(src.len(), rows * slots);
    let mut dst = vec![T::default(); src.len()];
    for row in 0..rows {
        for k in 0..slots {
            dst[k * rows + row] = src[row * slots + k];
        }
    }
    dst
}

/// Inverse of [`transpose`]: slot-major back to row-major.
fn untranspose<T: Copy + Default>(src: &[T], rows: usize, slots: usize) -> Vec<T> {
    debug_assert_eq!(src.len(), rows * slots);
    let mut dst = vec![T::default(); src.len()];
    for row in 0..rows {
        for k in 0..slots {
            dst[row * slots + k] = src[k * rows + row];
        }
    }
    dst
}

impl EllSystem {
    /// Build the slot-major mirror of `sys`. Pure data movement: every
    /// stored value keeps its exact bit pattern.
    pub fn from_system(sys: &SparseSystem) -> Self {
        let n_obs = sys.n_obs_rows();
        let n_rows = sys.n_rows();
        EllSystem {
            layout: *sys.layout(),
            astro: transpose(sys.values_astro(), n_obs, ASTRO_NNZ_PER_ROW),
            att: transpose(sys.values_att(), n_rows, ATT_NNZ_PER_ROW),
            instr: transpose(sys.values_instr(), n_obs, INSTR_NNZ_PER_ROW),
            instr_col: transpose(sys.instr_col(), n_obs, INSTR_NNZ_PER_ROW),
            glob: sys.values_glob().to_vec(),
            matrix_index_astro: sys.matrix_index_astro().to_vec(),
            matrix_index_att: sys.matrix_index_att().to_vec(),
            known_terms: sys.known_terms().to_vec(),
        }
    }

    /// Reconstruct the row-major [`SparseSystem`]. The inverse permutation
    /// of [`EllSystem::from_system`]; the result is bit-identical to the
    /// original in every stored array.
    pub fn to_system(&self) -> Result<SparseSystem, crate::system::SystemError> {
        let n_obs = self.layout.n_obs_rows() as usize;
        let n_rows = self.layout.n_rows() as usize;
        let mut sys = SparseSystem::from_parts_shard(
            self.layout,
            untranspose(&self.astro, n_obs, ASTRO_NNZ_PER_ROW),
            untranspose(&self.att, n_rows, ATT_NNZ_PER_ROW),
            untranspose(&self.instr, n_obs, INSTR_NNZ_PER_ROW),
            self.glob.clone(),
            self.matrix_index_astro.clone(),
            self.matrix_index_att.clone(),
            untranspose(&self.instr_col, n_obs, INSTR_NNZ_PER_ROW),
            vec![0.0; n_rows],
        )?;
        sys.set_known_terms(self.known_terms.clone());
        Ok(sys)
    }

    /// The layout this mirror was built from.
    pub fn layout(&self) -> &SystemLayout {
        &self.layout
    }

    /// Astrometric slot `k` (`k < 5`): one value per observation row.
    #[inline]
    pub fn astro_slot(&self, k: usize) -> &[f64] {
        let n = self.layout.n_obs_rows() as usize;
        &self.astro[k * n..(k + 1) * n]
    }

    /// Attitude slot `k` (`k < 12`): one value per row (obs + constraints).
    #[inline]
    pub fn att_slot(&self, k: usize) -> &[f64] {
        let n = self.layout.n_rows() as usize;
        &self.att[k * n..(k + 1) * n]
    }

    /// Instrumental value slot `k` (`k < 6`): one value per observation row.
    #[inline]
    pub fn instr_slot(&self, k: usize) -> &[f64] {
        let n = self.layout.n_obs_rows() as usize;
        &self.instr[k * n..(k + 1) * n]
    }

    /// Instrumental column slot `k` (`k < 6`), matching
    /// [`EllSystem::instr_slot`].
    #[inline]
    pub fn instr_col_slot(&self, k: usize) -> &[u32] {
        let n = self.layout.n_obs_rows() as usize;
        &self.instr_col[k * n..(k + 1) * n]
    }

    /// `matrixIndexAstro` (copied verbatim from the source system).
    #[inline]
    pub fn matrix_index_astro(&self) -> &[u64] {
        &self.matrix_index_astro
    }

    /// `matrixIndexAtt` (copied verbatim from the source system).
    #[inline]
    pub fn matrix_index_att(&self) -> &[u64] {
        &self.matrix_index_att
    }

    /// Global values (row-major; ≤ 1 per observation row).
    #[inline]
    pub fn values_glob(&self) -> &[f64] {
        &self.glob
    }

    /// Bytes held by this mirror (values + indices + known terms), for
    /// honest footprint accounting: the ELL mirror duplicates the device
    /// arrays, it does not replace them.
    pub fn resident_bytes(&self) -> u64 {
        crate::footprint::ell_mirror_bytes(&self.layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    fn sys(seed: u64) -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(seed)).generate()
    }

    fn assert_bit_identical(a: &SparseSystem, b: &SparseSystem) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.values_astro()), bits(b.values_astro()));
        assert_eq!(bits(a.values_att()), bits(b.values_att()));
        assert_eq!(bits(a.values_instr()), bits(b.values_instr()));
        assert_eq!(bits(a.values_glob()), bits(b.values_glob()));
        assert_eq!(bits(a.known_terms()), bits(b.known_terms()));
        assert_eq!(a.matrix_index_astro(), b.matrix_index_astro());
        assert_eq!(a.matrix_index_att(), b.matrix_index_att());
        assert_eq!(a.instr_col(), b.instr_col());
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for seed in [1u64, 7, 42] {
            let original = sys(seed);
            let ell = EllSystem::from_system(&original);
            let back = ell.to_system().expect("round-trip must re-validate");
            assert_bit_identical(&original, &back);
        }
    }

    #[test]
    fn double_conversion_is_stable() {
        let original = sys(7);
        let once = EllSystem::from_system(&original);
        let back = once.to_system().unwrap();
        let twice = EllSystem::from_system(&back);
        assert_eq!(once, twice);
    }

    #[test]
    fn slots_match_row_major_views() {
        let s = sys(3);
        let ell = EllSystem::from_system(&s);
        for row in 0..s.n_obs_rows() {
            let (astro, _) = s.astro_row(row);
            for (k, &v) in astro.iter().enumerate() {
                assert_eq!(ell.astro_slot(k)[row].to_bits(), v.to_bits());
            }
            let (instr, cols) = s.instr_row(row);
            for k in 0..INSTR_NNZ_PER_ROW {
                assert_eq!(ell.instr_slot(k)[row].to_bits(), instr[k].to_bits());
                assert_eq!(ell.instr_col_slot(k)[row], cols[k]);
            }
        }
        for row in 0..s.n_rows() {
            let (att, _) = s.att_row(row);
            for (k, &v) in att.iter().enumerate() {
                assert_eq!(ell.att_slot(k)[row].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn layout_names_round_trip() {
        for l in MatrixLayout::ALL {
            assert_eq!(MatrixLayout::parse(l.as_str()), Some(l));
        }
        assert_eq!(MatrixLayout::parse("csr"), None);
        assert_eq!(MatrixLayout::default(), MatrixLayout::RowMajor);
    }
}
