//! Byte-exact memory accounting.
//!
//! The paper gates which problem sizes run on which GPU by device memory:
//! "the GPU memory occupancy is closely related to the size of the A matrix
//! (copied only once before the main iteration cycle)" (§V-B). The 10 GB
//! problem runs everywhere, 30 GB excludes the 15 GB Tesla T4, and 60 GB
//! only fits the H100 (96 GB) and MI250X.
//!
//! "Problem size" in the paper (and in the artifact's runtime `GB` argument)
//! is the footprint of the reduced matrix plus its index arrays and known
//! terms — the data copied to the device before the LSQR loop. The solver's
//! per-iteration work vectors are accounted separately.

use crate::layout::{BlockKind, SystemLayout};
use crate::{INSTR_PARAMS_PER_ROW, NNZ_PER_ROW};

/// Size of one stored coefficient (`double`).
pub const VALUE_BYTES: u64 = 8;
/// Size of one `matrixIndex{Astro,Att}` entry (`long`).
pub const ROW_INDEX_BYTES: u64 = 8;
/// Size of one `instrCol` entry (`int`), as in the production code.
pub const INSTR_COL_BYTES: u64 = 4;

/// Device bytes contributed by a single observation row: 24 coefficients,
/// one known term, two row indices, six instrument column indices.
pub const DEVICE_BYTES_PER_OBS_ROW: u64 = NNZ_PER_ROW as u64 * VALUE_BYTES
    + VALUE_BYTES
    + 2 * ROW_INDEX_BYTES
    + INSTR_PARAMS_PER_ROW as u64 * INSTR_COL_BYTES;

/// Bytes of coefficient storage for one block (values only).
pub fn block_bytes(layout: &SystemLayout, kind: BlockKind) -> u64 {
    layout.nnz(kind) * VALUE_BYTES
}

/// Bytes of index metadata (`matrixIndexAstro`, `matrixIndexAtt`,
/// `instrCol`).
pub fn index_bytes(layout: &SystemLayout) -> u64 {
    let astro_idx = layout.n_obs_rows() * ROW_INDEX_BYTES;
    let att_idx = layout.n_rows() * ROW_INDEX_BYTES;
    let instr_idx = layout.n_obs_rows() * INSTR_PARAMS_PER_ROW as u64 * INSTR_COL_BYTES;
    astro_idx + att_idx + instr_idx
}

/// Bytes of the known-terms vector `b`.
pub fn known_terms_bytes(layout: &SystemLayout) -> u64 {
    layout.n_rows() * VALUE_BYTES
}

/// Total bytes resident on the device before the LSQR loop starts — the
/// paper's "problem size".
pub fn device_bytes(layout: &SystemLayout) -> u64 {
    let values: u64 = BlockKind::ALL.iter().map(|&k| block_bytes(layout, k)).sum();
    values + index_bytes(layout) + known_terms_bytes(layout)
}

/// Bytes of the LSQR work vectors (`x`, `v`, `w`, `var` of length `n_cols`;
/// `u`/`b̃` of length `n_rows`).
pub fn solver_workspace_bytes(layout: &SystemLayout) -> u64 {
    4 * layout.n_cols() * VALUE_BYTES + layout.n_rows() * VALUE_BYTES
}

/// Total device-resident bytes during the solve.
pub fn total_device_bytes(layout: &SystemLayout) -> u64 {
    device_bytes(layout) + solver_workspace_bytes(layout)
}

/// Bytes *read* by one `aprod1` pass over a block (coefficients, indices,
/// the gathered slice of `x`, and the streamed update of `b̃`). Used by the
/// GPU simulator's roofline model.
pub fn aprod1_traffic_bytes(layout: &SystemLayout, kind: BlockKind) -> u64 {
    let rows = match kind {
        BlockKind::Attitude => layout.n_rows(),
        _ => layout.n_obs_rows(),
    };
    let coeff = layout.nnz(kind) * VALUE_BYTES;
    let idx = match kind {
        BlockKind::Astrometric => rows * ROW_INDEX_BYTES,
        BlockKind::Attitude => rows * ROW_INDEX_BYTES,
        BlockKind::Instrumental => rows * INSTR_PARAMS_PER_ROW as u64 * INSTR_COL_BYTES,
        BlockKind::Global => 0,
    };
    // Gathered x elements (one load per non-zero; caches make this an upper
    // bound, the simulator applies a per-platform reuse factor) plus the
    // read-modify-write of b̃.
    let x_gather = layout.nnz(kind) * VALUE_BYTES;
    let b_rmw = 2 * rows * VALUE_BYTES;
    coeff + idx + x_gather + b_rmw
}

/// Bytes moved by one `aprod2` pass over a block (transpose product).
pub fn aprod2_traffic_bytes(layout: &SystemLayout, kind: BlockKind) -> u64 {
    let rows = match kind {
        BlockKind::Attitude => layout.n_rows(),
        _ => layout.n_obs_rows(),
    };
    let coeff = layout.nnz(kind) * VALUE_BYTES;
    let idx = match kind {
        BlockKind::Astrometric => rows * ROW_INDEX_BYTES,
        BlockKind::Attitude => rows * ROW_INDEX_BYTES,
        BlockKind::Instrumental => rows * INSTR_PARAMS_PER_ROW as u64 * INSTR_COL_BYTES,
        BlockKind::Global => 0,
    };
    let b_read = rows * VALUE_BYTES;
    // Scattered atomic (or owned, for astro) updates of x̃: read+write per nnz.
    let x_rmw = 2 * layout.nnz(kind) * VALUE_BYTES;
    coeff + idx + b_read + x_rmw
}

/// Floating-point operations of one `aprod1` pass over a block
/// (multiply-add per non-zero).
pub fn aprod_flops(layout: &SystemLayout, kind: BlockKind) -> u64 {
    2 * layout.nnz(kind)
}

/// Bytes held by the ELL (slot-major) mirror of a system
/// ([`crate::ell::EllSystem`]).
///
/// The mirror stores exactly the device arrays — every block's values,
/// both row-index arrays, the instrument columns, and the known terms —
/// transposed but not compressed, so its size equals
/// [`device_bytes`]. Kept as its own function so the equality is a
/// documented invariant, not a coincidence.
pub fn ell_mirror_bytes(layout: &SystemLayout) -> u64 {
    device_bytes(layout)
}

/// Total matrix bytes resident when a backend runs with the given value
/// layout. The ELL mirror is a *cache alongside* the row-major arrays
/// (kernels that need row-major views — and the round-trip guarantee —
/// keep the originals), so selecting [`crate::ell::MatrixLayout::Ell`]
/// doubles the matrix residency rather than replacing it.
pub fn resident_matrix_bytes(layout: &SystemLayout, value_layout: crate::ell::MatrixLayout) -> u64 {
    match value_layout {
        crate::ell::MatrixLayout::RowMajor => device_bytes(layout),
        crate::ell::MatrixLayout::Ell => device_bytes(layout) + ell_mirror_bytes(layout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_obs_row_is_240() {
        // 24×8 values + 8 known term + 2×8 row indices + 6×4 instr cols.
        assert_eq!(DEVICE_BYTES_PER_OBS_ROW, 240);
    }

    #[test]
    fn device_bytes_close_to_rows_times_row_bytes() {
        let l = SystemLayout::from_gb(1.0);
        let exact = device_bytes(&l);
        let approx = l.n_obs_rows() * DEVICE_BYTES_PER_OBS_ROW;
        // Constraint rows add a small amount on top of the per-row estimate.
        assert!(exact >= approx);
        assert!((exact - approx) < exact / 100);
    }

    #[test]
    fn workspace_is_small_relative_to_matrix() {
        // §V-B footnote: the matrix dominates device memory.
        let l = SystemLayout::from_gb(10.0);
        assert!(solver_workspace_bytes(&l) < device_bytes(&l) / 10);
    }

    #[test]
    fn traffic_accounting_is_positive_and_ordered() {
        let l = SystemLayout::small();
        for kind in BlockKind::ALL {
            if l.nnz(kind) == 0 {
                continue;
            }
            assert!(aprod1_traffic_bytes(&l, kind) > 0);
            // aprod2 moves at least as much as aprod1 per block: scattered
            // RMW on x̃ outweighs the streaming b̃ update.
            assert!(aprod2_traffic_bytes(&l, kind) >= aprod1_traffic_bytes(&l, kind));
            assert_eq!(aprod_flops(&l, kind), 2 * l.nnz(kind));
        }
    }

    #[test]
    fn ell_mirror_matches_its_materialized_size() {
        use crate::ell::{EllSystem, MatrixLayout};
        use crate::generator::{Generator, GeneratorConfig};
        let l = SystemLayout::tiny();
        let sys = Generator::new(GeneratorConfig::new(l).seed(7)).generate();
        let ell = EllSystem::from_system(&sys);
        // Count what the mirror actually holds, independent of the
        // accounting formula: 5+12+6(+glob) values, 6 u32 columns, two u64
        // row-index arrays, and the known terms.
        let n_obs = sys.n_obs_rows() as u64;
        let n_rows = sys.n_rows() as u64;
        let counted = (sys.values_astro().len()
            + sys.values_att().len()
            + sys.values_instr().len()
            + sys.values_glob().len()
            + sys.known_terms().len()) as u64
            * VALUE_BYTES
            + (n_obs + n_rows) * ROW_INDEX_BYTES
            + sys.instr_col().len() as u64 * INSTR_COL_BYTES;
        assert_eq!(ell_mirror_bytes(&l), counted);
        assert_eq!(ell.resident_bytes(), counted);
        // The transpose is size-preserving: mirror == device arrays.
        assert_eq!(ell_mirror_bytes(&l), device_bytes(&l));
        // Selecting the ELL layout keeps the row-major arrays alive.
        assert_eq!(
            resident_matrix_bytes(&l, MatrixLayout::Ell),
            2 * device_bytes(&l)
        );
        assert_eq!(
            resident_matrix_bytes(&l, MatrixLayout::RowMajor),
            device_bytes(&l)
        );
    }

    #[test]
    fn constants_match_block_shapes() {
        assert_eq!(crate::ASTRO_PARAMS_PER_STAR, 5);
        assert_eq!(crate::ATT_AXES * crate::ATT_PARAMS_PER_AXIS, 12);
        assert_eq!(INSTR_PARAMS_PER_ROW, 6);
    }
}
