//! Out-of-core tiled storage for paper-scale systems.
//!
//! The paper's production systems (10–60 GB benchmarks, ~306 GB in the
//! full AVU-GSR pipeline) do not fit the memory of a single device, so
//! capacity — not FLOPs — is the binding constraint (§V-B's T4-vs-H100
//! capacity gating). This module adds the storage layer that makes that
//! regime measurable on any machine: the observation matrix is split into
//! fixed-size **row tiles** spilled to an on-disk directory
//! (`gaia-tiles/v1`), and solves stream tiles through a bounded LRU cache
//! whose every load and evict is accounted by a [`CapacityBudget`].
//!
//! Key invariants:
//!
//! * **Tiles align to star boundaries.** Every tile covers a contiguous
//!   star range `star0..star1`, so its observation rows are a contiguous
//!   global row range and its astrometric block is tile-local
//!   block-diagonal. Constraint rows fold into the last tile (their
//!   global rows follow the last tile's observation rows contiguously).
//! * **Bit-exact round trips.** Tile files store raw IEEE-754 bits; a
//!   [`TiledSystem::assemble`] of the tiles equals the source system
//!   array-for-array, and streamed generation
//!   ([`crate::Generator::generate_tiled`]) writes byte-identical files
//!   to [`write_tiles`] over the in-memory generator's output.
//! * **Tamper evidence.** Every tile file carries an FNV-1a checksum in
//!   the manifest; a corrupted tile is a hard error naming the tile path.
//!   The manifest also records a fingerprint of the *source* arrays, so a
//!   mutate-after-tile-write ([`SparseSystem::scale_column`] and friends)
//!   is detected by [`TileManifest::verify_matches`] instead of silently
//!   solving stale data.
//! * **The budget binds.** The cache evicts (oldest first) *before*
//!   loading, so resident bytes never exceed the budget at any instant; a
//!   budget smaller than a single tile is a typed error
//!   ([`TileError::BudgetTooSmall`]), not a thrash loop.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::constraints::build_constraint_rows;
use crate::generator::{draw_coeff, gaussian, sample_distinct_sorted, GeneratorConfig};
use crate::generator::{AttitudePattern, InstrumentPattern, Rhs};
use crate::io::{
    read_f64_array, read_u32, read_u32_array, read_u64, read_u64_array, write_f64_array, write_u32,
    write_u64, write_u64_array,
};
use crate::layout::SystemLayout;
use crate::system::{SparseSystem, ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use crate::ASTRO_PARAMS_PER_STAR;

/// On-disk format identifier recorded in every manifest.
pub const TILE_FORMAT: &str = "gaia-tiles/v1";
/// Magic of a tile file.
pub const TILE_MAGIC: [u8; 4] = *b"GTIL";
/// Magic of the known-terms file.
pub const KNOWN_MAGIC: [u8; 4] = *b"GTKB";
/// Version of the tile container format.
pub const TILE_VERSION: u32 = 1;
/// Name of the manifest file inside a tile directory.
pub const MANIFEST_NAME: &str = "manifest.json";
/// Name of the known-terms file inside a tile directory.
pub const KNOWN_TERMS_NAME: &str = "known_terms.bin";

/// Environment variable overriding the tile directory recorded in
/// checkpoints — set it when the spill directory has been moved between
/// a crash and the resume.
pub const TILES_DIR_ENV: &str = "GAIA_TILES_DIR";

/// Resolve a recorded tile directory, honoring the [`TILES_DIR_ENV`]
/// override (used after the spill directory is relocated).
pub fn resolve_tiles_dir(recorded: &Path) -> PathBuf {
    match std::env::var_os(TILES_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => recorded.to_path_buf(),
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failures of the tiled storage layer.
#[derive(Debug)]
pub enum TileError {
    /// Underlying I/O failure, with the offending path.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// Source error.
        source: io::Error,
    },
    /// A file decodes but is not a valid tile container.
    Format {
        /// Offending file.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A tile file's bytes do not match the manifest checksum.
    ChecksumMismatch {
        /// The corrupted tile file.
        path: PathBuf,
        /// Checksum recorded in the manifest.
        expected: String,
        /// Checksum of the bytes actually on disk.
        actual: String,
    },
    /// The capacity budget cannot hold even one tile.
    BudgetTooSmall {
        /// Budget limit in bytes.
        limit: u64,
        /// Size of the tile that does not fit.
        tile_bytes: u64,
    },
    /// A charge would push resident bytes past the limit — the caller
    /// must evict first (the LRU cache always does).
    BudgetExceeded {
        /// Budget limit in bytes.
        limit: u64,
        /// Bytes currently charged.
        used: u64,
        /// Bytes of the rejected charge.
        requested: u64,
    },
    /// The manifest no longer matches the source system (the system was
    /// mutated after the tiles were written).
    StaleManifest {
        /// What diverged.
        message: String,
    },
    /// Tile shapes are inconsistent with the manifest layout.
    InvalidShape {
        /// What diverged.
        message: String,
    },
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileError::Io { path, source } => {
                write!(f, "tile I/O error at {}: {source}", path.display())
            }
            TileError::Format { path, message } => {
                write!(f, "tile format error at {}: {message}", path.display())
            }
            TileError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "tile checksum mismatch at {}: manifest says {expected}, file hashes to {actual}",
                path.display()
            ),
            TileError::BudgetTooSmall { limit, tile_bytes } => write!(
                f,
                "capacity budget of {limit} bytes cannot hold a single {tile_bytes}-byte tile"
            ),
            TileError::BudgetExceeded {
                limit,
                used,
                requested,
            } => write!(
                f,
                "charge of {requested} bytes exceeds capacity budget ({used} of {limit} used)"
            ),
            TileError::StaleManifest { message } => {
                write!(f, "tile manifest is stale: {message}")
            }
            TileError::InvalidShape { message } => {
                write!(f, "tile shape invalid: {message}")
            }
        }
    }
}

impl std::error::Error for TileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TileError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path) -> impl Fn(io::Error) -> TileError + '_ {
    move |source| TileError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn from_io_error(path: &Path, e: crate::io::IoError) -> TileError {
    match e {
        crate::io::IoError::Io(source) => TileError::Io {
            path: path.to_path_buf(),
            source,
        },
        crate::io::IoError::Format(message) | crate::io::IoError::Invalid(message) => {
            TileError::Format {
                path: path.to_path_buf(),
                message,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FNV-1a hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher (same flavor as the checkpoint RHS
/// fingerprint in `gaia-lsqr`).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// A `Write` adapter that hashes and counts everything written through it.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv,
    bytes: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: Fnv::new(),
            bytes: 0,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.write(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Source fingerprint
// ---------------------------------------------------------------------------

/// Per-array hashers combined into one source fingerprint. Streamed
/// generation feeds these incrementally (its phases are array-major, so
/// each array is visited in exactly the in-memory order); the in-memory
/// path feeds whole arrays. Both yield the same digest for the same data.
pub(crate) struct SourceHasher {
    astro: Fnv,
    att: Fnv,
    instr: Fnv,
    glob: Fnv,
    idx_astro: Fnv,
    idx_att: Fnv,
    instr_col: Fnv,
    known: Fnv,
}

impl SourceHasher {
    fn new() -> Self {
        SourceHasher {
            astro: Fnv::new(),
            att: Fnv::new(),
            instr: Fnv::new(),
            glob: Fnv::new(),
            idx_astro: Fnv::new(),
            idx_att: Fnv::new(),
            instr_col: Fnv::new(),
            known: Fnv::new(),
        }
    }

    fn feed_f64(h: &mut Fnv, vals: &[f64]) {
        for &v in vals {
            h.write_f64(v);
        }
    }

    fn feed_u64(h: &mut Fnv, vals: &[u64]) {
        for &v in vals {
            h.write_u64(v);
        }
    }

    fn feed_u32(h: &mut Fnv, vals: &[u32]) {
        for &v in vals {
            h.write(&v.to_le_bytes());
        }
    }

    fn finish(self, layout: &SystemLayout) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(layout.n_stars);
        h.write_u64(layout.obs_per_star);
        h.write_u64(layout.n_deg_freedom_att);
        h.write_u64(layout.n_instr_params);
        h.write_u64(u64::from(layout.n_glob_params));
        h.write_u64(layout.n_constraint_rows);
        for digest in [
            self.astro.finish(),
            self.att.finish(),
            self.instr.finish(),
            self.glob.finish(),
            self.idx_astro.finish(),
            self.idx_att.finish(),
            self.instr_col.finish(),
            self.known.finish(),
        ] {
            h.write_u64(digest);
        }
        h.finish()
    }
}

/// Fingerprint of a system's full content (layout + every array,
/// including the known terms). Matrix index hashing uses the *global*
/// astrometric indices, so the digest is independent of the tiling.
pub fn source_fingerprint(sys: &SparseSystem) -> String {
    let mut src = SourceHasher::new();
    SourceHasher::feed_f64(&mut src.astro, sys.values_astro());
    SourceHasher::feed_f64(&mut src.att, sys.values_att());
    SourceHasher::feed_f64(&mut src.instr, sys.values_instr());
    SourceHasher::feed_f64(&mut src.glob, sys.values_glob());
    SourceHasher::feed_u64(&mut src.idx_astro, sys.matrix_index_astro());
    SourceHasher::feed_u64(&mut src.idx_att, sys.matrix_index_att());
    SourceHasher::feed_u32(&mut src.instr_col, sys.instr_col());
    SourceHasher::feed_f64(&mut src.known, sys.known_terms());
    hex(src.finish(sys.layout()))
}

// ---------------------------------------------------------------------------
// Capacity budget
// ---------------------------------------------------------------------------

/// Byte accountant every tile load and evict goes through.
///
/// The budget is a hard ceiling on *resident* tile bytes: a charge that
/// would exceed it is rejected with a typed error, never silently
/// absorbed. `peak` records the high-water mark, which the capacity
/// harness compares against the configured limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityBudget {
    limit: Option<u64>,
    used: u64,
    peak: u64,
}

impl CapacityBudget {
    /// A budget with no limit (all tiles may stay resident).
    pub fn unbounded() -> Self {
        CapacityBudget {
            limit: None,
            used: 0,
            peak: 0,
        }
    }

    /// A budget capped at `bytes` resident bytes.
    pub fn limited(bytes: u64) -> Self {
        CapacityBudget {
            limit: Some(bytes),
            used: 0,
            peak: 0,
        }
    }

    /// The configured limit (`None` when unbounded).
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Whether a charge of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        match self.limit {
            None => true,
            Some(limit) => self.used.saturating_add(bytes) <= limit,
        }
    }

    /// Charge `bytes`. Fails with [`TileError::BudgetTooSmall`] when the
    /// charge can *never* fit and [`TileError::BudgetExceeded`] when the
    /// caller should have evicted first; on either error the accountant
    /// is unchanged.
    pub fn charge(&mut self, bytes: u64) -> Result<(), TileError> {
        if let Some(limit) = self.limit {
            if bytes > limit {
                return Err(TileError::BudgetTooSmall {
                    limit,
                    tile_bytes: bytes,
                });
            }
            if self.used.saturating_add(bytes) > limit {
                return Err(TileError::BudgetExceeded {
                    limit,
                    used: self.used,
                    requested: bytes,
                });
            }
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release a previous charge of `bytes`.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "releasing more than was charged");
        self.used = self.used.saturating_sub(bytes);
    }
}

// ---------------------------------------------------------------------------
// LRU tile cache
// ---------------------------------------------------------------------------

/// Outcome of one cache access, reported to the caller so telemetry can
/// be recorded outside this crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileAccess {
    /// The tile was already resident.
    pub hit: bool,
    /// Bytes loaded by this access (0 on a hit).
    pub loaded_bytes: u64,
    /// Tiles evicted to make room for this access.
    pub evictions: u64,
    /// Bytes released by those evictions.
    pub evicted_bytes: u64,
}

/// Cumulative counters of a [`TileCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Misses that loaded a tile.
    pub loads: u64,
    /// Accesses served from resident tiles.
    pub hits: u64,
    /// Tiles evicted to stay under budget.
    pub evictions: u64,
    /// Total bytes loaded.
    pub loaded_bytes: u64,
    /// Total bytes evicted.
    pub evicted_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
    /// Bytes resident right now.
    pub resident_bytes: u64,
    /// Tiles resident right now.
    pub resident_tiles: usize,
}

/// Least-recently-used cache of loaded tiles, bounded by a
/// [`CapacityBudget`]. Generic over the cached value so the eviction
/// policy can be tested without touching the filesystem.
#[derive(Debug)]
pub struct TileCache<T> {
    budget: CapacityBudget,
    /// Resident tiles, oldest first.
    entries: VecDeque<(usize, u64, Arc<T>)>,
    loads: u64,
    hits: u64,
    evictions: u64,
    loaded_bytes: u64,
    evicted_bytes: u64,
}

impl<T> TileCache<T> {
    /// An empty cache governed by `budget`.
    pub fn new(budget: CapacityBudget) -> Self {
        TileCache {
            budget,
            entries: VecDeque::new(),
            loads: 0,
            hits: 0,
            evictions: 0,
            loaded_bytes: 0,
            evicted_bytes: 0,
        }
    }

    /// Fetch tile `id`, loading it via `load` on a miss. Eviction happens
    /// *before* the load so the budget is never exceeded, even
    /// transiently. A failed load leaves the cache unchanged (beyond any
    /// evictions already performed).
    pub fn get_or_load(
        &mut self,
        id: usize,
        bytes: u64,
        load: impl FnOnce() -> Result<T, TileError>,
    ) -> Result<(Arc<T>, TileAccess), TileError> {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == id) {
            // Refresh recency: move to the back (most recently used).
            // `position` guarantees the index is in range; were `remove`
            // ever to miss, the entry falls through to a plain reload
            // rather than panicking mid-solve.
            if let Some(entry) = self.entries.remove(pos) {
                let value = Arc::clone(&entry.2);
                self.entries.push_back(entry);
                self.hits += 1;
                return Ok((
                    value,
                    TileAccess {
                        hit: true,
                        ..TileAccess::default()
                    },
                ));
            }
        }

        let mut access = TileAccess::default();
        while !self.budget.fits(bytes) {
            let Some((_, evicted, _)) = self.entries.pop_front() else {
                // Nothing left to evict: the tile alone exceeds the limit.
                return Err(TileError::BudgetTooSmall {
                    limit: self.budget.limit().unwrap_or(0),
                    tile_bytes: bytes,
                });
            };
            self.budget.release(evicted);
            self.evictions += 1;
            self.evicted_bytes += evicted;
            access.evictions += 1;
            access.evicted_bytes += evicted;
        }
        let value = Arc::new(load()?);
        self.budget.charge(bytes)?;
        self.loads += 1;
        self.loaded_bytes += bytes;
        access.loaded_bytes = bytes;
        self.entries.push_back((id, bytes, Arc::clone(&value)));
        Ok((value, access))
    }

    /// The governing budget.
    pub fn budget(&self) -> &CapacityBudget {
        &self.budget
    }

    /// Cumulative counters.
    pub fn stats(&self) -> TileCacheStats {
        TileCacheStats {
            loads: self.loads,
            hits: self.hits,
            evictions: self.evictions,
            loaded_bytes: self.loaded_bytes,
            evicted_bytes: self.evicted_bytes,
            peak_resident_bytes: self.budget.peak(),
            resident_bytes: self.budget.used(),
            resident_tiles: self.entries.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Per-tile metadata recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMeta {
    /// Tile index (file `tile-{index:05}.bin`).
    pub index: usize,
    /// First star covered by the tile.
    pub star0: u64,
    /// One past the last star covered.
    pub star1: u64,
    /// Constraint rows folded into this tile (non-zero only on the last).
    pub constraint_rows: u64,
    /// Size of the tile file in bytes.
    pub bytes: u64,
    /// FNV-1a checksum of the tile file bytes, hex-encoded.
    pub checksum: String,
}

/// The `gaia-tiles/v1` manifest: shape, provenance, and checksums of a
/// tile directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileManifest {
    /// Format identifier, always [`TILE_FORMAT`].
    pub format: String,
    /// Shape of the full (assembled) system.
    pub layout: SystemLayout,
    /// Generator seed when the tiles came from streamed generation.
    pub seed: Option<u64>,
    /// Stars per tile (the last tile may cover fewer).
    pub tile_stars: u64,
    /// Number of tiles.
    pub n_tiles: usize,
    /// Per-tile metadata in tile order.
    pub tiles: Vec<TileMeta>,
    /// FNV-1a checksum of the known-terms file, hex-encoded.
    pub known_terms_checksum: String,
    /// Combined fingerprint of all tile checksums + known terms — the
    /// identity of the on-disk matrix, recorded in checkpoints.
    pub matrix_fingerprint: String,
    /// Fingerprint of the source arrays (see [`source_fingerprint`]);
    /// lets [`TileManifest::verify_matches`] detect a source system that
    /// mutated after the tiles were written.
    pub source_fingerprint: String,
}

impl TileManifest {
    /// Check that `sys` still matches the arrays these tiles were written
    /// from; a mutated source (scaled column, permuted rows, replaced
    /// known terms) yields [`TileError::StaleManifest`].
    pub fn verify_matches(&self, sys: &SparseSystem) -> Result<(), TileError> {
        let now = source_fingerprint(sys);
        if now != self.source_fingerprint {
            return Err(TileError::StaleManifest {
                message: format!(
                    "source system fingerprint {now} != recorded {} — \
                     the system was mutated after the tiles were written",
                    self.source_fingerprint
                ),
            });
        }
        Ok(())
    }

    /// File name of tile `index`.
    pub fn tile_file_name(index: usize) -> String {
        format!("tile-{index:05}.bin")
    }
}

fn combine_fingerprint(tiles: &[TileMeta], known_checksum: u64) -> String {
    let mut h = Fnv::new();
    for t in tiles {
        h.write_u64(parse_hex_or_zero(&t.checksum));
    }
    h.write_u64(known_checksum);
    hex(h.finish())
}

fn parse_hex_or_zero(s: &str) -> u64 {
    u64::from_str_radix(s, 16).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Tile geometry
// ---------------------------------------------------------------------------

/// Geometry of one tile within a parent layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileSpan {
    index: usize,
    star0: u64,
    star1: u64,
    constraint_rows: u64,
}

fn tile_spans(layout: &SystemLayout, tile_stars: u64) -> Vec<TileSpan> {
    assert!(tile_stars >= 1, "tile_stars must be at least 1");
    let n_tiles = layout.n_stars.div_ceil(tile_stars) as usize;
    (0..n_tiles)
        .map(|index| {
            let star0 = index as u64 * tile_stars;
            let star1 = (star0 + tile_stars).min(layout.n_stars);
            TileSpan {
                index,
                star0,
                star1,
                constraint_rows: if index + 1 == n_tiles {
                    layout.n_constraint_rows
                } else {
                    0
                },
            }
        })
        .collect()
}

fn local_layout(parent: &SystemLayout, span: &TileSpan) -> SystemLayout {
    SystemLayout {
        n_stars: span.star1 - span.star0,
        obs_per_star: parent.obs_per_star,
        n_deg_freedom_att: parent.n_deg_freedom_att,
        n_instr_params: parent.n_instr_params,
        n_glob_params: parent.n_glob_params,
        n_constraint_rows: span.constraint_rows,
    }
}

/// In-memory bytes of a resident tile shard, computed a priori from its
/// shape (value arrays + index arrays + known terms). This — not the
/// on-disk file size — is what the capacity budget accounts.
fn shard_resident_bytes(local: &SystemLayout) -> u64 {
    let n_obs = local.n_obs_rows();
    let n_rows = local.n_rows();
    let f64s = n_obs * ASTRO_NNZ_PER_ROW as u64
        + n_rows * ATT_NNZ_PER_ROW as u64
        + n_obs * INSTR_NNZ_PER_ROW as u64
        + n_obs * u64::from(local.n_glob_params)
        + n_rows; // known terms
    let u64s = n_obs + n_rows; // astro + att indices
    let u32s = n_obs * INSTR_NNZ_PER_ROW as u64;
    f64s * 8 + u64s * 8 + u32s * 4
}

// ---------------------------------------------------------------------------
// Tile shard
// ---------------------------------------------------------------------------

/// One resident tile: a tile-local [`SparseSystem`] plus the mapping
/// back into the parent's row and column spaces.
#[derive(Debug)]
pub struct TileShard {
    /// Tile index.
    pub index: usize,
    /// First parent star covered.
    pub star0: u64,
    /// One past the last parent star covered.
    pub star1: u64,
    /// First parent row covered (`star0 * obs_per_star`); the shard's
    /// rows are the contiguous parent range `row0 .. row0 + n_rows`.
    pub row0: u64,
    /// Constraint rows folded into this tile.
    pub n_constraint_rows: u64,
    /// Astrometric columns of the parent (`n_stars * 5`), needed to map
    /// shared-block columns.
    pub parent_astro_cols: u64,
    /// The tile-local system (astrometric indices remapped to the local
    /// star range; attitude/instrument/global blocks shared as-is).
    pub system: SparseSystem,
}

impl TileShard {
    /// Local astrometric column count (`(star1 - star0) * 5`).
    pub fn local_astro_cols(&self) -> u64 {
        (self.star1 - self.star0) * u64::from(ASTRO_PARAMS_PER_STAR)
    }

    /// Map a tile-local column to the parent column.
    #[inline]
    pub fn global_col(&self, local: u64) -> u64 {
        let astro = self.local_astro_cols();
        if local < astro {
            self.star0 * u64::from(ASTRO_PARAMS_PER_STAR) + local
        } else {
            self.parent_astro_cols + (local - astro)
        }
    }

    /// Gather the tile's view of a parent-length column vector: the
    /// tile's astrometric slice followed by the shared blocks.
    pub fn gather_cols(&self, x: &[f64]) -> Vec<f64> {
        let a0 = (self.star0 * u64::from(ASTRO_PARAMS_PER_STAR)) as usize;
        let a1 = (self.star1 * u64::from(ASTRO_PARAMS_PER_STAR)) as usize;
        let shared = self.parent_astro_cols as usize;
        let mut out = Vec::with_capacity((a1 - a0) + (x.len() - shared));
        out.extend_from_slice(&x[a0..a1]);
        out.extend_from_slice(&x[shared..]);
        out
    }

    /// Scatter a tile-local column vector back into the parent vector
    /// (overwrites the corresponding segments).
    pub fn scatter_cols(&self, local: &[f64], x: &mut [f64]) {
        let a0 = (self.star0 * u64::from(ASTRO_PARAMS_PER_STAR)) as usize;
        let a1 = (self.star1 * u64::from(ASTRO_PARAMS_PER_STAR)) as usize;
        let astro = a1 - a0;
        let shared = self.parent_astro_cols as usize;
        x[a0..a1].copy_from_slice(&local[..astro]);
        x[shared..].copy_from_slice(&local[astro..]);
    }

    /// Parent rows covered by this tile.
    pub fn global_rows(&self) -> std::ops::Range<u64> {
        self.row0..self.row0 + self.system.n_rows() as u64
    }
}

// ---------------------------------------------------------------------------
// Tile file I/O
// ---------------------------------------------------------------------------

/// Writer of one tile file; shared by [`write_tiles`] and streamed
/// generation so both produce byte-identical files. Sections are
/// appended across generation phases (the file section order *is* the
/// phase order), hashing incrementally — no seeks, no rewrites.
struct TileFileWriter {
    path: PathBuf,
    w: HashingWriter<io::BufWriter<std::fs::File>>,
}

impl TileFileWriter {
    fn create(dir: &Path, span: &TileSpan) -> Result<Self, TileError> {
        let path = dir.join(TileManifest::tile_file_name(span.index));
        let file = std::fs::File::create(&path).map_err(io_err(&path))?;
        let mut w = HashingWriter::new(io::BufWriter::new(file));
        (|| -> io::Result<()> {
            w.write_all(&TILE_MAGIC)?;
            write_u32(&mut w, TILE_VERSION)?;
            write_u64(&mut w, span.index as u64)?;
            write_u64(&mut w, span.star0)?;
            write_u64(&mut w, span.star1)?;
            write_u64(&mut w, span.constraint_rows)?;
            Ok(())
        })()
        .map_err(io_err(&path))?;
        Ok(TileFileWriter { path, w })
    }

    fn write_f64s(&mut self, vals: &[f64]) -> Result<(), TileError> {
        write_f64_array(&mut self.w, vals).map_err(io_err(&self.path))
    }

    fn write_u64s(&mut self, vals: &[u64]) -> Result<(), TileError> {
        write_u64_array(&mut self.w, vals).map_err(io_err(&self.path))
    }

    fn write_u32s(&mut self, vals: &[u32]) -> Result<(), TileError> {
        // u32 arrays use a u64 length prefix like the other arrays.
        (|| -> io::Result<()> {
            write_u64(&mut self.w, vals.len() as u64)?;
            for &v in vals {
                write_u32(&mut self.w, v)?;
            }
            Ok(())
        })()
        .map_err(io_err(&self.path))
    }

    fn finish(mut self, span: &TileSpan) -> Result<TileMeta, TileError> {
        self.w.flush().map_err(io_err(&self.path))?;
        Ok(TileMeta {
            index: span.index,
            star0: span.star0,
            star1: span.star1,
            constraint_rows: span.constraint_rows,
            bytes: self.w.bytes,
            checksum: hex(self.w.hash.finish()),
        })
    }
}

/// Read and checksum-verify one tile file, assembling the tile-local
/// shard. A checksum mismatch is a hard error naming the tile path.
fn read_tile(dir: &Path, parent: &SystemLayout, meta: &TileMeta) -> Result<TileShard, TileError> {
    let path = dir.join(TileManifest::tile_file_name(meta.index));
    let bytes = std::fs::read(&path).map_err(io_err(&path))?;
    let actual = hex(hash_bytes(&bytes));
    if actual != meta.checksum {
        return Err(TileError::ChecksumMismatch {
            path,
            expected: meta.checksum.clone(),
            actual,
        });
    }

    let mut r: &[u8] = &bytes;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err(&path))?;
    if magic != TILE_MAGIC {
        return Err(TileError::Format {
            path,
            message: "bad magic (not a GTIL tile)".into(),
        });
    }
    let version = read_u32(&mut r).map_err(io_err(&path))?;
    if version != TILE_VERSION {
        return Err(TileError::Format {
            path,
            message: format!("tile version {version} (expected {TILE_VERSION})"),
        });
    }
    let index = read_u64(&mut r).map_err(io_err(&path))?;
    let star0 = read_u64(&mut r).map_err(io_err(&path))?;
    let star1 = read_u64(&mut r).map_err(io_err(&path))?;
    let constraint_rows = read_u64(&mut r).map_err(io_err(&path))?;
    if index != meta.index as u64
        || star0 != meta.star0
        || star1 != meta.star1
        || constraint_rows != meta.constraint_rows
    {
        return Err(TileError::Format {
            path,
            message: "tile header disagrees with the manifest entry".into(),
        });
    }

    let values_astro = read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let values_att_obs = read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let values_instr = read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let values_glob = read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let idx_astro = read_u64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let idx_att_obs = read_u64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let instr_col = read_u32_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let constr_vals = read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))?;
    let constr_offs = read_u64_array(&mut r).map_err(|e| from_io_error(&path, e))?;

    let span = TileSpan {
        index: meta.index,
        star0,
        star1,
        constraint_rows,
    };
    let local = local_layout(parent, &span);
    let n_rows_local = local.n_rows() as usize;
    let mut values_att = values_att_obs;
    values_att.extend_from_slice(&constr_vals);
    let mut idx_att = idx_att_obs;
    idx_att.extend_from_slice(&constr_offs);
    let system = SparseSystem::from_parts_shard(
        local,
        values_astro,
        values_att,
        values_instr,
        values_glob,
        idx_astro,
        idx_att,
        instr_col,
        vec![0.0; n_rows_local],
    )
    .map_err(|e| TileError::InvalidShape {
        message: format!("tile {} at {}: {e}", meta.index, path.display()),
    })?;

    Ok(TileShard {
        index: meta.index,
        star0,
        star1,
        row0: star0 * parent.obs_per_star,
        n_constraint_rows: constraint_rows,
        parent_astro_cols: parent.n_astro_cols(),
        system,
    })
}

fn write_known_terms(dir: &Path, b: &[f64]) -> Result<String, TileError> {
    let path = dir.join(KNOWN_TERMS_NAME);
    let file = std::fs::File::create(&path).map_err(io_err(&path))?;
    let mut w = HashingWriter::new(io::BufWriter::new(file));
    (|| -> io::Result<()> {
        w.write_all(&KNOWN_MAGIC)?;
        write_u32(&mut w, TILE_VERSION)?;
        write_f64_array(&mut w, b)
    })()
    .map_err(io_err(&path))?;
    w.flush().map_err(io_err(&path))?;
    Ok(hex(w.hash.finish()))
}

fn read_known_terms(dir: &Path, expected_checksum: &str) -> Result<Vec<f64>, TileError> {
    let path = dir.join(KNOWN_TERMS_NAME);
    let bytes = std::fs::read(&path).map_err(io_err(&path))?;
    let actual = hex(hash_bytes(&bytes));
    if actual != expected_checksum {
        return Err(TileError::ChecksumMismatch {
            path,
            expected: expected_checksum.to_string(),
            actual,
        });
    }
    let mut r: &[u8] = &bytes;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err(&path))?;
    if magic != KNOWN_MAGIC {
        return Err(TileError::Format {
            path,
            message: "bad magic (not a GTKB known-terms file)".into(),
        });
    }
    let version = read_u32(&mut r).map_err(io_err(&path))?;
    if version != TILE_VERSION {
        return Err(TileError::Format {
            path,
            message: format!("known-terms version {version} (expected {TILE_VERSION})"),
        });
    }
    read_f64_array(&mut r).map_err(|e| from_io_error(&path, e))
}

fn write_manifest(dir: &Path, manifest: &TileManifest) -> Result<(), TileError> {
    let path = dir.join(MANIFEST_NAME);
    let json = serde_json::to_string_pretty(manifest).map_err(|e| TileError::Format {
        path: path.clone(),
        message: format!("cannot serialize manifest: {e}"),
    })?;
    std::fs::write(&path, json).map_err(io_err(&path))
}

fn read_manifest(dir: &Path) -> Result<TileManifest, TileError> {
    let path = dir.join(MANIFEST_NAME);
    let json = std::fs::read_to_string(&path).map_err(io_err(&path))?;
    let manifest: TileManifest = serde_json::from_str(&json).map_err(|e| TileError::Format {
        path: path.clone(),
        message: format!("cannot parse manifest: {e}"),
    })?;
    if manifest.format != TILE_FORMAT {
        return Err(TileError::Format {
            path,
            message: format!(
                "manifest format {:?} (expected {TILE_FORMAT:?})",
                manifest.format
            ),
        });
    }
    if manifest.tiles.len() != manifest.n_tiles {
        return Err(TileError::Format {
            path,
            message: format!(
                "manifest lists {} tiles but declares {}",
                manifest.tiles.len(),
                manifest.n_tiles
            ),
        });
    }
    manifest.layout.validate().map_err(|e| TileError::Format {
        path,
        message: format!("manifest layout invalid: {e}"),
    })?;
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// Writing tiles from an in-memory system
// ---------------------------------------------------------------------------

/// Spill an in-memory system into a `gaia-tiles/v1` directory with
/// `tile_stars` stars per tile. Uses the same writer as streamed
/// generation, so the tile files (and their checksums) are byte-identical
/// to what [`crate::Generator::generate_tiled`] would produce for the
/// same system.
pub fn write_tiles(
    sys: &SparseSystem,
    dir: &Path,
    tile_stars: u64,
) -> Result<TileManifest, TileError> {
    std::fs::create_dir_all(dir).map_err(io_err(dir))?;
    let layout = *sys.layout();
    let obs = layout.obs_per_star as usize;
    let glob = layout.n_glob_params as usize;
    let n_obs = sys.n_obs_rows();
    let spans = tile_spans(&layout, tile_stars);

    let mut metas = Vec::with_capacity(spans.len());
    for span in &spans {
        let r0 = span.star0 as usize * obs;
        let r1 = span.star1 as usize * obs;
        let mut w = TileFileWriter::create(dir, span)?;
        w.write_f64s(&sys.values_astro()[r0 * ASTRO_NNZ_PER_ROW..r1 * ASTRO_NNZ_PER_ROW])?;
        w.write_f64s(&sys.values_att()[r0 * ATT_NNZ_PER_ROW..r1 * ATT_NNZ_PER_ROW])?;
        w.write_f64s(&sys.values_instr()[r0 * INSTR_NNZ_PER_ROW..r1 * INSTR_NNZ_PER_ROW])?;
        w.write_f64s(&sys.values_glob()[r0 * glob..r1 * glob])?;
        let local_idx: Vec<u64> = sys.matrix_index_astro()[r0..r1]
            .iter()
            .map(|&g| g - span.star0 * u64::from(ASTRO_PARAMS_PER_STAR))
            .collect();
        w.write_u64s(&local_idx)?;
        w.write_u64s(&sys.matrix_index_att()[r0..r1])?;
        w.write_u32s(&sys.instr_col()[r0 * INSTR_NNZ_PER_ROW..r1 * INSTR_NNZ_PER_ROW])?;
        if span.constraint_rows > 0 {
            w.write_f64s(&sys.values_att()[n_obs * ATT_NNZ_PER_ROW..])?;
            w.write_u64s(&sys.matrix_index_att()[n_obs..])?;
        } else {
            w.write_f64s(&[])?;
            w.write_u64s(&[])?;
        }
        metas.push(w.finish(span)?);
    }

    let known_checksum = write_known_terms(dir, sys.known_terms())?;
    let manifest = TileManifest {
        format: TILE_FORMAT.to_string(),
        layout,
        seed: None,
        tile_stars,
        n_tiles: spans.len(),
        matrix_fingerprint: combine_fingerprint(&metas, parse_hex_or_zero(&known_checksum)),
        source_fingerprint: source_fingerprint(sys),
        tiles: metas,
        known_terms_checksum: known_checksum,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// Streamed generation
// ---------------------------------------------------------------------------

/// Streamed (chunk-at-a-time) generation: replay the in-memory
/// generator's RNG stream phase by phase, writing each tile section
/// straight to disk. Only one tile section is buffered at a time, so the
/// full system is never materialized — yet the output is bit-identical
/// to [`write_tiles`] over [`crate::Generator::generate`] for the same
/// configuration, because the generator consumes RNG draws array-major
/// (all astrometric values, then all attitude values, ...) and the tile
/// file section order equals that phase order.
pub(crate) fn generate_tiled_impl(
    config: &GeneratorConfig,
    dir: &Path,
    tile_stars: u64,
) -> Result<TileManifest, TileError> {
    std::fs::create_dir_all(dir).map_err(io_err(dir))?;
    let layout = config.layout;
    let obs = layout.obs_per_star as usize;
    let glob = layout.n_glob_params as usize;
    let n_obs = layout.n_obs_rows() as usize;
    let n_rows = layout.n_rows() as usize;
    let spans = tile_spans(&layout, tile_stars);

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut src = SourceHasher::new();
    let mut writers: Vec<TileFileWriter> = spans
        .iter()
        .map(|span| TileFileWriter::create(dir, span))
        .collect::<Result<_, _>>()?;

    let tile_obs = |span: &TileSpan| (span.star1 - span.star0) as usize * obs;

    // Phase 1: astrometric coefficients (RNG order = row-major, exactly
    // as the in-memory generator fills `values_astro`).
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let buf: Vec<f64> = (0..tile_obs(span) * ASTRO_NNZ_PER_ROW)
            .map(|_| draw_coeff(&mut rng))
            .collect();
        SourceHasher::feed_f64(&mut src.astro, &buf);
        w.write_f64s(&buf)?;
    }
    // Phase 2: attitude coefficients of the observation rows.
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let buf: Vec<f64> = (0..tile_obs(span) * ATT_NNZ_PER_ROW)
            .map(|_| draw_coeff(&mut rng))
            .collect();
        SourceHasher::feed_f64(&mut src.att, &buf);
        w.write_f64s(&buf)?;
    }
    // Phase 3: instrumental coefficients.
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let buf: Vec<f64> = (0..tile_obs(span) * INSTR_NNZ_PER_ROW)
            .map(|_| draw_coeff(&mut rng))
            .collect();
        SourceHasher::feed_f64(&mut src.instr, &buf);
        w.write_f64s(&buf)?;
    }
    // Phase 4: global coefficients.
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let buf: Vec<f64> = (0..tile_obs(span) * glob)
            .map(|_| draw_coeff(&mut rng))
            .collect();
        SourceHasher::feed_f64(&mut src.glob, &buf);
        w.write_f64s(&buf)?;
    }
    // Phase 5: astrometric indices (no RNG). Files store tile-local
    // indices; the source fingerprint hashes the global ones.
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let mut local = Vec::with_capacity(tile_obs(span));
        let mut global = Vec::with_capacity(tile_obs(span));
        for r in 0..tile_obs(span) {
            let local_star = (r / obs) as u64;
            local.push(local_star * u64::from(ASTRO_PARAMS_PER_STAR));
            global.push((span.star0 + local_star) * u64::from(ASTRO_PARAMS_PER_STAR));
        }
        SourceHasher::feed_u64(&mut src.idx_astro, &global);
        w.write_u64s(&local)?;
    }
    // Phase 6: attitude offsets of the observation rows (time-ordered
    // sweep, one jitter draw per row — base computed from the *global*
    // row index so the traversal matches the in-memory generator).
    let max_off = layout.n_deg_freedom_att - u64::from(crate::ATT_PARAMS_PER_AXIS);
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let row0 = span.star0 as usize * obs;
        let mut buf = Vec::with_capacity(tile_obs(span));
        for r in 0..tile_obs(span) {
            let row = row0 + r;
            let t = if n_obs <= 1 {
                0.0
            } else {
                row as f64 / (n_obs as f64 - 1.0)
            };
            let base = match config.attitude {
                AttitudePattern::LinearSweep => (t * max_off as f64) as u64,
                AttitudePattern::ScanLaw { revolutions } => {
                    let phase = t * f64::from(revolutions.max(1));
                    let tri = 1.0 - (2.0 * (phase - phase.floor()) - 1.0).abs();
                    (tri * max_off as f64) as u64
                }
            };
            let jitter = rng.gen_range(0..=2u64);
            buf.push((base + jitter).min(max_off));
        }
        SourceHasher::feed_u64(&mut src.idx_att, &buf);
        w.write_u64s(&buf)?;
    }
    // Phase 7: instrument columns.
    let n_instr = layout.n_instr_params;
    for (span, w) in spans.iter().zip(writers.iter_mut()) {
        let mut buf = vec![0u32; tile_obs(span) * INSTR_NNZ_PER_ROW];
        for r in 0..tile_obs(span) {
            let slots = &mut buf[r * INSTR_NNZ_PER_ROW..(r + 1) * INSTR_NNZ_PER_ROW];
            match config.instrument {
                InstrumentPattern::Uniform => sample_distinct_sorted(&mut rng, n_instr, slots),
                InstrumentPattern::Grouped => {
                    for (g, slot) in slots.iter_mut().enumerate() {
                        let g = g as u64;
                        let start = g * n_instr / INSTR_NNZ_PER_ROW as u64;
                        let end = (g + 1) * n_instr / INSTR_NNZ_PER_ROW as u64;
                        *slot = rng.gen_range(start..end.max(start + 1)) as u32;
                    }
                }
            }
        }
        SourceHasher::feed_u32(&mut src.instr_col, &buf);
        w.write_u32s(&buf)?;
    }
    // Phase 8: constraint rows (attitude-only; fold into the last tile,
    // empty trailing sections everywhere else).
    let (constr_vals, constr_offs) = build_constraint_rows(&layout, &mut rng);
    SourceHasher::feed_f64(&mut src.att, &constr_vals);
    SourceHasher::feed_u64(&mut src.idx_att, &constr_offs);
    let last = writers.len() - 1;
    for (t, w) in writers.iter_mut().enumerate() {
        if t == last {
            w.write_f64s(&constr_vals)?;
            w.write_u64s(&constr_offs)?;
        } else {
            w.write_f64s(&[])?;
            w.write_u64s(&[])?;
        }
    }
    let metas: Vec<TileMeta> = writers
        .into_iter()
        .zip(spans.iter())
        .map(|(w, span)| w.finish(span))
        .collect::<Result<_, _>>()?;

    // RHS phase. For a consistent right-hand side, each finished tile is
    // re-read (checksum-verified) and its local `row_dot` used — entry
    // order within a row matches the in-memory `row_dot`, so the sums
    // are bit-identical.
    let mut b = vec![0.0f64; n_rows];
    match config.rhs {
        Rhs::Random => {
            for slot in b.iter_mut() {
                *slot = rng.gen_range(-1.0..1.0);
            }
        }
        Rhs::FromTrueSolution { noise_sigma } => {
            let x_true: Vec<f64> = (0..layout.n_cols())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            for (span, meta) in spans.iter().zip(metas.iter()) {
                let shard = read_tile(dir, &layout, meta)?;
                let x_local = shard.gather_cols(&x_true);
                let row0 = span.star0 as usize * obs;
                for local_row in 0..shard.system.n_rows() {
                    b[row0 + local_row] = shard.system.row_dot(local_row, &x_local)
                        + if noise_sigma > 0.0 {
                            noise_sigma * gaussian(&mut rng)
                        } else {
                            0.0
                        };
                }
            }
        }
    }
    SourceHasher::feed_f64(&mut src.known, &b);
    let known_checksum = write_known_terms(dir, &b)?;

    let manifest = TileManifest {
        format: TILE_FORMAT.to_string(),
        layout,
        seed: Some(config.seed),
        tile_stars,
        n_tiles: spans.len(),
        matrix_fingerprint: combine_fingerprint(&metas, parse_hex_or_zero(&known_checksum)),
        source_fingerprint: hex(src.finish(&layout)),
        tiles: metas,
        known_terms_checksum: known_checksum,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// TiledSystem
// ---------------------------------------------------------------------------

/// An on-disk tiled system: manifest + known terms in memory (vectors
/// are small), matrix tiles streamed through a budget-bounded LRU cache.
#[derive(Debug)]
pub struct TiledSystem {
    dir: PathBuf,
    manifest: TileManifest,
    known_terms: Vec<f64>,
    cache: Mutex<TileCache<TileShard>>,
}

impl TiledSystem {
    /// Open a tile directory with an unbounded budget.
    pub fn open(dir: &Path) -> Result<Self, TileError> {
        Self::open_with_budget(dir, CapacityBudget::unbounded())
    }

    /// Open a tile directory with a resident-bytes budget. A budget
    /// smaller than the largest tile is rejected up front with
    /// [`TileError::BudgetTooSmall`] — better than thrashing forever.
    pub fn open_with_budget(dir: &Path, budget: CapacityBudget) -> Result<Self, TileError> {
        let manifest = read_manifest(dir)?;
        if let Some(limit) = budget.limit() {
            let largest = manifest
                .tiles
                .iter()
                .map(|m| Self::tile_resident_bytes_of(&manifest.layout, m))
                .max()
                .unwrap_or(0);
            if largest > limit {
                return Err(TileError::BudgetTooSmall {
                    limit,
                    tile_bytes: largest,
                });
            }
        }
        let known_terms = read_known_terms(dir, &manifest.known_terms_checksum)?;
        if known_terms.len() != manifest.layout.n_rows() as usize {
            return Err(TileError::InvalidShape {
                message: format!(
                    "known terms has {} rows, layout expects {}",
                    known_terms.len(),
                    manifest.layout.n_rows()
                ),
            });
        }
        Ok(TiledSystem {
            dir: dir.to_path_buf(),
            manifest,
            known_terms,
            cache: Mutex::new(TileCache::new(budget)),
        })
    }

    fn tile_resident_bytes_of(layout: &SystemLayout, meta: &TileMeta) -> u64 {
        let span = TileSpan {
            index: meta.index,
            star0: meta.star0,
            star1: meta.star1,
            constraint_rows: meta.constraint_rows,
        };
        shard_resident_bytes(&local_layout(layout, &span))
    }

    /// The manifest describing this tile directory.
    pub fn manifest(&self) -> &TileManifest {
        &self.manifest
    }

    /// Directory the tiles live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shape of the full (assembled) system.
    pub fn layout(&self) -> &SystemLayout {
        &self.manifest.layout
    }

    /// Total rows of the assembled system.
    pub fn n_rows(&self) -> usize {
        self.manifest.layout.n_rows() as usize
    }

    /// Observation rows of the assembled system.
    pub fn n_obs_rows(&self) -> usize {
        self.manifest.layout.n_obs_rows() as usize
    }

    /// Total unknowns.
    pub fn n_cols(&self) -> usize {
        self.manifest.layout.n_cols() as usize
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.manifest.n_tiles
    }

    /// Known terms `b` (held in memory — vectors are `O(rows)`, only the
    /// matrix is tiled).
    pub fn known_terms(&self) -> &[f64] {
        &self.known_terms
    }

    /// Resident bytes of tile `t` once loaded.
    pub fn tile_bytes(&self, t: usize) -> u64 {
        Self::tile_resident_bytes_of(&self.manifest.layout, &self.manifest.tiles[t])
    }

    /// Total resident bytes of the whole matrix (the "matrix bytes" the
    /// capacity sweep scales its budgets from).
    pub fn matrix_bytes(&self) -> u64 {
        (0..self.n_tiles()).map(|t| self.tile_bytes(t)).sum()
    }

    /// The smallest budget that can hold at least one tile.
    pub fn min_budget(&self) -> u64 {
        (0..self.n_tiles())
            .map(|t| self.tile_bytes(t))
            .max()
            .unwrap_or(0)
    }

    /// Fetch tile `t`, loading (and possibly evicting) through the
    /// budget-bounded cache. The returned [`TileAccess`] reports what
    /// the access cost so callers can record telemetry.
    pub fn tile(&self, t: usize) -> Result<(Arc<TileShard>, TileAccess), TileError> {
        let bytes = self.tile_bytes(t);
        let mut cache = match self.cache.lock() {
            Ok(c) => c,
            Err(poisoned) => poisoned.into_inner(),
        };
        cache.get_or_load(t, bytes, || {
            read_tile(&self.dir, &self.manifest.layout, &self.manifest.tiles[t])
        })
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> TileCacheStats {
        match self.cache.lock() {
            Ok(c) => c.stats(),
            Err(poisoned) => poisoned.into_inner().stats(),
        }
    }

    /// Column 2-norms of the assembled matrix, accumulated tile by tile
    /// in global row order — per column, the additions happen in exactly
    /// the order [`SparseSystem::column_norms`] uses, so the result is
    /// bitwise identical to the in-memory computation.
    pub fn column_norms(&self) -> Result<Vec<f64>, TileError> {
        let mut sq = vec![0.0f64; self.n_cols()];
        for t in 0..self.n_tiles() {
            let (shard, _) = self.tile(t)?;
            for row in 0..shard.system.n_rows() {
                for (local_col, val) in shard.system.row_entries(row) {
                    sq[shard.global_col(local_col) as usize] += val * val;
                }
            }
        }
        Ok(sq.iter().map(|&s| s.sqrt()).collect())
    }

    /// Assemble the full in-memory system from the tiles (for round-trip
    /// verification; defeats the point of tiling otherwise).
    pub fn assemble(&self) -> Result<SparseSystem, TileError> {
        let layout = self.manifest.layout;
        let n_obs = layout.n_obs_rows() as usize;
        let n_rows = layout.n_rows() as usize;
        let glob = layout.n_glob_params as usize;
        let mut values_astro = Vec::with_capacity(n_obs * ASTRO_NNZ_PER_ROW);
        let mut values_att = Vec::with_capacity(n_rows * ATT_NNZ_PER_ROW);
        let mut values_instr = Vec::with_capacity(n_obs * INSTR_NNZ_PER_ROW);
        let mut values_glob = Vec::with_capacity(n_obs * glob);
        let mut idx_astro = Vec::with_capacity(n_obs);
        let mut idx_att = Vec::with_capacity(n_rows);
        let mut instr_col = Vec::with_capacity(n_obs * INSTR_NNZ_PER_ROW);
        let mut constr_vals = Vec::new();
        let mut constr_offs = Vec::new();
        for t in 0..self.n_tiles() {
            let (shard, _) = self.tile(t)?;
            let s = &shard.system;
            let obs_local = s.n_obs_rows();
            values_astro.extend_from_slice(s.values_astro());
            values_att.extend_from_slice(&s.values_att()[..obs_local * ATT_NNZ_PER_ROW]);
            values_instr.extend_from_slice(s.values_instr());
            values_glob.extend_from_slice(s.values_glob());
            idx_astro.extend(
                s.matrix_index_astro()
                    .iter()
                    .map(|&l| l + shard.star0 * u64::from(ASTRO_PARAMS_PER_STAR)),
            );
            idx_att.extend_from_slice(&s.matrix_index_att()[..obs_local]);
            instr_col.extend_from_slice(s.instr_col());
            if shard.n_constraint_rows > 0 {
                constr_vals.extend_from_slice(&s.values_att()[obs_local * ATT_NNZ_PER_ROW..]);
                constr_offs.extend_from_slice(&s.matrix_index_att()[obs_local..]);
            }
        }
        values_att.extend_from_slice(&constr_vals);
        idx_att.extend_from_slice(&constr_offs);
        SparseSystem::from_parts(
            layout,
            values_astro,
            values_att,
            values_instr,
            values_glob,
            idx_astro,
            idx_att,
            instr_col,
            self.known_terms.clone(),
        )
        .map_err(|e| TileError::InvalidShape {
            message: format!("assembled system invalid: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gaia-tiled-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_sys(seed: u64) -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(seed)).generate()
    }

    #[test]
    fn write_then_assemble_is_bit_exact() {
        let dir = tmp_dir("round-trip");
        let sys = tiny_sys(11);
        let manifest = write_tiles(&sys, &dir, 2).unwrap();
        assert_eq!(manifest.n_tiles, 3);
        let tiled = TiledSystem::open(&dir).unwrap();
        let back = tiled.assemble().unwrap();
        assert_eq!(back.values_astro(), sys.values_astro());
        assert_eq!(back.values_att(), sys.values_att());
        assert_eq!(back.values_instr(), sys.values_instr());
        assert_eq!(back.values_glob(), sys.values_glob());
        assert_eq!(back.matrix_index_astro(), sys.matrix_index_astro());
        assert_eq!(back.matrix_index_att(), sys.matrix_index_att());
        assert_eq!(back.instr_col(), sys.instr_col());
        assert_eq!(back.known_terms(), sys.known_terms());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uneven_tile_split_covers_every_star() {
        let dir = tmp_dir("uneven");
        let sys = tiny_sys(12);
        // 6 stars into tiles of 4: tiles of 4 and 2 stars.
        let manifest = write_tiles(&sys, &dir, 4).unwrap();
        assert_eq!(manifest.n_tiles, 2);
        assert_eq!(manifest.tiles[0].star1 - manifest.tiles[0].star0, 4);
        assert_eq!(manifest.tiles[1].star1 - manifest.tiles[1].star0, 2);
        assert_eq!(manifest.tiles[1].constraint_rows, 3);
        let back = TiledSystem::open(&dir).unwrap().assemble().unwrap();
        assert_eq!(back.known_terms(), sys.known_terms());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_generation_matches_write_tiles_byte_for_byte() {
        let layout = SystemLayout::tiny();
        for seed in [0u64, 7, 42] {
            let cfg = GeneratorConfig::new(layout).seed(seed);
            let dir_mem = tmp_dir(&format!("mem-{seed}"));
            let dir_str = tmp_dir(&format!("str-{seed}"));
            let sys = Generator::new(cfg).generate();
            let m_mem = write_tiles(&sys, &dir_mem, 2).unwrap();
            let m_str = Generator::new(cfg).generate_tiled(&dir_str, 2).unwrap();
            assert_eq!(m_str.seed, Some(seed));
            for (a, b) in m_mem.tiles.iter().zip(m_str.tiles.iter()) {
                assert_eq!(a.checksum, b.checksum, "tile {} differs", a.index);
                assert_eq!(a.bytes, b.bytes);
            }
            assert_eq!(m_mem.known_terms_checksum, m_str.known_terms_checksum);
            assert_eq!(m_mem.matrix_fingerprint, m_str.matrix_fingerprint);
            assert_eq!(m_mem.source_fingerprint, m_str.source_fingerprint);
            // And the assembled streamed system equals the in-memory one.
            let back = TiledSystem::open(&dir_str).unwrap().assemble().unwrap();
            assert_eq!(back.values_astro(), sys.values_astro());
            assert_eq!(back.known_terms(), sys.known_terms());
            std::fs::remove_dir_all(&dir_mem).ok();
            std::fs::remove_dir_all(&dir_str).ok();
        }
    }

    #[test]
    fn streamed_generation_random_rhs_matches_in_memory() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(5)
            .rhs(Rhs::Random);
        let dir = tmp_dir("random-rhs");
        let sys = Generator::new(cfg).generate();
        Generator::new(cfg).generate_tiled(&dir, 3).unwrap();
        let back = TiledSystem::open(&dir).unwrap().assemble().unwrap();
        assert_eq!(back.known_terms(), sys.known_terms());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_tile_is_a_hard_error_naming_the_path() {
        let dir = tmp_dir("corrupt");
        let sys = tiny_sys(13);
        write_tiles(&sys, &dir, 2).unwrap();
        let victim = dir.join(TileManifest::tile_file_name(1));
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        let tiled = TiledSystem::open(&dir).unwrap();
        let err = tiled.tile(1).unwrap_err();
        match &err {
            TileError::ChecksumMismatch { path, .. } => {
                assert_eq!(path, &victim, "error must name the corrupted tile");
            }
            other => panic!("expected ChecksumMismatch, got {other}"),
        }
        assert!(err.to_string().contains("tile-00001.bin"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undersized_budget_is_a_typed_error_not_a_thrash() {
        let dir = tmp_dir("undersized");
        let sys = tiny_sys(14);
        write_tiles(&sys, &dir, 2).unwrap();
        let err = TiledSystem::open_with_budget(&dir, CapacityBudget::limited(16)).unwrap_err();
        assert!(matches!(err, TileError::BudgetTooSmall { limit: 16, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_budget_evicts_and_respects_peak() {
        let dir = tmp_dir("bounded");
        let sys = tiny_sys(15);
        write_tiles(&sys, &dir, 1).unwrap(); // 6 one-star tiles
        let unb = TiledSystem::open(&dir).unwrap();
        let budget = unb.min_budget() * 2; // room for ~2 tiles
        let tiled = TiledSystem::open_with_budget(&dir, CapacityBudget::limited(budget)).unwrap();
        for t in 0..tiled.n_tiles() {
            tiled.tile(t).unwrap();
        }
        let stats = tiled.stats();
        assert!(stats.evictions >= 1, "bounded pass must evict: {stats:?}");
        assert!(
            stats.peak_resident_bytes <= budget,
            "peak {} over budget {budget}",
            stats.peak_resident_bytes
        );
        // Second pass over all tiles: everything was evicted in order, so
        // the LRU sees misses again (streaming pattern), yet peak holds.
        for t in 0..tiled.n_tiles() {
            tiled.tile(t).unwrap();
        }
        assert!(tiled.stats().peak_resident_bytes <= budget);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hit_refreshes_recency() {
        let mut cache: TileCache<u64> = TileCache::new(CapacityBudget::limited(20));
        cache.get_or_load(0, 10, || Ok(0)).unwrap();
        cache.get_or_load(1, 10, || Ok(1)).unwrap();
        // Touch 0 so it becomes most-recent; loading 2 must evict 1.
        let (_, acc) = cache
            .get_or_load(0, 10, || panic!("must be a hit"))
            .unwrap();
        assert!(acc.hit);
        cache.get_or_load(2, 10, || Ok(2)).unwrap();
        let (_, acc0) = cache.get_or_load(0, 10, || Ok(99)).unwrap();
        assert!(acc0.hit, "0 was refreshed, must still be resident");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "only 1 (the LRU entry) was evicted");
        assert_eq!(stats.resident_tiles, 2);
    }

    #[test]
    fn budget_charge_release_accounting() {
        let mut b = CapacityBudget::limited(100);
        b.charge(60).unwrap();
        assert!(matches!(
            b.charge(50),
            Err(TileError::BudgetExceeded {
                limit: 100,
                used: 60,
                requested: 50
            })
        ));
        assert_eq!(b.used(), 60, "failed charge must not change accounting");
        b.release(60);
        b.charge(50).unwrap();
        assert_eq!(b.peak(), 60);
        assert!(matches!(
            b.charge(101),
            Err(TileError::BudgetTooSmall {
                limit: 100,
                tile_bytes: 101
            })
        ));
        let mut unb = CapacityBudget::unbounded();
        unb.charge(u64::MAX / 2).unwrap();
        assert!(unb.fits(u64::MAX / 4));
    }

    #[test]
    fn stale_manifest_detects_mutation_after_write() {
        let dir = tmp_dir("stale");
        let mut sys = tiny_sys(16);
        let manifest = write_tiles(&sys, &dir, 2).unwrap();
        manifest.verify_matches(&sys).unwrap();
        sys.scale_column(0, 2.0);
        let err = manifest.verify_matches(&sys).unwrap_err();
        assert!(matches!(err, TileError::StaleManifest { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn column_norms_match_in_memory_bitwise() {
        let dir = tmp_dir("norms");
        let sys = tiny_sys(17);
        write_tiles(&sys, &dir, 2).unwrap();
        let tiled = TiledSystem::open_with_budget(&dir, CapacityBudget::limited(u64::MAX)).unwrap();
        let tiled_norms = tiled.column_norms().unwrap();
        let mem_norms = sys.column_norms();
        assert_eq!(tiled_norms, mem_norms);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_gather_scatter_round_trip() {
        let dir = tmp_dir("gather");
        let sys = tiny_sys(18);
        write_tiles(&sys, &dir, 2).unwrap();
        let tiled = TiledSystem::open(&dir).unwrap();
        let (shard, _) = tiled.tile(1).unwrap();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| i as f64 + 0.5).collect();
        let local = shard.gather_cols(&x);
        assert_eq!(local.len(), shard.system.n_cols());
        for (l, &v) in local.iter().enumerate() {
            assert_eq!(v, x[shard.global_col(l as u64) as usize]);
        }
        let mut back = x.clone();
        shard.scatter_cols(&local, &mut back);
        assert_eq!(back, x);
        std::fs::remove_dir_all(&dir).ok();
    }
}
