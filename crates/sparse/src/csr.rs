//! Generic CSR (compressed sparse row) mirror of a system.
//!
//! §V-B cross-checks the solver against generic SpMV kernels
//! (amd-lab-notes): the AVU-GSR storage scheme replaces per-non-zero
//! column indices with two per-row indices for 17 of its 24 entries,
//! which is both a memory and a bandwidth saving over CSR. This module
//! materializes the CSR form of a [`SparseSystem`] so the claim can be
//! *measured* on real hardware (see the `csr` backend and the
//! `spmv_labnotes` harness) and the footprint difference quantified.

use serde::{Deserialize, Serialize};

use crate::system::SparseSystem;

/// A CSR matrix (`f64` values, `u32` column indices, `usize` row
/// pointers), the format of the amd-lab-notes scalar SpMV kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Convert a system to CSR (columns sorted within each row).
    pub fn from_system(sys: &SparseSystem) -> Self {
        assert!(
            sys.n_cols() <= u32::MAX as usize,
            "CSR mirror limited to u32 column indices"
        );
        let n_rows = sys.n_rows();
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(24);
        for row in 0..n_rows {
            entries.clear();
            entries.extend(sys.row_entries(row).map(|(c, v)| (c as u32, v)));
            entries.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &entries {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n_rows,
            n_cols: sys.n_cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Bytes of the CSR arrays (values + column indices + row pointers) —
    /// the quantity compared against
    /// [`crate::footprint::device_bytes`] in the storage-scheme study.
    pub fn storage_bytes(&self) -> u64 {
        (self.values.len() * 8 + self.col_idx.len() * 4 + self.row_ptr.len() * 8) as u64
    }

    /// One row's entries.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// `out += A x` over a row range (the scalar amd-lab-notes kernel).
    pub fn spmv_range(&self, x: &[f64], rows: std::ops::Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_cols);
        debug_assert_eq!(out.len(), rows.len());
        for (i, r) in rows.enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            out[i] += acc;
        }
    }

    /// `out += Aᵀ y` over a row range, scattering into the full column
    /// space (exclusive access required).
    pub fn spmv_t_range(&self, y: &[f64], rows: std::ops::Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_cols);
        for r in rows {
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out[*c as usize] += v * yr;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::generator::{Generator, GeneratorConfig};
    use crate::layout::SystemLayout;

    fn sys() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(55)).generate()
    }

    #[test]
    fn csr_matches_dense_mirror() {
        let s = sys();
        let csr = CsrMatrix::from_system(&s);
        let d = DenseMatrix::from_sparse(&s);
        let x: Vec<f64> = (0..s.n_cols()).map(|i| (i as f64 * 0.19).sin()).collect();
        let mut want = vec![0.0; s.n_rows()];
        d.mat_vec_acc(&x, &mut want);
        let mut got = vec![0.0; s.n_rows()];
        csr.spmv_range(&x, 0..s.n_rows(), &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }

        let y: Vec<f64> = (0..s.n_rows()).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut want_t = vec![0.0; s.n_cols()];
        d.mat_t_vec_acc(&y, &mut want_t);
        let mut got_t = vec![0.0; s.n_cols()];
        csr.spmv_t_range(&y, 0..s.n_rows(), &mut got_t);
        for (g, w) in got_t.iter().zip(&want_t) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_rows_are_sorted_and_complete() {
        let s = sys();
        let csr = CsrMatrix::from_system(&s);
        assert_eq!(csr.n_rows(), s.n_rows());
        assert_eq!(csr.n_cols(), s.n_cols());
        let mut total = 0;
        for r in 0..csr.n_rows() {
            let (cols, vals) = csr.row(r);
            assert_eq!(cols.len(), vals.len());
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
            total += cols.len();
        }
        assert_eq!(total, csr.nnz());
        assert_eq!(total as u64, s.layout().nnz_total());
    }

    #[test]
    fn structured_storage_beats_csr_on_metadata() {
        // The §III-B storage argument, measured: CSR stores one 4-byte
        // column index per non-zero; the structured scheme stores two
        // 8-byte row indices + six 4-byte instrument columns per row.
        let s = sys();
        let csr = CsrMatrix::from_system(&s);
        let structured_meta = crate::footprint::index_bytes(s.layout());
        let csr_meta = (csr.nnz() * 4 + (csr.n_rows() + 1) * 8) as u64;
        assert!(
            structured_meta < csr_meta,
            "structured {structured_meta} vs CSR {csr_meta}"
        );
    }

    #[test]
    fn empty_rows_are_representable() {
        // Constraint rows only touch attitude columns; CSR must handle
        // them like any other row (and a hypothetical empty row works).
        let s = sys();
        let csr = CsrMatrix::from_system(&s);
        let last = csr.n_rows() - 1; // a constraint row
        let (cols, _) = csr.row(last);
        assert_eq!(cols.len(), 12);
    }
}
