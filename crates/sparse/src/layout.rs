//! Integer shape of an AVU-GSR problem instance.
//!
//! A [`SystemLayout`] fully determines the sparsity structure sizes without
//! allocating any data: number of rows, columns, non-zeros, and the column
//! offsets of the four parameter blocks. The paper's 10/30/60 GB benchmark
//! problems are represented as layouts scaled so that the *device-resident*
//! footprint (matrix coefficient + index arrays, see [`crate::footprint`])
//! matches the requested size, exactly like the artifact's runtime `GB`
//! argument.

use serde::{Deserialize, Serialize};

use crate::{
    ASTRO_PARAMS_PER_STAR, ATT_AXES, ATT_PARAMS_PER_AXIS, GLOBAL_PARAMS_PER_ROW,
    INSTR_PARAMS_PER_ROW,
};

/// The four column blocks of the reduced matrix `A` (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Block-diagonal astrometric block (5 contiguous non-zeros per row).
    Astrometric,
    /// Strided attitude block (3 × 4 non-zeros per row).
    Attitude,
    /// Irregular instrumental block (6 non-zeros per row).
    Instrumental,
    /// Global (PPN-γ) block (≤ 1 non-zero per row).
    Global,
}

impl BlockKind {
    /// All blocks in kernel-launch order (astrometric first, as in the
    /// production code's `aprod{1,2}_Kernel_{astro,att,instr,glob}`).
    pub const ALL: [BlockKind; 4] = [
        BlockKind::Astrometric,
        BlockKind::Attitude,
        BlockKind::Instrumental,
        BlockKind::Global,
    ];

    /// Short lowercase label used in kernel names and reports.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Astrometric => "astro",
            BlockKind::Attitude => "att",
            BlockKind::Instrumental => "instr",
            BlockKind::Global => "glob",
        }
    }
}

/// Column offsets of the four blocks inside the unknown vector `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnBlocks {
    /// First astrometric column (always 0).
    pub astro: u64,
    /// First attitude column.
    pub att: u64,
    /// First instrumental column.
    pub instr: u64,
    /// First global column.
    pub glob: u64,
    /// One past the last column.
    pub end: u64,
}

impl ColumnBlocks {
    /// Number of columns in a block.
    pub fn width(&self, kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Astrometric => self.att - self.astro,
            BlockKind::Attitude => self.instr - self.att,
            BlockKind::Instrumental => self.glob - self.instr,
            BlockKind::Global => self.end - self.glob,
        }
    }

    /// Column range of a block.
    pub fn range(&self, kind: BlockKind) -> std::ops::Range<u64> {
        match kind {
            BlockKind::Astrometric => self.astro..self.att,
            BlockKind::Attitude => self.att..self.instr,
            BlockKind::Instrumental => self.instr..self.glob,
            BlockKind::Global => self.glob..self.end,
        }
    }
}

/// Shape of one AVU-GSR problem instance.
///
/// Invariants (checked by [`SystemLayout::validate`]):
/// * `n_deg_freedom_att >= ATT_PARAMS_PER_AXIS` (an attitude block of 4 must
///   fit inside one axis segment);
/// * `n_instr_params >= INSTR_PARAMS_PER_ROW`;
/// * the system is overdetermined: `n_rows() >= n_cols()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemLayout {
    /// Number of primary stars.
    pub n_stars: u64,
    /// Observations per star (constant in the synthetic generator, as in the
    /// artifact's `solvergaiaSim`).
    pub obs_per_star: u64,
    /// Attitude degrees of freedom per axis (the stride between the three
    /// per-axis blocks of 4 non-zeros).
    pub n_deg_freedom_att: u64,
    /// Number of instrumental parameters.
    pub n_instr_params: u64,
    /// Number of global parameters (0 in production runs so far, 1 when the
    /// PPN-γ parameter is solved; the synthetic benchmarks use 1).
    pub n_glob_params: u32,
    /// Number of null-space constraint rows appended after the observations.
    pub n_constraint_rows: u64,
}

impl SystemLayout {
    /// A tiny layout for unit tests (fits dense mirroring).
    pub fn tiny() -> Self {
        SystemLayout {
            n_stars: 6,
            obs_per_star: 16,
            n_deg_freedom_att: 8,
            n_instr_params: 8,
            n_glob_params: 1,
            n_constraint_rows: 3,
        }
    }

    /// A small-but-nontrivial layout for integration tests and examples
    /// (a few thousand rows).
    pub fn small() -> Self {
        SystemLayout {
            n_stars: 200,
            obs_per_star: 24,
            n_deg_freedom_att: 64,
            n_instr_params: 40,
            n_glob_params: 1,
            n_constraint_rows: 16,
        }
    }

    /// A medium layout for CPU benchmarks (order 10^5 rows, ~25 MB).
    pub fn medium() -> Self {
        SystemLayout {
            n_stars: 4_000,
            obs_per_star: 30,
            n_deg_freedom_att: 1_024,
            n_instr_params: 512,
            n_glob_params: 1,
            n_constraint_rows: 64,
        }
    }

    /// The production-scale problem of §III-B: ~10⁸ primary stars with
    /// ~10³ observations each (rows `O(10^{8+3})`), unknowns dominated by
    /// the five astrometric parameters per star. Far too large to
    /// allocate — used analytically to check the paper's published
    /// footprints (A ≈ 19 TB, b ≈ 800 GB, x ≈ 4 GB).
    pub fn production() -> Self {
        SystemLayout {
            n_stars: 100_000_000,
            obs_per_star: 1_000,
            n_deg_freedom_att: 1_000_000,
            n_instr_params: 100_000,
            n_glob_params: 1,
            n_constraint_rows: 6,
        }
    }

    /// Build a layout whose device-resident footprint is `gb` gigabytes, the
    /// way the artifact's solver takes the problem size in GB at runtime and
    /// synthesizes a matching dataset.
    ///
    /// The production ratios are preserved: ~100 observations per star, an
    /// attitude DOF count ~`n_stars / 150` and an instrument table
    /// ~`n_stars / 500` (so the astrometric block stays ~90 % of the
    /// footprint, §III-B).
    pub fn from_gb(gb: f64) -> Self {
        assert!(gb > 0.0, "problem size must be positive");
        let bytes = gb * 1e9;
        let bytes_per_row = crate::footprint::DEVICE_BYTES_PER_OBS_ROW as f64;
        let obs_per_star = 100u64;
        let rows = (bytes / bytes_per_row).max(1.0) as u64;
        let n_stars = (rows / obs_per_star).max(1);
        let layout = SystemLayout {
            n_stars,
            obs_per_star,
            n_deg_freedom_att: (n_stars / 150).max(ATT_PARAMS_PER_AXIS as u64),
            n_instr_params: (n_stars / 500).max(INSTR_PARAMS_PER_ROW as u64),
            n_glob_params: 1,
            n_constraint_rows: ATT_AXES as u64 * 2,
        };
        layout.validate().expect("from_gb produced invalid layout");
        layout
    }

    /// The paper's three benchmark problem sizes (§V-B).
    pub fn paper_problem_sizes() -> [(f64, SystemLayout); 3] {
        [
            (10.0, SystemLayout::from_gb(10.0)),
            (30.0, SystemLayout::from_gb(30.0)),
            (60.0, SystemLayout::from_gb(60.0)),
        ]
    }

    /// Observation rows (`n_stars * obs_per_star`).
    pub fn n_obs_rows(&self) -> u64 {
        self.n_stars * self.obs_per_star
    }

    /// Total rows, including appended constraint rows.
    pub fn n_rows(&self) -> u64 {
        self.n_obs_rows() + self.n_constraint_rows
    }

    /// Number of astrometric columns.
    pub fn n_astro_cols(&self) -> u64 {
        self.n_stars * ASTRO_PARAMS_PER_STAR as u64
    }

    /// Number of attitude columns (`3 axes × DOF per axis`).
    pub fn n_att_cols(&self) -> u64 {
        ATT_AXES as u64 * self.n_deg_freedom_att
    }

    /// Total number of unknowns.
    pub fn n_cols(&self) -> u64 {
        self.n_astro_cols() + self.n_att_cols() + self.n_instr_params + self.n_glob_params as u64
    }

    /// Column offsets of the four blocks.
    pub fn columns(&self) -> ColumnBlocks {
        let astro = 0;
        let att = self.n_astro_cols();
        let instr = att + self.n_att_cols();
        let glob = instr + self.n_instr_params;
        let end = glob + self.n_glob_params as u64;
        ColumnBlocks {
            astro,
            att,
            instr,
            glob,
            end,
        }
    }

    /// Stored non-zeros in a block, over all rows.
    pub fn nnz(&self, kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Astrometric => self.n_obs_rows() * ASTRO_PARAMS_PER_STAR as u64,
            // Attitude coefficients are stored for constraint rows too.
            BlockKind::Attitude => self.n_rows() * (ATT_AXES * ATT_PARAMS_PER_AXIS) as u64,
            BlockKind::Instrumental => self.n_obs_rows() * INSTR_PARAMS_PER_ROW as u64,
            BlockKind::Global => {
                self.n_obs_rows() * GLOBAL_PARAMS_PER_ROW.min(self.n_glob_params) as u64
            }
        }
    }

    /// Total stored non-zeros.
    pub fn nnz_total(&self) -> u64 {
        BlockKind::ALL.iter().map(|&k| self.nnz(k)).sum()
    }

    /// Check the structural invariants.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.n_stars == 0 || self.obs_per_star == 0 {
            return Err(LayoutError::Empty);
        }
        if self.n_deg_freedom_att < ATT_PARAMS_PER_AXIS as u64 {
            return Err(LayoutError::AttitudeAxisTooNarrow {
                dof: self.n_deg_freedom_att,
            });
        }
        if self.n_instr_params < INSTR_PARAMS_PER_ROW as u64 {
            return Err(LayoutError::InstrumentTooNarrow {
                params: self.n_instr_params,
            });
        }
        if self.n_glob_params > 1 {
            return Err(LayoutError::TooManyGlobals {
                globals: self.n_glob_params,
            });
        }
        if self.n_rows() < self.n_cols() {
            return Err(LayoutError::Underdetermined {
                rows: self.n_rows(),
                cols: self.n_cols(),
            });
        }
        Ok(())
    }

    /// The star owning observation row `row` (`row < n_obs_rows()`).
    pub fn star_of_row(&self, row: u64) -> u64 {
        debug_assert!(row < self.n_obs_rows());
        row / self.obs_per_star
    }

    /// Range of observation rows belonging to star `star`.
    pub fn rows_of_star(&self, star: u64) -> std::ops::Range<u64> {
        debug_assert!(star < self.n_stars);
        star * self.obs_per_star..(star + 1) * self.obs_per_star
    }
}

/// Structural validation failures for [`SystemLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// No stars or no observations.
    Empty,
    /// An attitude axis segment cannot hold a block of 4 parameters.
    AttitudeAxisTooNarrow {
        /// Offending degrees of freedom per axis.
        dof: u64,
    },
    /// The instrument table cannot hold 6 distinct parameters.
    InstrumentTooNarrow {
        /// Offending instrumental parameter count.
        params: u64,
    },
    /// More than one global parameter is not representable (≤ 1 per row).
    TooManyGlobals {
        /// Offending global parameter count.
        globals: u32,
    },
    /// The system must be overdetermined (paper Eq. 2 discussion).
    Underdetermined {
        /// Row count.
        rows: u64,
        /// Column count.
        cols: u64,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Empty => write!(f, "layout has no observations"),
            LayoutError::AttitudeAxisTooNarrow { dof } => {
                write!(f, "attitude DOF per axis {dof} < {ATT_PARAMS_PER_AXIS}")
            }
            LayoutError::InstrumentTooNarrow { params } => {
                write!(f, "instrument params {params} < {INSTR_PARAMS_PER_ROW}")
            }
            LayoutError::TooManyGlobals { globals } => {
                write!(f, "{globals} global parameters (max 1)")
            }
            LayoutError::Underdetermined { rows, cols } => {
                write!(f, "system is underdetermined: {rows} rows < {cols} cols")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_and_small_layouts_are_valid() {
        SystemLayout::tiny().validate().unwrap();
        SystemLayout::small().validate().unwrap();
        SystemLayout::medium().validate().unwrap();
    }

    #[test]
    fn column_blocks_partition_the_unknowns() {
        let l = SystemLayout::small();
        let c = l.columns();
        assert_eq!(c.astro, 0);
        assert_eq!(c.width(BlockKind::Astrometric), l.n_astro_cols());
        assert_eq!(c.width(BlockKind::Attitude), l.n_att_cols());
        assert_eq!(c.width(BlockKind::Instrumental), l.n_instr_params);
        assert_eq!(c.width(BlockKind::Global), l.n_glob_params as u64);
        assert_eq!(c.end, l.n_cols());
    }

    #[test]
    fn paper_sizes_hit_requested_footprint_within_one_percent() {
        for (gb, layout) in SystemLayout::paper_problem_sizes() {
            let actual = crate::footprint::device_bytes(&layout) as f64 / 1e9;
            let rel = (actual - gb).abs() / gb;
            assert!(rel < 0.01, "{gb} GB layout yields {actual} GB (rel {rel})");
        }
    }

    #[test]
    fn astro_unknowns_dominate_as_in_paper() {
        // §III-B: "the number of unknowns [is] dominated by the 5
        // astrometric parameters per star" — the astrometric section is
        // ~90 % of the solution array at production ratios.
        let layout = SystemLayout::from_gb(10.0);
        let share = layout.n_astro_cols() as f64 / layout.n_cols() as f64;
        assert!(
            (0.80..1.0).contains(&share),
            "astro column share {share} outside ~90% band"
        );
        // The per-row value storage split is fixed by structure: 5 of 24.
        let astro_vals = crate::footprint::block_bytes(&layout, BlockKind::Astrometric) as f64;
        let total_vals: u64 = BlockKind::ALL
            .iter()
            .map(|&k| crate::footprint::block_bytes(&layout, k))
            .sum();
        let val_share = astro_vals / total_vals as f64;
        assert!((val_share - 5.0 / 24.0).abs() < 0.01);
    }

    #[test]
    fn row_to_star_round_trip() {
        let l = SystemLayout::tiny();
        for star in 0..l.n_stars {
            for row in l.rows_of_star(star) {
                assert_eq!(l.star_of_row(row), star);
            }
        }
    }

    #[test]
    fn production_layout_reproduces_the_papers_footprints() {
        // §III-B: "A, b and x̄ occupy ~19 TB, ~800 GB and ~4 GB,
        // respectively", with rows O(10^11), cols O(10^8), and at most
        // ~10^11 × 24 stored coefficients.
        let l = SystemLayout::production();
        l.validate().unwrap();
        assert_eq!(l.n_obs_rows(), 100_000_000_000); // 10^11 rows
        let coeff_tb = (l.nnz_total() * 8) as f64 / 1e12;
        assert!((18.0..21.0).contains(&coeff_tb), "A = {coeff_tb} TB");
        let b_gb = crate::footprint::known_terms_bytes(&l) as f64 / 1e9;
        assert!((790.0..810.0).contains(&b_gb), "b = {b_gb} GB");
        let x_gb = (l.n_cols() * 8) as f64 / 1e9;
        assert!((3.9..4.2).contains(&x_gb), "x = {x_gb} GB");
        // Astrometric dominance of the unknowns (the ~90 % claim).
        let share = l.n_astro_cols() as f64 / l.n_cols() as f64;
        assert!(share > 0.99, "astro share {share}");
    }

    #[test]
    fn underdetermined_layout_is_rejected() {
        let l = SystemLayout {
            n_stars: 10,
            obs_per_star: 1, // 10 rows, 50+ cols
            n_deg_freedom_att: 8,
            n_instr_params: 8,
            n_glob_params: 1,
            n_constraint_rows: 0,
        };
        assert!(matches!(
            l.validate(),
            Err(LayoutError::Underdetermined { .. })
        ));
    }

    #[test]
    fn glob_nnz_zero_when_no_global_parameter() {
        let mut l = SystemLayout::tiny();
        l.n_glob_params = 0;
        assert_eq!(l.nnz(BlockKind::Global), 0);
    }
}
