//! Dense mirror of small systems, used as a brute-force oracle in tests.
//!
//! Every backend's `aprod1`/`aprod2` kernels and the LSQR solver itself are
//! validated against straightforward dense matrix arithmetic on systems
//! small enough to materialize (the paper validates its ports against the
//! production CUDA solution; our oracle plays the role of that reference).

// Row/column index arithmetic on flat buffers reads clearest with plain
// index loops here; iterator/enumerate forms obscure the r·cols+c layout.
#![allow(clippy::needless_range_loop)]

use crate::system::SparseSystem;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Materialize a sparse system. Refuses absurd sizes (> 64 M entries) to
    /// protect tests from accidental huge layouts.
    pub fn from_sparse(sys: &SparseSystem) -> Self {
        let rows = sys.n_rows();
        let cols = sys.n_cols();
        assert!(
            rows.saturating_mul(cols) <= 64 << 20,
            "system too large to densify ({rows} x {cols})"
        );
        let mut data = vec![0.0f64; rows * cols];
        for row in 0..rows {
            for (col, val) in sys.row_entries(row) {
                data[row * cols + col as usize] += val;
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// `out += A x`.
    pub fn mat_vec_acc(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] += row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    /// `out += Aᵀ y`.
    pub fn mat_t_vec_acc(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r];
            for (slot, &a) in out.iter_mut().zip(row) {
                *slot += a * yr;
            }
        }
    }

    /// Count of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Solve the normal equations `AᵀA x = Aᵀ b` by Gaussian elimination
    /// with partial pivoting. Only for tiny oracle systems. Panics on a
    /// numerically rank-deficient system; use
    /// [`DenseMatrix::try_least_squares`] to detect that case instead
    /// (rank deficiency is *expected* for AVU-GSR systems generated
    /// without constraint rows — pinning the null space is the
    /// constraints' entire job, §III-B).
    pub fn least_squares(&self, b: &[f64]) -> Vec<f64> {
        self.try_least_squares(b)
            .expect("singular normal matrix in oracle solve")
    }

    /// Fallible variant of [`DenseMatrix::least_squares`]: `None` when the
    /// normal matrix is numerically singular (rank-deficient system).
    pub fn try_least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.rows);
        let n = self.cols;
        assert!(n <= 2048, "oracle least-squares limited to tiny systems");
        // Form AtA and Atb.
        let mut ata = vec![0.0f64; n * n];
        let mut atb = vec![0.0f64; n];
        for r in 0..self.rows {
            let row = &self.data[r * n..(r + 1) * n];
            for i in 0..n {
                let ai = row[i];
                if ai == 0.0 {
                    continue;
                }
                atb[i] += ai * b[r];
                for j in 0..n {
                    ata[i * n + j] += ai * row[j];
                }
            }
        }
        gauss_solve(&mut ata, &mut atb, n).then_some(atb)
    }
}

/// In-place Gaussian elimination with partial pivoting on an `n × n`
/// system; `false` signals a numerically singular matrix.
#[must_use]
fn gauss_solve(a: &mut [f64], b: &mut [f64], n: usize) -> bool {
    for k in 0..n {
        // Pivot.
        let mut p = k;
        for r in (k + 1)..n {
            if a[r * n + k].abs() > a[p * n + k].abs() {
                p = r;
            }
        }
        if p != k {
            for c in 0..n {
                a.swap(k * n + c, p * n + c);
            }
            b.swap(k, p);
        }
        let pivot = a[k * n + k];
        if pivot.abs() <= 1e-12 {
            return false;
        }
        for r in (k + 1)..n {
            let f = a[r * n + k] / pivot;
            if f == 0.0 {
                continue;
            }
            for c in k..n {
                a[r * n + c] -= f * a[k * n + c];
            }
            b[r] -= f * b[k];
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        let mut s = b[k];
        for c in (k + 1)..n {
            s -= a[k * n + c] * b[c];
        }
        b[k] = s / a[k * n + k];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig, Rhs};
    use crate::layout::SystemLayout;

    #[test]
    fn dense_mirror_matches_row_dot() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(5)).generate();
        let d = DenseMatrix::from_sparse(&sys);
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64).cos()).collect();
        let mut out = vec![0.0; sys.n_rows()];
        d.mat_vec_acc(&x, &mut out);
        for row in 0..sys.n_rows() {
            assert!((out[row] - sys.row_dot(row, &x)).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_transpose_matches_row_scatter() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(6)).generate();
        let d = DenseMatrix::from_sparse(&sys);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut want = vec![0.0; sys.n_cols()];
        for row in 0..sys.n_rows() {
            sys.row_scatter(row, y[row], &mut want);
        }
        let mut got = vec![0.0; sys.n_cols()];
        d.mat_t_vec_acc(&y, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_recovers_noiseless_truth() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(7)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        let x_true = truth.unwrap();
        let d = DenseMatrix::from_sparse(&sys);
        let x = d.least_squares(sys.known_terms());
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "oracle LS error {err}");
    }

    #[test]
    fn nnz_matches_layout_accounting() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(8)).generate();
        let d = DenseMatrix::from_sparse(&sys);
        // The dense mirror has at most layout.nnz_total() non-zeros (some
        // attitude constraint slots are structurally zero).
        assert!(d.nnz() as u64 <= sys.layout().nnz_total());
        assert!(d.nnz() > 0);
    }
}
