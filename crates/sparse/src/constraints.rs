//! Null-space constraint rows.
//!
//! The AVU-GSR system (paper Eq. 2) is overdetermined but rank-deficient
//! without extra equations: the sphere reconstruction is invariant under
//! small rigid rotations of the attitude reference frame, so "some
//! constraint equations must be set to derive a univocal solution"
//! (§III-B). Following the production solver, we append constraint rows
//! after the observation rows. Each constraint row touches only attitude
//! columns and uses the same 3 × 4 strided storage as observation rows, so
//! the `aprod` attitude kernels process observations and constraints
//! uniformly.

use rand::Rng;

use crate::layout::SystemLayout;
use crate::system::ATT_NNZ_PER_ROW;
use crate::{ATT_AXES, ATT_PARAMS_PER_AXIS};

/// Attitude coefficients and axis-segment offsets for the
/// `layout.n_constraint_rows` constraint rows.
///
/// Row `i` constrains axis `i % 3`: its four entries on that axis are set to
/// a normalized positive weight (a discrete "sum of attitude corrections on
/// this axis is zero" equation), while the other two axes' slots hold zero.
/// Offsets sweep the axis segment so that successive constraint rows pin
/// different regions of the attitude spline.
pub fn build_constraint_rows<R: Rng>(layout: &SystemLayout, rng: &mut R) -> (Vec<f64>, Vec<u64>) {
    let n = layout.n_constraint_rows as usize;
    let mut values = vec![0.0f64; n * ATT_NNZ_PER_ROW];
    let mut offsets = vec![0u64; n];
    let max_off = layout.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
    for i in 0..n {
        let axis = i % ATT_AXES as usize;
        // Deterministic sweep of the segment, with a little jitter so that
        // constraint rows do not all collide on the same columns.
        let base = if n <= 1 {
            0
        } else {
            (i as u64 * max_off) / (n as u64 - 1).max(1)
        };
        let jitter = rng.gen_range(0..=ATT_PARAMS_PER_AXIS as u64);
        offsets[i] = (base + jitter).min(max_off);
        let w = 1.0 / (ATT_PARAMS_PER_AXIS as f64).sqrt();
        for k in 0..ATT_PARAMS_PER_AXIS as usize {
            values[i * ATT_NNZ_PER_ROW + axis * ATT_PARAMS_PER_AXIS as usize + k] = w;
        }
    }
    (values, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constraint_rows_touch_exactly_one_axis() {
        let layout = SystemLayout::small();
        let mut rng = SmallRng::seed_from_u64(1);
        let (values, offsets) = build_constraint_rows(&layout, &mut rng);
        assert_eq!(offsets.len(), layout.n_constraint_rows as usize);
        for i in 0..offsets.len() {
            let row = &values[i * ATT_NNZ_PER_ROW..(i + 1) * ATT_NNZ_PER_ROW];
            let nonzero_axes: Vec<usize> = (0..ATT_AXES as usize)
                .filter(|&a| {
                    row[a * ATT_PARAMS_PER_AXIS as usize..(a + 1) * ATT_PARAMS_PER_AXIS as usize]
                        .iter()
                        .any(|&v| v != 0.0)
                })
                .collect();
            assert_eq!(nonzero_axes, vec![i % ATT_AXES as usize]);
        }
    }

    #[test]
    fn constraint_offsets_stay_in_segment() {
        let layout = SystemLayout::tiny();
        let mut rng = SmallRng::seed_from_u64(2);
        let (_, offsets) = build_constraint_rows(&layout, &mut rng);
        let max = layout.n_deg_freedom_att - ATT_PARAMS_PER_AXIS as u64;
        assert!(offsets.iter().all(|&o| o <= max));
    }

    #[test]
    fn constraint_rows_have_unit_norm() {
        let layout = SystemLayout::small();
        let mut rng = SmallRng::seed_from_u64(3);
        let (values, offsets) = build_constraint_rows(&layout, &mut rng);
        for i in 0..offsets.len() {
            let row = &values[i * ATT_NNZ_PER_ROW..(i + 1) * ATT_NNZ_PER_ROW];
            let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }
}
