//! Structural statistics of a system.
//!
//! The performance story of the paper hinges on structural properties of
//! `A`: the astrometric block is collision-free across stars, "the
//! indexes used by aprod2 can collide" for the other blocks (§IV), and
//! the attitude access pattern determines coalescing. This module
//! quantifies those properties for a concrete system — collision factors
//! (rows per column), touch counts, and attitude locality — both to
//! document generated datasets and to sanity-check that the generator
//! reproduces the production structure.

use serde::{Deserialize, Serialize};

use crate::layout::BlockKind;
use crate::system::SparseSystem;

/// Per-block column-collision statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Block described.
    pub block: BlockKind,
    /// Columns in the block.
    pub n_cols: u64,
    /// Columns touched by at least one row.
    pub touched_cols: u64,
    /// Total stored non-zeros in the block.
    pub nnz: u64,
    /// Mean rows touching a touched column (the atomic collision factor
    /// for `aprod2`).
    pub mean_rows_per_col: f64,
    /// Maximum rows touching any single column (worst-case contention).
    pub max_rows_per_col: u64,
}

/// Whole-system structural statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Per-block collision statistics, in [`BlockKind::ALL`] order.
    pub blocks: Vec<BlockStats>,
    /// Mean absolute difference of consecutive rows' attitude offsets —
    /// the locality the time-ordered generator produces (small values =
    /// banded attitude block = partially coalesced GPU loads).
    pub attitude_offset_locality: f64,
    /// Fraction of dense entries that are structurally zero.
    pub sparsity: f64,
}

/// Compute the statistics of a system (cost: one pass over the non-zeros).
pub fn system_stats(sys: &SparseSystem) -> SystemStats {
    let cols = sys.columns();
    let mut touch = vec![0u64; sys.n_cols()];
    for row in 0..sys.n_rows() {
        for (col, _) in sys.row_entries(row) {
            touch[col as usize] += 1;
        }
    }

    let blocks = BlockKind::ALL
        .iter()
        .map(|&block| {
            let range = cols.range(block);
            let slice = &touch[range.start as usize..range.end as usize];
            let touched: Vec<u64> = slice.iter().copied().filter(|&t| t > 0).collect();
            let nnz: u64 = slice.iter().sum();
            BlockStats {
                block,
                n_cols: range.end - range.start,
                touched_cols: touched.len() as u64,
                nnz,
                mean_rows_per_col: if touched.is_empty() {
                    0.0
                } else {
                    nnz as f64 / touched.len() as f64
                },
                max_rows_per_col: touched.iter().copied().max().unwrap_or(0),
            }
        })
        .collect();

    let offs = sys.matrix_index_att();
    let n_obs = sys.n_obs_rows();
    let attitude_offset_locality = if n_obs > 1 {
        offs[..n_obs]
            .windows(2)
            .map(|w| w[0].abs_diff(w[1]) as f64)
            .sum::<f64>()
            / (n_obs as f64 - 1.0)
    } else {
        0.0
    };

    let dense_entries = sys.n_rows() as u64 * sys.n_cols() as u64;
    let nnz_total: u64 = touch.iter().sum();
    SystemStats {
        blocks,
        attitude_offset_locality,
        sparsity: 1.0 - nnz_total as f64 / dense_entries as f64,
    }
}

impl SystemStats {
    /// Statistics of one block.
    pub fn block(&self, kind: BlockKind) -> &BlockStats {
        self.blocks
            .iter()
            .find(|b| b.block == kind)
            .expect("all blocks present")
    }

    /// The ratio of the worst colliding block's collision factor to the
    /// astrometric one — how much more contended the atomic kernels are
    /// than the conflict-free one (per *column*; the astrometric block is
    /// conflict-free across *stars*, not per column, which is exactly why
    /// it is parallelized over stars).
    pub fn contention_ratio(&self) -> f64 {
        let astro = self.block(BlockKind::Astrometric).mean_rows_per_col;
        let worst = self
            .blocks
            .iter()
            .filter(|b| b.block != BlockKind::Astrometric)
            .map(|b| b.mean_rows_per_col)
            .fold(0.0f64, f64::max);
        if astro > 0.0 {
            worst / astro
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};
    use crate::layout::SystemLayout;

    fn stats_for(layout: SystemLayout, seed: u64) -> SystemStats {
        let sys = Generator::new(GeneratorConfig::new(layout).seed(seed)).generate();
        system_stats(&sys)
    }

    #[test]
    fn astro_columns_are_touched_exactly_obs_per_star_times() {
        let layout = SystemLayout::tiny();
        let s = stats_for(layout, 11);
        let astro = s.block(BlockKind::Astrometric);
        assert_eq!(astro.touched_cols, layout.n_astro_cols());
        // Block-diagonal: every astro column is touched by exactly the
        // star's observation rows.
        assert_eq!(astro.mean_rows_per_col, layout.obs_per_star as f64);
        assert_eq!(astro.max_rows_per_col, layout.obs_per_star);
    }

    #[test]
    fn shared_blocks_are_more_contended_than_astro() {
        // §IV's motivation for atomics: attitude/instr columns aggregate
        // far more rows per column than the astrometric ones.
        let s = stats_for(SystemLayout::small(), 12);
        assert!(
            s.contention_ratio() > 3.0,
            "contention ratio {} too small",
            s.contention_ratio()
        );
        let att = s.block(BlockKind::Attitude);
        let astro = s.block(BlockKind::Astrometric);
        assert!(att.mean_rows_per_col > astro.mean_rows_per_col);
    }

    #[test]
    fn global_column_is_touched_by_every_observation() {
        let layout = SystemLayout::tiny();
        let s = stats_for(layout, 13);
        let glob = s.block(BlockKind::Global);
        assert_eq!(glob.touched_cols, 1);
        assert_eq!(glob.max_rows_per_col, layout.n_obs_rows());
    }

    #[test]
    fn attitude_offsets_are_local_in_time() {
        // The time-ordered generator must produce small step-to-step
        // offset changes (the banded structure of Fig. 2).
        let s = stats_for(SystemLayout::small(), 14);
        assert!(
            s.attitude_offset_locality < 3.0,
            "locality {} too jumpy",
            s.attitude_offset_locality
        );
    }

    #[test]
    fn sparsity_is_extreme() {
        let s = stats_for(SystemLayout::small(), 15);
        assert!(s.sparsity > 0.97, "sparsity {}", s.sparsity);
    }

    #[test]
    fn nnz_accounting_matches_layout() {
        let layout = SystemLayout::tiny();
        let s = stats_for(layout, 16);
        let total: u64 = s.blocks.iter().map(|b| b.nnz).sum();
        // Touch counting sums the *stored* slots (including the stored
        // zeros of constraint rows), which is exactly the layout's nnz
        // accounting.
        assert_eq!(total, layout.nnz_total());
    }
}
