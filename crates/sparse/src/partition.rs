//! Observation sharding across ranks.
//!
//! The production solver "leverages distributed systems via MPI, where each
//! MPI rank processes a subset of the observations" (§IV). Rows are
//! distributed star-aligned: all observations of one star live on one rank,
//! so the astrometric part of `aprod2` stays collision-free within a rank.
//! Constraint rows are replicated conceptually but *owned* by the last rank
//! (they are few).

use serde::{Deserialize, Serialize};

use crate::layout::SystemLayout;

/// A contiguous range of rows owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowRange {
    /// First owned row.
    pub start: u64,
    /// One past the last owned row.
    pub end: u64,
}

impl RowRange {
    /// Number of rows in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterate the rows.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }
}

/// Star-aligned partition of the rows of a system across `n_ranks` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowPartition {
    n_ranks: usize,
    ranges: Vec<RowRange>,
}

impl RowPartition {
    /// Partition `layout`'s rows across `n_ranks` ranks. Stars are split in
    /// near-equal contiguous groups; the trailing constraint rows go to the
    /// last rank.
    pub fn new(layout: &SystemLayout, n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        let stars = layout.n_stars;
        let mut ranges = Vec::with_capacity(n_ranks);
        let mut star_cursor = 0u64;
        for rank in 0..n_ranks as u64 {
            // Balanced star split: first (stars % n) ranks get one extra.
            let share = stars / n_ranks as u64 + if rank < stars % n_ranks as u64 { 1 } else { 0 };
            let start_star = star_cursor;
            star_cursor += share;
            let start = start_star * layout.obs_per_star;
            let mut end = star_cursor * layout.obs_per_star;
            if rank == n_ranks as u64 - 1 {
                end = layout.n_rows(); // constraint rows
            }
            ranges.push(RowRange { start, end });
        }
        RowPartition { n_ranks, ranges }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> RowRange {
        self.ranges[rank]
    }

    /// Rank owning `row`.
    pub fn owner(&self, row: u64) -> usize {
        self.ranges
            .iter()
            .position(|r| row >= r.start && row < r.end)
            .expect("row outside partition")
    }

    /// Maximum rows owned by any rank (load-balance metric; the paper
    /// measures "the iteration time maximized among all MPI processes").
    pub fn max_rows(&self) -> u64 {
        self.ranges.iter().map(RowRange::len).max().unwrap_or(0)
    }

    /// Load imbalance: `max_rows / mean_rows`, 1.0 = perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.ranges.iter().map(RowRange::len).sum();
        if total == 0 {
            return 1.0;
        }
        self.max_rows() as f64 * self.n_ranks as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_covers_all_rows_exactly_once() {
        let layout = SystemLayout::small();
        for n_ranks in 1..=7 {
            let p = RowPartition::new(&layout, n_ranks);
            let mut cursor = 0u64;
            for rank in 0..n_ranks {
                let r = p.range(rank);
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, layout.n_rows());
        }
    }

    #[test]
    fn partition_is_star_aligned() {
        let layout = SystemLayout::small();
        let p = RowPartition::new(&layout, 5);
        for rank in 0..4 {
            // All but the last rank start and end on star boundaries.
            let r = p.range(rank);
            assert_eq!(r.start % layout.obs_per_star, 0);
            assert_eq!(r.end % layout.obs_per_star, 0);
        }
    }

    #[test]
    fn last_rank_owns_constraints() {
        let layout = SystemLayout::small();
        let p = RowPartition::new(&layout, 3);
        let last = p.range(2);
        assert_eq!(last.end, layout.n_rows());
        assert!(last.end - layout.n_constraint_rows >= last.start);
        assert_eq!(p.owner(layout.n_rows() - 1), 2);
    }

    proptest! {
        #[test]
        fn owner_is_consistent_with_ranges(
            n_ranks in 1usize..9,
            stars in 4u64..40,
            obs in 2u64..12,
        ) {
            let layout = SystemLayout {
                n_stars: stars,
                obs_per_star: obs,
                n_deg_freedom_att: 8,
                n_instr_params: 8,
                n_glob_params: 1,
                n_constraint_rows: 3,
            };
            prop_assume!(layout.validate().is_ok());
            let p = RowPartition::new(&layout, n_ranks);
            for row in 0..layout.n_rows() {
                let rank = p.owner(row);
                let r = p.range(rank);
                prop_assert!(row >= r.start && row < r.end);
            }
            prop_assert!(p.imbalance() >= 1.0 - 1e-9);
        }
    }
}
