//! Mutator audit: every `SparseSystem` mutator must invalidate *both*
//! derived views of the matrix — the lazily-built ELL mirror and any
//! tile manifest spilled from the pre-mutation arrays. A mutator that
//! misses either leaves a consumer (auto-tuned ELL kernels, an
//! out-of-core resume) silently computing on stale data.

use std::path::PathBuf;

use gaia_sparse::{
    fuzz, write_tiles, Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout, TileError,
};

fn system(seed: u64) -> SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gaia-mutator-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Apply each mutator to a warmed system and assert the rebuilt ELL
/// mirror reflects the mutation (a stale cache would round-trip the
/// *old* arrays).
#[test]
fn every_mutator_invalidates_the_ell_mirror() {
    // set_known_terms: the mirror carries the known terms.
    let mut s = system(501);
    let _ = s.ell(); // warm the cache
    let mut b = s.known_terms().to_vec();
    b[0] += 1.0;
    s.set_known_terms(b.clone());
    let round = s.ell().to_system().expect("ell round-trip");
    assert_eq!(
        round.known_terms()[0].to_bits(),
        b[0].to_bits(),
        "set_known_terms left a stale ELL mirror"
    );

    // scale_column: slot-major astro values must re-derive.
    let mut s = system(502);
    let before = s.ell().astro_slot(0)[0];
    let touched = s.scale_column(0, 2.0);
    assert!(touched > 0, "astro column 0 must have coefficients");
    assert_eq!(
        s.ell().astro_slot(0)[0].to_bits(),
        (2.0 * before).to_bits(),
        "scale_column left a stale ELL mirror"
    );

    // permute_rows: row-major and slot-major must agree post-permutation.
    let mut s = system(503);
    let _ = s.ell();
    let perm = fuzz::permutation_within_stars(7, s.layout());
    s.permute_rows(&perm).expect("star-preserving permutation");
    let round = s.ell().to_system().expect("ell round-trip");
    assert_eq!(
        round.values_att(),
        s.values_att(),
        "permute_rows left a stale ELL mirror"
    );
}

/// Spill the system to tiles, then mutate the resident copy each way:
/// the manifest must flag every mutation as stale rather than letting a
/// resume stream pre-mutation coefficients.
#[test]
fn every_mutator_is_detected_by_the_tile_manifest() {
    let mutators: Vec<(&str, Box<dyn Fn(&mut SparseSystem)>)> = vec![
        (
            "set_known_terms",
            Box::new(|s: &mut SparseSystem| {
                let mut b = s.known_terms().to_vec();
                b[0] += 1.0;
                s.set_known_terms(b);
            }),
        ),
        (
            "scale_column",
            Box::new(|s: &mut SparseSystem| {
                s.scale_column(0, 3.0);
            }),
        ),
        (
            "permute_rows",
            Box::new(|s: &mut SparseSystem| {
                let perm = fuzz::permutation_within_stars(11, s.layout());
                s.permute_rows(&perm).expect("valid permutation");
            }),
        ),
    ];
    for (name, mutate) in mutators {
        let mut sys = system(504);
        let dir = scratch(name);
        let manifest = write_tiles(&sys, &dir, 2).expect("spill");
        manifest
            .verify_matches(&sys)
            .expect("unmutated system must match its manifest");
        mutate(&mut sys);
        let err = manifest
            .verify_matches(&sys)
            .expect_err(&format!("{name}: mutation after tile write undetected"));
        assert!(
            matches!(err, TileError::StaleManifest { .. }),
            "{name}: expected StaleManifest, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The identity permutation is the one mutation-shaped call that changes
/// nothing: the manifest must still match (the staleness check keys on
/// content, not on "a mutator ran").
#[test]
fn identity_permutation_keeps_the_manifest_fresh() {
    let mut sys = system(505);
    let dir = scratch("identity");
    let manifest = write_tiles(&sys, &dir, 2).expect("spill");
    let identity: Vec<usize> = (0..sys.n_rows()).collect();
    sys.permute_rows(&identity).expect("identity permutation");
    manifest
        .verify_matches(&sys)
        .expect("identity permutation must not stale the manifest");
    std::fs::remove_dir_all(&dir).ok();
}
