#![allow(clippy::needless_range_loop)]

//! Property tests over the system substrate: arbitrary layouts, generator
//! structure, footprint algebra, and I/O round trips.

use gaia_sparse::dense::DenseMatrix;
use gaia_sparse::{footprint, io, Generator, GeneratorConfig, Rhs, RowPartition, SystemLayout};
use proptest::prelude::*;

/// Strategy producing small valid (overdetermined) layouts.
fn layouts() -> impl Strategy<Value = SystemLayout> {
    (
        3u64..12,  // stars
        12u64..24, // obs per star
        4u64..16,  // attitude DOF
        6u64..14,  // instrument params
        0u32..2,   // global params
        0u64..5,   // constraint rows
    )
        .prop_map(|(s, o, d, i, g, c)| SystemLayout {
            n_stars: s,
            obs_per_star: o,
            n_deg_freedom_att: d,
            n_instr_params: i,
            n_glob_params: g,
            n_constraint_rows: c,
        })
        .prop_filter("overdetermined", |l| l.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn footprint_is_additive_and_positive(layout in layouts()) {
        let values: u64 = gaia_sparse::BlockKind::ALL
            .iter()
            .map(|&k| footprint::block_bytes(&layout, k))
            .sum();
        let total = footprint::device_bytes(&layout);
        prop_assert_eq!(
            total,
            values + footprint::index_bytes(&layout) + footprint::known_terms_bytes(&layout)
        );
        prop_assert!(footprint::solver_workspace_bytes(&layout) > 0);
    }

    #[test]
    fn generated_dense_mirror_agrees_with_sparse_products(
        layout in layouts(),
        seed in 0u64..500,
    ) {
        let sys = Generator::new(GeneratorConfig::new(layout).seed(seed)).generate();
        let dense = DenseMatrix::from_sparse(&sys);
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| ((i * 7 + 3) as f64 * 0.013).sin()).collect();
        let mut want = vec![0.0; sys.n_rows()];
        dense.mat_vec_acc(&x, &mut want);
        for row in 0..sys.n_rows() {
            prop_assert!((sys.row_dot(row, &x) - want[row]).abs() < 1e-10);
        }
    }

    #[test]
    fn io_round_trip_over_arbitrary_layouts(layout in layouts(), seed in 0u64..200) {
        let sys = Generator::new(GeneratorConfig::new(layout).seed(seed)).generate();
        let mut buf = Vec::new();
        io::write_system(&sys, &mut buf).unwrap();
        let loaded = io::read_system(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.layout(), sys.layout());
        prop_assert_eq!(loaded.known_terms(), sys.known_terms());
        prop_assert_eq!(loaded.values_att(), sys.values_att());
    }

    #[test]
    fn random_rhs_mode_produces_full_length_b(layout in layouts(), seed in 0u64..100) {
        let cfg = GeneratorConfig::new(layout).seed(seed).rhs(Rhs::Random);
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        prop_assert!(truth.is_none());
        prop_assert_eq!(sys.known_terms().len() as u64, layout.n_rows());
        prop_assert!(sys.known_terms().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn partition_rows_sum_to_total_for_any_rank_count(
        layout in layouts(),
        ranks in 1usize..9,
    ) {
        let p = RowPartition::new(&layout, ranks);
        let total: u64 = (0..ranks).map(|r| p.range(r).len()).sum();
        prop_assert_eq!(total, layout.n_rows());
        prop_assert!(p.max_rows() * ranks as u64 >= layout.n_rows());
    }
}

#[test]
fn from_gb_is_monotone_in_size() {
    let mut prev = 0u64;
    for gb in [0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0] {
        let bytes = footprint::device_bytes(&SystemLayout::from_gb(gb));
        assert!(bytes > prev, "{gb} GB not larger than previous");
        prev = bytes;
    }
}

#[test]
fn column_norms_match_dense_mirror() {
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(9)).generate();
    let dense = DenseMatrix::from_sparse(&sys);
    let norms = sys.column_norms();
    for c in 0..sys.n_cols() {
        let want: f64 = (0..sys.n_rows())
            .map(|r| dense.at(r, c) * dense.at(r, c))
            .sum::<f64>()
            .sqrt();
        assert!((norms[c] - want).abs() < 1e-10, "column {c}");
    }
}
