//! Property tests over the capacity accountant and the LRU tile cache:
//! under adversarial charge/release and access interleavings the budget
//! is never exceeded, errors never corrupt the ledger, and eviction
//! happens exactly when (and only when) an access would go over budget.

use gaia_sparse::{fuzz, CapacityBudget, Generator, TileError, TiledSystem};
use proptest::prelude::*;

/// One accountant operation: `Charge(bytes)` or `Release` (of the most
/// recent outstanding charge — releasing only what was charged, as the
/// cache does).
#[derive(Debug, Clone, Copy)]
enum Op {
    Charge(u64),
    Release,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..4, 0u64..600).prop_map(|(kind, bytes)| {
            if kind == 3 {
                Op::Release
            } else {
                Op::Charge(bytes)
            }
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accountant never reports more than the limit as used, its peak
    /// never exceeds the limit, failed charges leave the ledger untouched,
    /// and `used` always equals the sum of outstanding charges.
    #[test]
    fn budget_never_exceeds_limit_under_adversarial_interleavings(
        limit in 1u64..2000,
        ops in ops(),
    ) {
        let mut budget = CapacityBudget::limited(limit);
        let mut outstanding: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Charge(bytes) => {
                    let before = (budget.used(), budget.peak());
                    match budget.charge(bytes) {
                        Ok(()) => outstanding.push(bytes),
                        Err(TileError::BudgetTooSmall { .. }) => {
                            prop_assert!(bytes > limit, "BudgetTooSmall for a fitting charge");
                            prop_assert_eq!((budget.used(), budget.peak()), before);
                        }
                        Err(TileError::BudgetExceeded { .. }) => {
                            prop_assert!(
                                before.0 + bytes > limit,
                                "BudgetExceeded though {} + {bytes} fits {limit}",
                                before.0
                            );
                            prop_assert_eq!((budget.used(), budget.peak()), before);
                        }
                        Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                    }
                }
                Op::Release => {
                    if let Some(bytes) = outstanding.pop() {
                        budget.release(bytes);
                    }
                }
            }
            prop_assert!(budget.used() <= limit, "used {} > limit {limit}", budget.used());
            prop_assert!(budget.peak() <= limit, "peak {} > limit {limit}", budget.peak());
            prop_assert_eq!(budget.used(), outstanding.iter().sum::<u64>());
            prop_assert!(budget.fits(limit - budget.used()));
        }
    }

    /// Against a real spilled system: any access sequence keeps resident
    /// and peak bytes within the budget, hits never load or evict, and a
    /// miss evicts **iff** the incoming tile would not have fit — the LRU
    /// evicts exactly when over budget, never preemptively. The most
    /// recently touched tile is always still resident afterwards.
    #[test]
    fn lru_evicts_exactly_when_an_access_would_exceed_the_budget(
        seed in 0u64..64,
        slack_pct in 0u64..100,
        accesses in proptest::collection::vec(0usize..32usize, 1..40),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gaia-tile-props-{}-{seed}-{slack_pct}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Generator::new(fuzz::config_from_seed(seed))
            .generate_tiled(&dir, 1)
            .expect("streamed generation");
        let probe = TiledSystem::open(&dir).expect("probe");
        let (min, matrix) = (probe.min_budget(), probe.matrix_bytes());
        drop(probe);
        // From "barely holds the largest tile" up to "holds everything".
        let limit = min + (matrix - min.min(matrix)) * slack_pct / 100;
        let tiles =
            TiledSystem::open_with_budget(&dir, CapacityBudget::limited(limit)).expect("open");

        for idx in accesses {
            let t = idx % tiles.n_tiles();
            let pre = tiles.stats();
            let (_, access) = tiles.tile(t).expect("access within budget");
            let post = tiles.stats();

            prop_assert!(post.resident_bytes <= limit);
            prop_assert!(post.peak_resident_bytes <= limit);
            let loaded = post.loaded_bytes - pre.loaded_bytes;
            let evicted = post.evictions - pre.evictions;
            if access.hit {
                prop_assert_eq!(loaded, 0, "hit loaded bytes");
                prop_assert_eq!(evicted, 0, "hit evicted");
            } else {
                prop_assert!(loaded > 0, "miss loaded nothing");
                prop_assert_eq!(
                    evicted > 0,
                    pre.resident_bytes + loaded > limit,
                    "evicted {evicted} with resident {} + load {loaded} vs limit {limit}",
                    pre.resident_bytes
                );
            }
            // Recency: the tile just touched must still be resident.
            let (_, again) = tiles.tile(t).expect("re-access");
            prop_assert!(again.hit, "most recently used tile {t} was evicted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
