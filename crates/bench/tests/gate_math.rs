//! Gate verdict logic, end to end minus the clocks: comparison math on
//! synthetic cells, baseline round-trips, and every load-failure path
//! the binary maps to exit code 2.

use std::path::PathBuf;

use gaia_bench::gate::{compare_grid, delta_table, Baseline, BaselineError, CellRecord, SCHEMA};
use gaia_bench::stats::Summary;

fn summary(median_s: f64, iqr_s: f64) -> Summary {
    Summary {
        repeats: 5,
        median_s,
        iqr_s,
        min_s: median_s - iqr_s / 2.0,
        max_s: median_s + iqr_s / 2.0,
    }
}

fn cell(backend: &str, layout: &str, median_s: f64) -> CellRecord {
    CellRecord {
        backend: backend.to_owned(),
        layout: layout.to_owned(),
        threads: 1,
        n_rows: 1000,
        n_cols: 100,
        iterations: 10,
        threshold_frac: 0.2,
        aprod1: summary(median_s * 0.6, 0.0),
        aprod2: summary(median_s * 0.4, 0.0),
        iteration: summary(median_s, 0.0),
    }
}

fn baseline_with(cells: Vec<CellRecord>) -> Baseline {
    Baseline {
        schema: SCHEMA.to_owned(),
        note: "test fixture".to_owned(),
        threads: 1,
        available_parallelism: 1,
        repeats: 5,
        default_threshold_frac: 0.2,
        cells,
    }
}

/// Scale every metric of a cell — the synthetic-regression knob.
fn scaled(c: &CellRecord, factor: f64) -> CellRecord {
    let scale = |s: &Summary| Summary {
        repeats: s.repeats,
        median_s: s.median_s * factor,
        iqr_s: s.iqr_s * factor,
        min_s: s.min_s * factor,
        max_s: s.max_s * factor,
    };
    CellRecord {
        aprod1: scale(&c.aprod1),
        aprod2: scale(&c.aprod2),
        iteration: scale(&c.iteration),
        ..c.clone()
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gaia_gate_math_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn identical_measurements_pass() {
    let base = baseline_with(vec![
        cell("seq", "small", 1e-3),
        cell("atomic", "small", 2e-3),
    ]);
    let current = base.cells.clone();
    let out = compare_grid(&base, &current, 1, None, 1.0);
    assert!(out.passed());
    assert_eq!(out.deltas.len(), 6, "3 metrics x 2 cells");
    assert_eq!(out.regressions, 0);
    assert_eq!(out.improvements, 0);
    assert!(out.new_cells.is_empty());
    assert!(out.threads_mismatch.is_none());
    let table = delta_table(&out, &base);
    assert!(table.contains("PASS"), "{table}");
    assert!(!table.contains("REGRESSION"), "{table}");
}

#[test]
fn synthetic_regression_fails_with_a_readable_table() {
    let base = baseline_with(vec![
        cell("seq", "small", 1e-3),
        cell("atomic", "small", 2e-3),
    ]);
    // Inflate one cell well past its 20 % band: the gate must fail.
    let current = vec![scaled(&base.cells[0], 2.0), base.cells[1].clone()];
    let out = compare_grid(&base, &current, 1, None, 1.0);
    assert!(!out.passed());
    assert_eq!(out.regressions, 3, "all three metrics of the inflated cell");
    let table = delta_table(&out, &base);
    assert!(table.contains("REGRESSION"), "{table}");
    assert!(table.contains("FAIL"), "{table}");
    assert!(table.contains("seq/small"), "{table}");
}

#[test]
fn band_edge_is_inclusive_at_gate_level() {
    let base = baseline_with(vec![cell("seq", "small", 1e-3)]);
    // threshold_frac = 0.2, zero IQR: exactly +20 % passes...
    let at_edge = compare_grid(&base, &[scaled(&base.cells[0], 1.2)], 1, None, 1.0);
    assert!(at_edge.passed(), "{:?}", at_edge.deltas);
    // ...and epsilon beyond it fails.
    let over = compare_grid(&base, &[scaled(&base.cells[0], 1.2 + 1e-9)], 1, None, 1.0);
    assert!(!over.passed());
}

#[test]
fn band_override_replaces_the_stored_threshold() {
    let base = baseline_with(vec![cell("seq", "small", 1e-3)]);
    let current = vec![scaled(&base.cells[0], 1.5)];
    // +50 % fails the stored 20 % band but passes a CI-wide 100 % one.
    assert!(!compare_grid(&base, &current, 1, None, 1.0).passed());
    assert!(compare_grid(&base, &current, 1, Some(1.0), 1.0).passed());
}

#[test]
fn improvements_are_reported_not_failed() {
    let base = baseline_with(vec![cell("seq", "small", 1e-3)]);
    let out = compare_grid(&base, &[scaled(&base.cells[0], 0.5)], 1, None, 1.0);
    assert!(out.passed());
    assert_eq!(out.improvements, 3);
    assert!(delta_table(&out, &base).contains("improved"));
}

#[test]
fn missing_baseline_cell_is_a_new_cell_not_a_failure() {
    let base = baseline_with(vec![cell("seq", "small", 1e-3)]);
    let current = vec![base.cells[0].clone(), cell("striped", "small", 1.5e-3)];
    let out = compare_grid(&base, &current, 1, None, 1.0);
    assert!(out.passed());
    assert_eq!(
        out.new_cells,
        vec![("striped".to_owned(), "small".to_owned())]
    );
    // Only the matched cell contributes compared metrics.
    assert_eq!(out.deltas.len(), 3);
    let table = delta_table(&out, &base);
    assert!(table.contains("new cell"), "{table}");
}

#[test]
fn thread_budget_mismatch_is_flagged_but_not_fatal() {
    let base = baseline_with(vec![cell("seq", "small", 1e-3)]);
    let out = compare_grid(&base, &base.cells.clone(), 8, None, 1.0);
    assert!(out.passed());
    assert_eq!(out.threads_mismatch, Some((1, 8)));
    assert!(delta_table(&out, &base).contains("thread budgets differ"));
}

#[test]
fn baseline_round_trips_through_the_schema() {
    let base = baseline_with(vec![
        cell("seq", "tiny", 5e-5),
        cell("chunked", "medium", 4e-3),
    ]);
    let path = temp_path("roundtrip.json");
    base.save(&path).expect("save baseline");
    let loaded = Baseline::load(&path).expect("load baseline");
    assert_eq!(loaded, base);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_baseline_file_is_a_distinct_actionable_error() {
    let path = temp_path("does_not_exist.json");
    match Baseline::load(&path) {
        Err(e @ BaselineError::Missing(_)) => {
            assert!(e.to_string().contains("--refresh"), "{e}");
        }
        other => panic!("expected Missing, got {other:?}"),
    }
}

#[test]
fn pre_gate_schema_is_rejected_with_a_migration_hint() {
    // The old executor_overhead format: valid JSON, no schema tag.
    let path = temp_path("legacy.json");
    std::fs::write(&path, r#"{"bench": "executor_overhead", "threads": 4}"#).unwrap();
    match Baseline::load(&path) {
        Err(e @ BaselineError::Schema(_, _)) => {
            let msg = e.to_string();
            assert!(msg.contains(SCHEMA) && msg.contains("--refresh"), "{msg}");
        }
        other => panic!("expected Schema, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_baseline_is_a_parse_error() {
    let path = temp_path("garbage.json");
    std::fs::write(&path, "not json at all {").unwrap();
    assert!(matches!(
        Baseline::load(&path),
        Err(BaselineError::Parse(_, _))
    ));
    std::fs::remove_file(&path).ok();
}
