//! # gaia-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` for the experiment index) plus criterion micro-benchmarks
//! of the real CPU backends.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3` | Fig. 3 a/b/c — efficiency cascades + `P` per problem size |
//! | `fig4` | Fig. 4 a/b/c — average iteration time per platform × framework |
//! | `fig5` | Fig. 5 a/b/c — application efficiency per platform × framework |
//! | `fig6` | Fig. 6 a–d — solution/standard-error validation (real solves) |
//! | `table_flags` | Tables I–III — compilers and compilation flags |
//! | `speedup_production` | §V-B optimized-vs-production CUDA 2.0× claim |
//! | `tuning_ablation` | §V-B "up to 40 % reduction" kernel-tuning claim |
//! | `spmv_labnotes` | §V-B amd-lab-notes SpMV cross-check on A100/MI250X |
//! | `cpu_portability` | measured `P` of the real Rust backends (this repo's own hardware study) |
//! | `executor_overhead` | pooled launches vs legacy spawn-per-call (the `ExecutorPool` win) |
//! | `calibrate` | raw model grids (development tool) |
#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_p3::MeasurementSet;
use gaia_sparse::{SparseSystem, SystemLayout};
use gaia_telemetry::report::RunReport;

/// The paper's three problem sizes in GB.
pub const PROBLEM_SIZES_GB: [f64; 3] = [10.0, 30.0, 60.0];

/// Simulate the full framework × platform grid for a problem size,
/// producing the timing set the p3 analysis consumes. Unsupported
/// combinations (vendor or capacity) are simply absent.
pub fn simulate_measurements(gb: f64) -> (SystemLayout, MeasurementSet) {
    let layout = SystemLayout::from_gb(gb);
    let mut set = MeasurementSet::new();
    for fw in all_frameworks() {
        for p in all_platforms() {
            if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                set.record(&fw.name, &p.name, b.seconds);
            }
        }
    }
    (layout, set)
}

/// The platform set supporting a problem size (paper §V-B), in the
/// paper's presentation order.
pub fn platform_set(gb: f64) -> Vec<String> {
    let layout = SystemLayout::from_gb(gb);
    let bytes = gaia_sparse::footprint::total_device_bytes(&layout);
    all_platforms()
        .into_iter()
        .filter(|p| p.fits(bytes))
        .map(|p| p.name)
        .collect()
}

/// Write a JSON artifact under `results/` (created on demand) so the
/// figures can be re-plotted externally; prints the path.
pub fn write_artifact(name: &str, json: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(json).expect("serializable"),
    ) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Run one measured LSQR solve (fixed iterations) on an instrumented
/// backend, scoping the telemetry registry to the run, and write the
/// per-kernel run report to `results/telemetry/{run}.json`.
///
/// Built with `--no-default-features` the probes are no-ops: the JSON is
/// still written (iteration history always exists) but the snapshot comes
/// back empty with `"enabled": false`.
pub fn measured_run(
    run: &str,
    backend_name: &str,
    threads: usize,
    sys: &SparseSystem,
    iterations: usize,
) -> RunReport {
    let backend =
        gaia_backends::instrumented_by_name(backend_name, threads).expect("registry name");
    gaia_telemetry::reset();
    let cfg = gaia_lsqr::LsqrConfig::fixed_iterations(iterations);
    let sol = gaia_lsqr::solve(sys, &backend, &cfg);
    let report = gaia_lsqr::run_report(run, &backend.name(), "lsqr", sys, &sol);
    match gaia_telemetry::report::write_report(&report) {
        Ok(path) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write telemetry report: {e}"),
    }
    report
}

/// Write a text artifact (SVG, CSV, ...) under `results/`.
pub fn write_text_artifact(name: &str, contents: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_sets_match_paper() {
        assert_eq!(platform_set(10.0), ["T4", "V100", "A100", "H100", "MI250X"]);
        assert_eq!(platform_set(30.0), ["V100", "A100", "H100", "MI250X"]);
        assert_eq!(platform_set(60.0), ["H100", "MI250X"]);
    }

    #[test]
    fn grid_has_expected_cell_counts() {
        // 10 GB: 7 portable frameworks × 5 platforms + CUDA × 4 = 39.
        let (_, set) = simulate_measurements(10.0);
        let cells: usize = set
            .apps()
            .iter()
            .map(|a| {
                set.platforms()
                    .iter()
                    .filter(|p| set.time(a, p).is_some())
                    .count()
            })
            .sum();
        assert_eq!(cells, 7 * 5 + 4);
    }
}
