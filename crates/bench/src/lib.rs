//! # gaia-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` for the experiment index) plus criterion micro-benchmarks
//! of the real CPU backends.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3` | Fig. 3 a/b/c — efficiency cascades + `P` per problem size |
//! | `fig4` | Fig. 4 a/b/c — average iteration time per platform × framework |
//! | `fig5` | Fig. 5 a/b/c — application efficiency per platform × framework |
//! | `fig6` | Fig. 6 a–d — solution/standard-error validation (real solves) |
//! | `table_flags` | Tables I–III — compilers and compilation flags |
//! | `speedup_production` | §V-B optimized-vs-production CUDA 2.0× claim |
//! | `tuning_ablation` | §V-B "up to 40 % reduction" kernel-tuning claim |
//! | `spmv_labnotes` | §V-B amd-lab-notes SpMV cross-check on A100/MI250X |
//! | `cpu_portability` | measured `P` of the real Rust backends (this repo's own hardware study) |
//! | `executor_overhead` | pooled launches vs legacy spawn-per-call (the `ExecutorPool` win) |
//! | `calibrate` | raw model grids (development tool) |
#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod gate;
pub mod report_gen;
pub mod stats;
pub mod sweep;
pub mod tune;

use std::io;
use std::path::{Path, PathBuf};

use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_p3::MeasurementSet;
use gaia_sparse::{SparseSystem, SystemLayout};
use gaia_telemetry::report::RunReport;

/// The paper's three problem sizes in GB.
pub const PROBLEM_SIZES_GB: [f64; 3] = [10.0, 30.0, 60.0];

/// Simulate the full framework × platform grid for a problem size,
/// producing the timing set the p3 analysis consumes. Unsupported
/// combinations (vendor or capacity) are simply absent.
pub fn simulate_measurements(gb: f64) -> (SystemLayout, MeasurementSet) {
    let layout = SystemLayout::from_gb(gb);
    let mut set = MeasurementSet::new();
    for fw in all_frameworks() {
        for p in all_platforms() {
            if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                set.record(&fw.name, &p.name, b.seconds);
            }
        }
    }
    (layout, set)
}

/// The platform set supporting a problem size (paper §V-B), in the
/// paper's presentation order.
pub fn platform_set(gb: f64) -> Vec<String> {
    let layout = SystemLayout::from_gb(gb);
    let bytes = gaia_sparse::footprint::total_device_bytes(&layout);
    all_platforms()
        .into_iter()
        .filter(|p| p.fits(bytes))
        .map(|p| p.name)
        .collect()
}

/// Print a one-line error and exit nonzero — the clean failure mode for
/// bench binaries fed bad CLI input or hitting unwritable artifact paths
/// (no panic, no backtrace, no "success" after a swallowed warning).
pub fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// The workspace root every artifact is anchored at (nearest ancestor
/// `Cargo.toml` declaring `[workspace]`; falls back to the CWD when run
/// outside the repo).
pub fn workspace_root() -> PathBuf {
    gaia_telemetry::report::workspace_root()
        .unwrap_or_else(|| std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
}

/// The `results/` directory artifacts land in: `GAIA_RESULTS_DIR` when
/// set, else `<workspace root>/results` — never CWD-relative, so bench
/// bins run from a crate subdirectory do not scatter artifact copies.
pub fn results_dir() -> PathBuf {
    gaia_telemetry::report::results_root()
}

/// The one fallible writer every artifact goes through: create parent
/// directories, serialize, write. Callers must consume the `Result` —
/// an artifact that was not written is a failed run, not a warning.
pub fn write_json_file(path: &Path, json: &serde_json::Value) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let text = serde_json::to_string_pretty(json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    std::fs::write(path, text)
}

/// Text twin of [`write_json_file`].
pub fn write_text_file(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

/// Write a JSON artifact under [`results_dir`] (`name` may carry
/// subdirectories, e.g. `bench/gate_report.json`); prints and returns
/// the path written.
pub fn write_artifact(name: &str, json: &serde_json::Value) -> io::Result<PathBuf> {
    let path = results_dir().join(name);
    write_json_file(&path, json)?;
    println!("[artifact] {}", path.display());
    Ok(path)
}

/// [`write_artifact`] for binaries: any I/O failure is fatal (exit 1)
/// instead of a swallowed warning that lets a run "pass" while writing
/// nothing.
pub fn must_write_artifact(name: &str, json: &serde_json::Value) -> PathBuf {
    write_artifact(name, json).unwrap_or_else(|e| fatal(&format!("cannot write {name}: {e}")))
}

/// Run one measured LSQR solve (fixed iterations) on an instrumented
/// backend, scoping the telemetry registry to the run, and write the
/// per-kernel run report to `results/telemetry/{run}.json`.
///
/// Built with `--no-default-features` the probes are no-ops: the JSON is
/// still written (iteration history always exists) but the snapshot comes
/// back empty with `"enabled": false`.
/// A backend name that does not parse is user input, not a bug: fail
/// with one clean line (registry names listed) and exit 1 instead of a
/// panic + backtrace. An unwritable telemetry report is equally fatal —
/// the report *is* the run's output.
pub fn measured_run(
    run: &str,
    backend_name: &str,
    threads: usize,
    sys: &SparseSystem,
    iterations: usize,
) -> RunReport {
    let Some(backend) = gaia_backends::instrumented_by_name(backend_name, threads) else {
        fatal(&format!(
            "unknown backend `{backend_name}` (registry names: {}; tuned suffixes \
             `-t<threads>[-c<chunks>]` accepted)",
            gaia_backends::backend_names().join(", ")
        ))
    };
    gaia_telemetry::reset();
    let cfg = gaia_lsqr::LsqrConfig::fixed_iterations(iterations);
    let sol = gaia_lsqr::solve(sys, &backend, &cfg);
    let report = gaia_lsqr::run_report(run, &backend.name(), "lsqr", sys, &sol);
    match gaia_telemetry::report::write_report(&report) {
        Ok(path) => println!("[artifact] {}", path.display()),
        Err(e) => fatal(&format!("cannot write telemetry report for `{run}`: {e}")),
    }
    report
}

/// Write a text artifact (SVG, CSV, markdown ...) under [`results_dir`];
/// prints and returns the path written.
pub fn write_text_artifact(name: &str, contents: &str) -> io::Result<PathBuf> {
    let path = results_dir().join(name);
    write_text_file(&path, contents)?;
    println!("[artifact] {}", path.display());
    Ok(path)
}

/// [`write_text_artifact`] for binaries: I/O failure is fatal (exit 1).
pub fn must_write_text_artifact(name: &str, contents: &str) -> PathBuf {
    write_text_artifact(name, contents)
        .unwrap_or_else(|e| fatal(&format!("cannot write {name}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_sets_match_paper() {
        assert_eq!(platform_set(10.0), ["T4", "V100", "A100", "H100", "MI250X"]);
        assert_eq!(platform_set(30.0), ["V100", "A100", "H100", "MI250X"]);
        assert_eq!(platform_set(60.0), ["H100", "MI250X"]);
    }

    #[test]
    fn grid_has_expected_cell_counts() {
        // 10 GB: 7 portable frameworks × 5 platforms + CUDA × 4 = 39.
        let (_, set) = simulate_measurements(10.0);
        let cells: usize = set
            .apps()
            .iter()
            .map(|a| {
                set.platforms()
                    .iter()
                    .filter(|p| set.time(a, p).is_some())
                    .count()
            })
            .sum();
        assert_eq!(cells, 7 * 5 + 4);
    }
}
