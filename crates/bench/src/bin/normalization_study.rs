//! The two readings of "application efficiency".
//!
//! The paper's appendix describes deriving efficiency from "the best
//! observed performance of a specific code version among all the
//! considered platforms", which literally reads as a per-application
//! normalization; its results are only consistent with the standard
//! per-platform-best normalization (see DESIGN.md §2). Both are
//! implemented; this harness shows side by side what each produces and
//! why the per-application reading cannot yield the published numbers:
//! under it, every framework scores 1.0 on its own best platform and `P`
//! mostly measures the hardware spread (T4 vs H100 ≈ 13×), collapsing
//! every framework's score to a similar low value.

use gaia_bench::{platform_set, simulate_measurements, PROBLEM_SIZES_GB};
use gaia_p3::{report, Normalization};

fn main() {
    for gb in PROBLEM_SIZES_GB {
        let (_, set) = simulate_measurements(gb);
        let platforms = platform_set(gb);
        println!("================ {gb} GB ================");
        for (label, norm) in [
            (
                "platform-best (Pennycook application efficiency)",
                Normalization::PlatformBest,
            ),
            (
                "per-application best (the appendix's literal wording)",
                Normalization::AppBestPlatform,
            ),
        ] {
            let matrix = set.efficiencies(norm);
            println!("--- {label} ---");
            println!("{}", report::pp_table(&matrix, &platforms));
        }
    }
    println!(
        "Only the platform-best normalization reproduces the paper's values\n\
         (HIP 0.98, OMP+LLVM 0.25, CUDA 0.97 NVIDIA-only); the literal\n\
         per-application reading compresses every framework toward the\n\
         hardware-speed spread and cannot distinguish them — the evidence\n\
         behind DESIGN.md's interpretation choice."
    );
}
