//! Energy-to-solution study (extension, motivated by ref \[46\]'s "green
//! computing milestones"): joules per LSQR iteration and iterations per
//! kWh for every framework × platform cell of the 10 GB problem, next to
//! the time ranking — the two orderings differ, which is the point.

use gaia_gpu_sim::energy::{iteration_energy_j, iterations_per_kwh, power_spec};
use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_p3::plot;
use gaia_sparse::SystemLayout;

fn main() {
    let layout = SystemLayout::from_gb(10.0);
    println!("energy model per platform (memory-bound sustained power):");
    println!(
        "{:<8} {:>8} {:>8} {:>12}",
        "platform", "TDP [W]", "idle [W]", "sustained"
    );
    for p in all_platforms() {
        let ps = power_spec(&p);
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>11.0}%",
            p.name,
            ps.tdp_w,
            ps.idle_w,
            100.0 * ps.mem_bound_utilization
        );
    }

    println!("\nJ per iteration (10 GB problem):");
    let platforms = all_platforms();
    print!("{:<12}", "framework");
    for p in &platforms {
        print!(" {:>9}", p.name);
    }
    println!();
    let mut rows = Vec::new();
    for fw in all_frameworks() {
        print!("{:<12}", fw.name);
        for p in &platforms {
            match iteration_time(&layout, &fw, p, &SimConfig::default()) {
                Some(b) => {
                    let e = iteration_energy_j(p, b.seconds);
                    print!(" {:>9.2}", e);
                    rows.push(serde_json::json!({
                        "framework": fw.name,
                        "platform": p.name,
                        "joules_per_iteration": e,
                        "iterations_per_kwh": iterations_per_kwh(p, b.seconds),
                    }));
                }
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    gaia_bench::must_write_artifact("energy.json", &serde_json::json!(rows));

    // Platform ranking by the two metrics for the best framework per
    // platform.
    let mut time_rank = Vec::new();
    let mut energy_rank = Vec::new();
    for p in &platforms {
        let best = all_frameworks()
            .into_iter()
            .filter_map(|fw| iteration_time(&layout, &fw, p, &SimConfig::default()))
            .map(|b| b.seconds)
            .fold(f64::INFINITY, f64::min);
        time_rank.push((p.name.clone(), 1e3 * best));
        energy_rank.push((p.name.clone(), iteration_energy_j(p, best)));
    }
    println!(
        "\n{}",
        plot::bar_chart("best iteration time per platform [ms]", &time_rank, 40)
    );
    println!(
        "{}",
        plot::bar_chart("energy at that speed [J/iteration]", &energy_rank, 40)
    );
    println!(
        "The H100 wins on time while the efficiency ranking reshuffles —\n\
         the trade-off ref [46] tracks as a green-computing milestone."
    );
}
