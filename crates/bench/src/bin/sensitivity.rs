//! Calibration robustness report: perturb each simulator knob class by
//! ±5 %, ±10 %, and ±20 % and check whether the paper's headline
//! conclusions (HIP/SYCL+ACPP lead, OMP+LLVM worst, OMP+V wins MI250X)
//! survive — the analysis that separates a fitted model from a
//! knife-edge one.

use gaia_gpu_sim::sensitivity::{check, KNOBS};

fn main() {
    println!(
        "{:<22} {:>8} {:>10} {:>9} {:>13} {:>10}",
        "knob", "factor", "leaders", "worst", "MI250X win", "HIP P"
    );
    let mut rows = Vec::new();
    let mut failures = 0;
    for knob in KNOBS {
        for factor in [0.80, 0.90, 0.95, 1.0, 1.05, 1.10, 1.20] {
            let r = check(knob, factor);
            let ok = r.leaders_stable && r.worst_stable && r.mi250x_winner_stable;
            if !ok {
                failures += 1;
            }
            println!(
                "{:<22} {:>8.2} {:>10} {:>9} {:>13} {:>10.3}",
                format!("{:?}", r.knob),
                r.factor,
                r.leaders_stable,
                r.worst_stable,
                r.mi250x_winner_stable,
                r.hip_pp,
            );
            rows.push(serde_json::to_value(&r).expect("serializable"));
        }
    }
    gaia_bench::must_write_artifact("sensitivity.json", &serde_json::json!(rows));
    if failures == 0 {
        println!("\nAll headline conclusions survive every perturbation tested:");
        println!("the calibration is not knife-edge (±5 % stability is asserted in CI).");
    } else {
        println!(
            "\n{failures} perturbation(s) flip a conclusion — those mark where the\n\
             model's conclusions genuinely depend on the fitted constant."
        );
    }
}
