//! Overload sweep: tenant count × fault injection × deadline tightness
//! against the `gaia-serve` solve service.
//!
//! Each cell starts a fresh service, floods it with a mixed tenant
//! population — in hostile cells one tenant runs a scripted rank-panic
//! fault schedule and another saturates the queue (with an impossible
//! deadline when the deadline axis is tight) — then audits the event log
//! with `gaia-verify`'s service invariants. The sweep demonstrates
//! tenant isolation: zero crashes, zero cross-tenant failures, and every
//! admitted request resolving to exactly one typed outcome, even in the
//! 8-tenant cell with both a faulting and a saturating tenant.
//!
//! Writes `results/serve/overload.json` (cells + the shared
//! `gaia-sweep-summary/v1` aggregate rows) and exits non-zero on any
//! invariant or isolation violation. `--smoke` runs the single CI
//! scenario instead and writes `results/serve/smoke.json`.
//!
//! Usage: `overload [--seed S] [--smoke]` (default seed 11).

use std::sync::Arc;
use std::time::Duration;

use gaia_bench::sweep::{summary_block, SummaryRow};
use gaia_bench::{fatal, must_write_artifact};
use gaia_lsqr::resilient::RecoveryPolicy;
use gaia_mpi_sim::{install_quiet_panic_hook, FaultKind, FaultPlan};
use gaia_serve::{
    OutcomeKind, RetryConfig, ServiceConfig, ServiceEvent, SolveRequest, SolveService, Ticket,
};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout};
use gaia_verify::service::audit_service_log;

fn system(seed: u64) -> Arc<SparseSystem> {
    Arc::new(
        Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate(),
    )
}

fn service_config(tenants: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 2 * tenants + 4,
        tenant_quota: 3,
        retry: RetryConfig {
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..RetryConfig::default()
        },
        supervisor: RecoveryPolicy {
            backoff: Duration::ZERO,
            ..RecoveryPolicy::default()
        },
        ..ServiceConfig::default()
    }
}

const INNOCENT_BACKENDS: [&str; 4] = ["seq", "chunked-t2", "atomic-t2", "striped-t2"];

struct CellOutcome {
    tenant: String,
    kind: OutcomeKind,
}

/// Submit one cell's tenant population and wait out every ticket.
fn run_cell(
    seed: u64,
    tenants: usize,
    hostile: bool,
    tight: bool,
) -> (Vec<CellOutcome>, Vec<ServiceEvent>) {
    let service = SolveService::start(service_config(tenants));
    let mut tickets: Vec<(String, Ticket)> = Vec::new();
    for t in 0..tenants {
        let tenant = format!("tenant-{t}");
        if hostile && t == 0 {
            // The faulting tenant: a scripted rank panic on its first
            // attempt; the supervisor recovers it from checkpoint.
            let plan = Arc::new(FaultPlan::scripted(seed + t as u64).with_event(
                0,
                1,
                2,
                FaultKind::RankPanic,
            ));
            let mut req = SolveRequest::new(tenant.clone(), system(seed + 100 + t as u64));
            req.ranks = 2;
            req.faults = Some(plan);
            tickets.push((tenant.clone(), service.submit(req).1));
            continue;
        }
        if hostile && t == 1 {
            // The saturating tenant: three times its quota, with an
            // impossible deadline when the deadline axis is tight.
            for i in 0..9 {
                let mut req = SolveRequest::new(tenant.clone(), system(seed + 200 + i));
                if tight {
                    req.deadline = Some(Duration::ZERO);
                }
                tickets.push((tenant.clone(), service.submit(req).1));
            }
            continue;
        }
        for i in 0..2u64 {
            let mut req = SolveRequest::new(tenant.clone(), system(seed + 300 + t as u64 * 10 + i));
            req.backend = INNOCENT_BACKENDS[(t + i as usize) % INNOCENT_BACKENDS.len()].into();
            if tight {
                // Present but generous: the axis's pressure comes from
                // the saturator; innocents must still converge in time.
                req.deadline = Some(Duration::from_secs(5));
            }
            tickets.push((tenant.clone(), service.submit(req).1));
        }
    }
    let outcomes = tickets
        .into_iter()
        .map(|(tenant, ticket)| CellOutcome {
            tenant,
            kind: ticket.wait().kind(),
        })
        .collect();
    (outcomes, service.shutdown())
}

fn kind_count(outcomes: &[CellOutcome], kind: OutcomeKind) -> u64 {
    outcomes.iter().filter(|o| o.kind == kind).count() as u64
}

fn main() {
    install_quiet_panic_hook();
    let mut seed = 11u64;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fatal("--seed needs an integer value"))
            }
            "--smoke" => smoke = true,
            other => fatal(&format!(
                "unknown flag {other}; usage: overload [--seed S] [--smoke]"
            )),
        }
    }

    if smoke {
        run_smoke(seed);
        return;
    }

    println!("overload sweep: seed {seed}");
    println!(
        "  {:<8} {:<8} {:<8} {:>5} {:>5} {:>5} {:>6} {:>9} {:>7} {:>6}",
        "tenants",
        "chaos",
        "deadline",
        "runs",
        "conv",
        "degr",
        "shed",
        "deadline",
        "fault",
        "sound"
    );

    let mut cells = Vec::new();
    let mut rows: Vec<SummaryRow> = Vec::new();
    let mut violations = 0usize;
    for tenants in [2usize, 4, 8] {
        for hostile in [false, true] {
            for tight in [false, true] {
                let (outcomes, events) = run_cell(seed, tenants, hostile, tight);
                let audit = audit_service_log(&events);
                // Cross-tenant isolation: tenants other than the two
                // hostile roles must resolve Converged or Degraded —
                // never Faulted, never Shed, never DeadlineExceeded.
                let cross_tenant_failures = outcomes
                    .iter()
                    .filter(|o| {
                        let innocent =
                            !hostile || (o.tenant != "tenant-0" && o.tenant != "tenant-1");
                        innocent
                            && !matches!(o.kind, OutcomeKind::Converged | OutcomeKind::Degraded)
                    })
                    .count();
                let retried = events
                    .iter()
                    .filter(|e| matches!(e, ServiceEvent::Retried { .. }))
                    .count() as u64;
                if !audit.is_sound() {
                    violations += 1;
                    for v in &audit.violations {
                        eprintln!("  INVARIANT tenants={tenants} hostile={hostile}: {v}");
                    }
                }
                if cross_tenant_failures > 0 {
                    violations += 1;
                    eprintln!(
                        "  ISOLATION tenants={tenants} hostile={hostile} tight={tight}: \
                         {cross_tenant_failures} innocent request(s) failed"
                    );
                }
                let chaos_label = if hostile { "hostile" } else { "calm" };
                let deadline_label = if tight { "tight" } else { "relaxed" };
                let row = SummaryRow {
                    group: format!(
                        "tenants={tenants}/chaos={chaos_label}/deadline={deadline_label}"
                    ),
                    runs: audit.submitted as u64,
                    converged: kind_count(&outcomes, OutcomeKind::Converged),
                    degraded: kind_count(&outcomes, OutcomeKind::Degraded),
                    recoveries: retried,
                    failures: kind_count(&outcomes, OutcomeKind::Faulted),
                    shed: kind_count(&outcomes, OutcomeKind::Shed),
                    deadline_exceeded: kind_count(&outcomes, OutcomeKind::DeadlineExceeded),
                };
                println!(
                    "  {:<8} {:<8} {:<8} {:>5} {:>5} {:>5} {:>6} {:>9} {:>7} {:>6}",
                    tenants,
                    chaos_label,
                    deadline_label,
                    row.runs,
                    row.converged,
                    row.degraded,
                    row.shed,
                    row.deadline_exceeded,
                    row.failures,
                    if audit.is_sound() && cross_tenant_failures == 0 {
                        "yes"
                    } else {
                        "NO"
                    },
                );
                cells.push(serde_json::json!({
                    "tenants": tenants,
                    "chaos": chaos_label,
                    "deadline": deadline_label,
                    "submitted": audit.submitted,
                    "admitted": audit.admitted,
                    "shed": audit.shed,
                    "converged": row.converged,
                    "degraded": row.degraded,
                    "deadline_exceeded": row.deadline_exceeded,
                    "faulted": row.failures,
                    "retries": retried,
                    "invariants_sound": audit.is_sound(),
                    "cross_tenant_failures": cross_tenant_failures,
                }));
                rows.push(row);
            }
        }
    }

    let artifact = serde_json::json!({
        "seed": seed,
        "cells": cells,
        "summary": summary_block(&rows),
    });
    must_write_artifact("serve/overload.json", &artifact);

    if violations > 0 {
        eprintln!("{violations} overload cell(s) violated service invariants or isolation");
        std::process::exit(1);
    }
}

/// The CI smoke scenario: four concurrent tenants — one scripted rank
/// panic, one impossible deadline, two clean — all resolving to their
/// expected typed outcomes with a sound event log.
fn run_smoke(seed: u64) {
    let service = SolveService::start(service_config(4));

    let plan = Arc::new(FaultPlan::scripted(seed).with_event(0, 1, 2, FaultKind::RankPanic));
    let mut chaotic = SolveRequest::new("chaotic", system(seed + 1));
    chaotic.ranks = 2;
    chaotic.faults = Some(plan);
    let chaotic_t = service.submit(chaotic).1;

    let mut doomed = SolveRequest::new("doomed", system(seed + 2));
    doomed.deadline = Some(Duration::ZERO);
    let doomed_t = service.submit(doomed).1;

    let clean_a = service
        .submit(SolveRequest::new("clean-a", system(seed + 3)))
        .1;
    let mut req_b = SolveRequest::new("clean-b", system(seed + 4));
    req_b.backend = "chunked-t2".into();
    let clean_b = service.submit(req_b).1;

    let chaotic_kind = chaotic_t.wait().kind();
    let doomed_kind = doomed_t.wait().kind();
    let a_kind = clean_a.wait().kind();
    let b_kind = clean_b.wait().kind();
    let events = service.shutdown();
    let audit = audit_service_log(&events);

    println!("serve smoke: chaotic={chaotic_kind} doomed={doomed_kind} clean=[{a_kind}, {b_kind}]");

    let mut failures = Vec::new();
    if !matches!(chaotic_kind, OutcomeKind::Converged | OutcomeKind::Degraded) {
        failures.push(format!(
            "chaotic tenant should recover its rank panic, got {chaotic_kind}"
        ));
    }
    if doomed_kind != OutcomeKind::DeadlineExceeded {
        failures.push(format!(
            "doomed tenant should exceed its impossible deadline, got {doomed_kind}"
        ));
    }
    for (name, kind) in [("clean-a", a_kind), ("clean-b", b_kind)] {
        if kind != OutcomeKind::Converged {
            failures.push(format!("{name} should converge untouched, got {kind}"));
        }
    }
    if !audit.is_sound() {
        failures.extend(audit.violations.iter().cloned());
    }

    must_write_artifact(
        "serve/smoke.json",
        &serde_json::json!({
            "seed": seed,
            "chaotic": format!("{chaotic_kind}"),
            "doomed": format!("{doomed_kind}"),
            "clean": [format!("{a_kind}"), format!("{b_kind}")],
            "invariants_sound": audit.is_sound(),
            "failures": failures,
        }),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("smoke failure: {f}");
        }
        std::process::exit(1);
    }
}
