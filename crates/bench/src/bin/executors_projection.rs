//! §VI future-work projection: "using executors, these performance gaps
//! are expected to be reduced" — the C++26 executors proposal (P0443,
//! ref \[54\]) would let PSTL code set explicit kernel parameters.
//!
//! We materialize that hypothetical: a PSTL variant with full kernel
//! tunability (everything else identical) and recompute the Fig. 3
//! analysis with it, quantifying how much of the PSTL portability gap is
//! pure tuning and how much is runtime overhead that executors cannot
//! recover.

use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig, Tunability};
use gaia_p3::{MeasurementSet, Normalization};
use gaia_sparse::SystemLayout;

fn main() {
    println!("C++26 executors projection (10/30/60 GB problems)\n");
    let mut artifacts = Vec::new();
    for gb in gaia_bench::PROBLEM_SIZES_GB {
        let layout = SystemLayout::from_gb(gb);
        let mut set = MeasurementSet::new();
        let mut frameworks = all_frameworks();
        // The hypothetical executor-enabled PSTL ports.
        for base in ["PSTL+ACPP", "PSTL+V"] {
            let mut fw = gaia_gpu_sim::framework_by_name(base).expect("registry");
            fw.name = format!("{base}+exec");
            fw.tunability = Tunability::Full;
            frameworks.push(fw);
        }
        for fw in &frameworks {
            for p in all_platforms() {
                if let Some(b) = iteration_time(&layout, fw, &p, &SimConfig::default()) {
                    set.record(&fw.name, &p.name, b.seconds);
                }
            }
        }
        let platforms = set.platforms();
        let matrix = set.efficiencies(Normalization::PlatformBest);
        println!("--- {gb} GB ---");
        println!("{:<16} {:>8} {:>14}", "framework", "P", "P with exec");
        for base in ["PSTL+ACPP", "PSTL+V"] {
            let p_now = matrix.pp(base, &platforms);
            let p_exec = matrix.pp(&format!("{base}+exec"), &platforms);
            println!("{:<16} {:>8.3} {:>14.3}", base, p_now, p_exec);
            artifacts.push(serde_json::json!({
                "gb": gb,
                "framework": base,
                "pp": p_now,
                "pp_with_executors": p_exec,
            }));
        }
        println!();
    }
    gaia_bench::must_write_artifact("executors_projection.json", &serde_json::json!(artifacts));
    println!(
        "Executors recover the T4/V100/MI250X tuning losses (the dominant PSTL\n\
         gap), but not the stdpar runtime overheads — P rises substantially yet\n\
         stays below the language-specific frameworks, matching the paper's\n\
         expectation that the gap would be \"reduced\", not closed."
    );
}
