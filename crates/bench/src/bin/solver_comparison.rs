//! LSQR vs LSMR (extension): the AVU-GSR solver family compared on the
//! same backends and systems — iterations to convergence, optimality
//! (‖Aᵀr‖) trajectories, and per-iteration cost. Both algorithms run the
//! identical two sparse products per iteration, so the paper's entire
//! portability analysis transfers to LSMR unchanged; what differs is the
//! numerics (LSMR's monotone ‖Aᵀr‖ makes early stopping safer on noisy
//! astrometric data).

use std::time::Instant;

use gaia_backends::AtomicBackend;
use gaia_lsqr::{solve, solve_lsmr, LsqrConfig};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    let backend = AtomicBackend::with_threads(4);
    println!(
        "{:<10} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>14}",
        "noise", "rows", "LSQR iters", "LSMR iters", "LSQR ms", "LSMR ms", "ΔX (max abs)"
    );
    let mut rows_json = Vec::new();
    for noise in [0.0, 1e-8, 1e-4, 1e-2] {
        let cfg = GeneratorConfig::new(SystemLayout::small())
            .seed(21)
            .rhs(Rhs::FromTrueSolution { noise_sigma: noise });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let solver_cfg = LsqrConfig::new().max_iters(20_000);

        // gaia-analyze: allow(timing): end-to-end wall-clock is this
        // benchmark's deliverable; telemetry scopes time kernels, not runs.
        let t0 = Instant::now();
        let a = solve(&sys, &backend, &solver_cfg);
        let t_lsqr = t0.elapsed().as_secs_f64();
        // gaia-analyze: allow(timing): same wall-clock protocol for the
        // LSMR leg so the two solvers are compared like for like.
        let t0 = Instant::now();
        let b = solve_lsmr(&sys, &backend, &solver_cfg);
        let t_lsmr = t0.elapsed().as_secs_f64();

        let max_diff =
            a.x.iter()
                .zip(&b.x)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
        println!(
            "{:<10.0e} {:>9} | {:>12} {:>12} | {:>12.2} {:>12.2} | {:>14.3e}",
            noise,
            sys.n_rows(),
            a.iterations,
            b.iterations,
            1e3 * t_lsqr,
            1e3 * t_lsmr,
            max_diff
        );

        // Optimality trajectory: count LSQR's non-monotone ‖Aᵀr‖ steps vs
        // LSMR's (which must be zero).
        let bumps = |h: &[gaia_lsqr::IterationStats]| {
            h.windows(2)
                .filter(|w| w[1].arnorm > w[0].arnorm * (1.0 + 1e-12))
                .count()
        };
        println!(
            "           ‖Aᵀr‖ increases along the run: LSQR {}, LSMR {}",
            bumps(&a.history),
            bumps(&b.history)
        );
        rows_json.push(serde_json::json!({
            "noise": noise,
            "lsqr_iterations": a.iterations,
            "lsmr_iterations": b.iterations,
            "max_solution_diff": max_diff,
            "lsqr_arnorm_bumps": bumps(&a.history),
            "lsmr_arnorm_bumps": bumps(&b.history),
        }));
    }
    gaia_bench::must_write_artifact("solver_comparison.json", &serde_json::json!(rows_json));
    println!(
        "\nBoth solvers cost one aprod1 + one aprod2 per iteration, so every\n\
         framework/platform conclusion of the paper applies to either; LSMR\n\
         buys a monotone optimality measure for comparable iteration counts."
    );
}
