//! Roofline table: arithmetic intensity of every solver kernel vs every
//! platform's ridge point — the §VI "highly memory-bound" claim as
//! numbers, and the justification for the simulator's bandwidth-only
//! kernel model.

use gaia_gpu_sim::all_platforms;
use gaia_gpu_sim::roofline::{analyze, ridge_point};
use gaia_sparse::SystemLayout;

fn main() {
    let layout = SystemLayout::from_gb(10.0);
    println!("platform ridge points (FLOP/byte at the roofline knee):");
    for p in all_platforms() {
        println!(
            "  {:<8} peak {:>5.1} TFLOP/s, {:>5.0} GB/s  ->  ridge {:>5.2}",
            p.name,
            p.fp64_tflops,
            p.bw_gbs,
            ridge_point(&p)
        );
    }

    let h100 = all_platforms()
        .into_iter()
        .find(|p| p.name == "H100")
        .unwrap();
    println!("\nkernel placements on the H100 roofline (10 GB problem):");
    println!(
        "  {:<14} {:>12} {:>10} {:>16} {:>10}",
        "kernel", "AI [F/B]", "bound", "attainable", "% of peak"
    );
    let mut rows = Vec::new();
    for pt in analyze(&layout, &h100) {
        println!(
            "  {:<14} {:>12.4} {:>10} {:>12.0} GF/s {:>9.2}%",
            pt.kernel,
            pt.intensity,
            if pt.memory_bound() {
                "memory"
            } else {
                "compute"
            },
            pt.attainable_gflops,
            100.0 * pt.fraction_of_peak
        );
        rows.push(serde_json::to_value(&pt).expect("serializable"));
    }
    gaia_bench::must_write_artifact("roofline.json", &serde_json::json!(rows));
    println!(
        "\nEvery kernel sits 1-2 orders of magnitude below every ridge point:\n\
         the solver can never use more than a few percent of any GPU's FP64\n\
         peak, so bandwidth (and how well each framework's codegen feeds it)\n\
         decides everything — the premise of the paper and of this simulator."
    );
}
