//! Structural statistics of a generated system — the quantitative
//! counterpart of the paper's Fig. 2 and of the §IV collision discussion
//! ("the indexes used by aprod2 can collide (with the exception of the
//! astrometric parameters due to their block diagonal structure)").
//!
//! Usage: `cargo run -p gaia-bench --bin matrix_stats [preset]`

use gaia_sparse::stats::system_stats;
use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

fn main() {
    let preset = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let layout = match preset.as_str() {
        "tiny" => SystemLayout::tiny(),
        "small" => SystemLayout::small(),
        "medium" => SystemLayout::medium(),
        other => {
            eprintln!("unknown preset {other} (tiny|small|medium)");
            std::process::exit(1);
        }
    };
    let sys = Generator::new(GeneratorConfig::new(layout).seed(0)).generate();
    let stats = system_stats(&sys);

    println!(
        "system '{preset}': {} rows x {} cols, sparsity {:.3}%",
        sys.n_rows(),
        sys.n_cols(),
        100.0 * stats.sparsity
    );
    println!(
        "\n{:<14} {:>8} {:>9} {:>10} {:>14} {:>13}",
        "block", "cols", "touched", "nnz", "rows/col", "max rows/col"
    );
    for b in &stats.blocks {
        println!(
            "{:<14} {:>8} {:>9} {:>10} {:>14.1} {:>13}",
            b.block.label(),
            b.n_cols,
            b.touched_cols,
            b.nnz,
            b.mean_rows_per_col,
            b.max_rows_per_col
        );
    }
    println!(
        "\natomic-contention ratio (worst shared block vs astrometric): {:.1}x",
        stats.contention_ratio()
    );
    println!(
        "attitude offset locality (mean |Δoffset| between consecutive rows): {:.2}",
        stats.attitude_offset_locality
    );
    println!(
        "\nReading: every astrometric column is owned by one star (safe to\n\
         parallelize over stars); the attitude/instrumental/global columns\n\
         aggregate orders of magnitude more rows — the §IV reason their\n\
         aprod2 updates need atomics, and the contention the optimized\n\
         kernels mitigate by reducing blocks/threads in those regions."
    );

    gaia_bench::must_write_artifact(
        &format!("matrix_stats_{preset}.json"),
        &serde_json::to_value(&stats).expect("serializable"),
    );
}
