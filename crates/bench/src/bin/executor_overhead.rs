//! Executor-pool overhead study: per-iteration wall time of the pooled
//! launch path vs the legacy spawn-per-call pattern the backends used
//! before the [`gaia_backends::ExecutorPool`] refactor.
//!
//! The legacy baseline lives *here*, not in `gaia-backends`: it re-creates
//! the old chunked owner-computes backend with `std::thread::scope`
//! spawning fresh OS threads on every `aprod1`/`aprod2` call, which is
//! exactly the overhead the persistent pool eliminates. Keeping it in the
//! bench bin means no spawn-per-call code remains in any backend hot path.
//!
//! Artifacts: `results/bench/executor_overhead.json` plus a repo-root
//! `BENCH_executor.json` summary. Pass `--quick` (CI smoke) for a tiny
//! layout and few iterations.

use std::time::Instant;

use gaia_backends::kernels;
use gaia_backends::launch::split_ranges;
use gaia_backends::{Backend, ChunkedBackend, Tuning};
use gaia_sparse::{Generator, GeneratorConfig, SparseSystem, SystemLayout};

/// Legacy `out += A x`: fresh scoped threads per call, one per row chunk.
fn legacy_aprod1(sys: &SparseSystem, x: &[f64], out: &mut [f64], threads: usize) {
    let ranges = split_ranges(sys.n_rows(), threads.max(1));
    // gaia-analyze: allow(thread-spawn): spawn-per-call *is* the legacy
    // baseline this benchmark measures against the pool.
    std::thread::scope(|scope| {
        let mut rest = out;
        for rows in ranges {
            let (mine, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            scope.spawn(move || kernels::aprod1_range(sys, x, rows, mine));
        }
    });
}

/// Legacy `out += Aᵀ y`: fresh scoped threads per call — star chunks for
/// the astrometric block, owner-computes column splits for attitude and
/// instrumental, one thread for the global sum.
fn legacy_aprod2(sys: &SparseSystem, y: &[f64], out: &mut [f64], threads: usize) {
    let c = sys.columns();
    let n_att = (c.instr - c.att) as usize;
    let n_instr = (c.glob - c.instr) as usize;
    let (astro, rest) = out.split_at_mut(c.att as usize);
    let (att, rest2) = rest.split_at_mut(n_att);
    let (instr, glob) = rest2.split_at_mut(n_instr);
    let n_stars = sys.layout().n_stars as usize;
    let n_rows = sys.n_rows();
    let n_obs = sys.n_obs_rows();
    let threads = threads.max(1);

    // gaia-analyze: allow(thread-spawn): spawn-per-call *is* the legacy
    // baseline this benchmark measures against the pool.
    std::thread::scope(|scope| {
        let mut astro_rest = astro;
        for stars in split_ranges(n_stars, threads) {
            let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
            astro_rest = tail;
            scope.spawn(move || kernels::aprod2_astro(sys, y, stars, mine));
        }
        let mut att_rest = att;
        for own in split_ranges(n_att, threads) {
            let (mine, tail) = att_rest.split_at_mut(own.len());
            att_rest = tail;
            scope.spawn(move || kernels::aprod2_att_owned(sys, y, 0..n_rows, own, mine));
        }
        let mut instr_rest = instr;
        for own in split_ranges(n_instr, threads) {
            let (mine, tail) = instr_rest.split_at_mut(own.len());
            instr_rest = tail;
            scope.spawn(move || kernels::aprod2_instr_owned(sys, y, 0..n_obs, own, mine));
        }
        if !glob.is_empty() {
            scope.spawn(move || kernels::aprod2_glob(sys, y, 0..n_obs, glob));
        }
    });
}

/// Mean seconds per iteration of `iters` combined `aprod1`+`aprod2` calls.
fn time_iterations<F>(sys: &SparseSystem, warmup: usize, iters: usize, mut step: F) -> f64
where
    F: FnMut(&SparseSystem, &[f64], &[f64], &mut [f64], &mut [f64]),
{
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
    let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut out1 = vec![0.0; sys.n_rows()];
    let mut out2 = vec![0.0; sys.n_cols()];
    for _ in 0..warmup {
        step(sys, &x, &y, &mut out1, &mut out2);
    }
    // gaia-analyze: allow(timing): end-to-end wall-clock is this
    // benchmark's deliverable; telemetry scopes time kernels, not runs.
    let t0 = Instant::now();
    for _ in 0..iters {
        step(sys, &x, &y, &mut out1, &mut out2);
    }
    let elapsed = t0.elapsed().as_secs_f64() / iters as f64;
    // Keep the outputs observable so the work cannot be optimized away.
    assert!(out1.iter().chain(out2.iter()).all(|v| v.is_finite()));
    elapsed
}

struct Case {
    label: &'static str,
    layout: SystemLayout,
    warmup: usize,
    iters: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = 4usize;
    let cases: Vec<Case> = if quick {
        vec![Case {
            label: "tiny",
            layout: SystemLayout::tiny(),
            warmup: 2,
            iters: 10,
        }]
    } else {
        vec![
            Case {
                label: "small",
                layout: SystemLayout::small(),
                warmup: 5,
                iters: 60,
            },
            Case {
                label: "medium",
                layout: SystemLayout::medium(),
                warmup: 3,
                iters: 25,
            },
        ]
    };

    let mut rows = Vec::new();
    for case in &cases {
        let sys = Generator::new(GeneratorConfig::new(case.layout).seed(7)).generate();
        let legacy = time_iterations(&sys, case.warmup, case.iters, |s, x, y, o1, o2| {
            legacy_aprod1(s, x, o1, threads);
            legacy_aprod2(s, y, o2, threads);
        });
        let pooled_backend = ChunkedBackend::new(Tuning::with_threads(threads));
        let pooled = time_iterations(&sys, case.warmup, case.iters, |s, x, y, o1, o2| {
            pooled_backend.aprod1(s, x, o1);
            pooled_backend.aprod2(s, y, o2);
        });
        let speedup = legacy / pooled;
        println!(
            "{:<8} rows={:<8} legacy {:>10.3} µs/iter   pooled {:>10.3} µs/iter   speedup {:.2}x",
            case.label,
            sys.n_rows(),
            1e6 * legacy,
            1e6 * pooled,
            speedup,
        );
        rows.push(serde_json::json!({
            "layout": case.label,
            "n_rows": sys.n_rows(),
            "n_cols": sys.n_cols(),
            "iterations": case.iters,
            "legacy_spawn_seconds_per_iter": legacy,
            "pooled_seconds_per_iter": pooled,
            "speedup_pooled_over_legacy": speedup,
        }));
    }

    let report = serde_json::json!({
        "bench": "executor_overhead",
        "threads": threads,
        "quick": quick,
        "backend": "chunked (owner-computes policy on the shared pool)",
        "baseline": "identical kernels, std::thread::scope spawn per call",
        "cases": rows,
    });
    write_json("results/bench/executor_overhead.json", &report);
    write_json("BENCH_executor.json", &report);
}

fn write_json(path: &str, json: &serde_json::Value) {
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
    }
    match std::fs::write(
        path,
        serde_json::to_string_pretty(json).expect("serializable"),
    ) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
