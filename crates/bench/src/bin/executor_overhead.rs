//! Executor-pool overhead study: per-iteration wall time of the pooled
//! launch path vs the legacy spawn-per-call pattern the backends used
//! before the [`gaia_backends::ExecutorPool`] refactor.
//!
//! The legacy baseline lives *here*, not in `gaia-backends`: it re-creates
//! the old chunked owner-computes backend with `std::thread::scope`
//! spawning fresh OS threads on every `aprod1`/`aprod2` call, which is
//! exactly the overhead the persistent pool eliminates. Keeping it in the
//! bench bin means no spawn-per-call code remains in any backend hot path.
//!
//! Timing is median-of-K with IQR dispersion (same [`gaia_bench::stats`]
//! summaries as the perf gate) at the host's available parallelism —
//! never a hardcoded thread count, because spawn-per-call overhead scales
//! with the threads actually spawned.
//!
//! Artifact: `results/bench/executor_overhead.json` (the committed
//! `BENCH_executor.json` is owned by `--bin gate -- --refresh` now).
//! Flags: `--quick` (CI smoke), `--threads N` (capped by the host),
//! `--repeats K` (default 5).

use std::time::Instant;

use gaia_backends::kernels;
use gaia_backends::launch::split_ranges;
use gaia_backends::{Backend, ChunkedBackend, Tuning};
use gaia_bench::stats::Summary;
use gaia_bench::{fatal, must_write_artifact};
use gaia_sparse::{Generator, GeneratorConfig, SparseSystem, SystemLayout};

/// Legacy `out += A x`: fresh scoped threads per call, one per row chunk.
fn legacy_aprod1(sys: &SparseSystem, x: &[f64], out: &mut [f64], threads: usize) {
    let ranges = split_ranges(sys.n_rows(), threads.max(1));
    // gaia-analyze: allow(thread-spawn): spawn-per-call *is* the legacy
    // baseline this benchmark measures against the pool.
    std::thread::scope(|scope| {
        let mut rest = out;
        for rows in ranges {
            let (mine, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            scope.spawn(move || kernels::aprod1_range(sys, x, rows, mine));
        }
    });
}

/// Legacy `out += Aᵀ y`: fresh scoped threads per call — star chunks for
/// the astrometric block, owner-computes column splits for attitude and
/// instrumental, one thread for the global sum.
fn legacy_aprod2(sys: &SparseSystem, y: &[f64], out: &mut [f64], threads: usize) {
    let c = sys.columns();
    let n_att = (c.instr - c.att) as usize;
    let n_instr = (c.glob - c.instr) as usize;
    let (astro, rest) = out.split_at_mut(c.att as usize);
    let (att, rest2) = rest.split_at_mut(n_att);
    let (instr, glob) = rest2.split_at_mut(n_instr);
    let n_stars = sys.layout().n_stars as usize;
    let n_rows = sys.n_rows();
    let n_obs = sys.n_obs_rows();
    let threads = threads.max(1);

    // gaia-analyze: allow(thread-spawn): spawn-per-call *is* the legacy
    // baseline this benchmark measures against the pool.
    std::thread::scope(|scope| {
        let mut astro_rest = astro;
        for stars in split_ranges(n_stars, threads) {
            let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
            astro_rest = tail;
            scope.spawn(move || kernels::aprod2_astro(sys, y, stars, mine));
        }
        let mut att_rest = att;
        for own in split_ranges(n_att, threads) {
            let (mine, tail) = att_rest.split_at_mut(own.len());
            att_rest = tail;
            scope.spawn(move || kernels::aprod2_att_owned(sys, y, 0..n_rows, own, mine));
        }
        let mut instr_rest = instr;
        for own in split_ranges(n_instr, threads) {
            let (mine, tail) = instr_rest.split_at_mut(own.len());
            instr_rest = tail;
            scope.spawn(move || kernels::aprod2_instr_owned(sys, y, 0..n_obs, own, mine));
        }
        if !glob.is_empty() {
            scope.spawn(move || kernels::aprod2_glob(sys, y, 0..n_obs, glob));
        }
    });
}

/// Per-repeat mean seconds of `aprod1`+`aprod2`, split per kernel, over
/// `repeats` timed repeats of `iters` iterations each (after warmup).
fn time_case<F1, F2>(
    sys: &SparseSystem,
    warmup: usize,
    iters: usize,
    repeats: usize,
    mut k1: F1,
    mut k2: F2,
) -> (Summary, Summary, Summary)
where
    F1: FnMut(&SparseSystem, &[f64], &mut [f64]),
    F2: FnMut(&SparseSystem, &[f64], &mut [f64]),
{
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
    let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut out1 = vec![0.0; sys.n_rows()];
    let mut out2 = vec![0.0; sys.n_cols()];
    for _ in 0..warmup {
        k1(sys, &x, &mut out1);
        k2(sys, &y, &mut out2);
    }
    let (mut s1, mut s2, mut si) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..repeats {
        let (mut a1, mut a2) = (0.0f64, 0.0f64);
        for _ in 0..iters {
            // gaia-analyze: allow(timing): per-kernel wall-clock is this
            // benchmark's deliverable; telemetry scopes time inside
            // kernels, this bin times the launch path itself.
            let t = Instant::now();
            k1(sys, &x, &mut out1);
            a1 += t.elapsed().as_secs_f64();
            // gaia-analyze: allow(timing): second half of the same
            // per-kernel measurement (aprod2 timed apart from aprod1).
            let t = Instant::now();
            k2(sys, &y, &mut out2);
            a2 += t.elapsed().as_secs_f64();
        }
        s1.push(a1 / iters as f64);
        s2.push(a2 / iters as f64);
        si.push((a1 + a2) / iters as f64);
    }
    // Keep the outputs observable so the work cannot be optimized away.
    assert!(out1.iter().chain(out2.iter()).all(|v| v.is_finite()));
    (
        Summary::from_samples(&s1),
        Summary::from_samples(&s2),
        Summary::from_samples(&si),
    )
}

struct Case {
    label: &'static str,
    layout: SystemLayout,
    warmup: usize,
    iters: usize,
}

fn summary_json(s: &Summary) -> serde_json::Value {
    serde_json::to_value(s).unwrap_or(serde_json::Value::Null)
}

fn main() {
    let mut quick = false;
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut threads = available;
    let mut repeats = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fatal("--threads needs a positive integer"));
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fatal("--repeats needs a positive integer"));
            }
            other => fatal(&format!(
                "unknown flag `{other}` (flags: --quick, --threads N, --repeats K)"
            )),
        }
    }
    // Effective budget: never more threads than the host actually has —
    // the whole point is measuring real spawn overhead, and a baseline
    // recorded at a fictitious thread count compares against nothing.
    let threads = threads.clamp(1, available);
    let repeats = repeats.max(1);
    println!(
        "executor_overhead: {threads} thread(s) (host parallelism {available}), \
         median-of-{repeats}{}",
        if quick { ", quick" } else { "" }
    );

    let cases: Vec<Case> = if quick {
        vec![Case {
            label: "tiny",
            layout: SystemLayout::tiny(),
            warmup: 2,
            iters: 10,
        }]
    } else {
        vec![
            Case {
                label: "small",
                layout: SystemLayout::small(),
                warmup: 5,
                iters: 30,
            },
            Case {
                label: "medium",
                layout: SystemLayout::medium(),
                warmup: 3,
                iters: 12,
            },
        ]
    };

    let mut rows = Vec::new();
    for case in &cases {
        let sys = Generator::new(GeneratorConfig::new(case.layout).seed(7)).generate();
        let (l1, l2, li) = time_case(
            &sys,
            case.warmup,
            case.iters,
            repeats,
            |s, x, o| legacy_aprod1(s, x, o, threads),
            |s, y, o| legacy_aprod2(s, y, o, threads),
        );
        let pooled_backend = ChunkedBackend::new(Tuning::with_threads(threads));
        let (p1, p2, pi) = time_case(
            &sys,
            case.warmup,
            case.iters,
            repeats,
            |s, x, o| pooled_backend.aprod1(s, x, o),
            |s, y, o| pooled_backend.aprod2(s, y, o),
        );
        let speedup = if pi.median_s > 0.0 {
            li.median_s / pi.median_s
        } else {
            1.0
        };
        println!(
            "{:<8} rows={:<8} legacy {:>10.3} µs/iter   pooled {:>10.3} µs/iter   speedup {:.2}x",
            case.label,
            sys.n_rows(),
            1e6 * li.median_s,
            1e6 * pi.median_s,
            speedup,
        );
        rows.push(serde_json::json!({
            "layout": case.label,
            "n_rows": sys.n_rows(),
            "n_cols": sys.n_cols(),
            "threads": threads,
            "iterations": case.iters,
            "legacy_spawn": serde_json::json!({
                "aprod1": summary_json(&l1),
                "aprod2": summary_json(&l2),
                "iteration": summary_json(&li),
            }),
            "pooled": serde_json::json!({
                "aprod1": summary_json(&p1),
                "aprod2": summary_json(&p2),
                "iteration": summary_json(&pi),
            }),
            "speedup_pooled_over_legacy": speedup,
        }));
    }

    let report = serde_json::json!({
        "schema": "gaia-bench-executor-overhead/v2",
        "threads": threads,
        "available_parallelism": available,
        "repeats": repeats,
        "quick": quick,
        "backend": "chunked (owner-computes policy on the shared pool)",
        "baseline": "identical kernels, std::thread::scope spawn per call",
        "cases": rows,
    });
    must_write_artifact("bench/executor_overhead.json", &report);
}
