//! Weak- and strong-scaling study (extension).
//!
//! The paper's predecessor (ref \[22\]) measured the weak scalability of
//! the CUDA and C++ PSTL ports on up to 256 Leonardo nodes; the paper
//! itself stays single-GPU ("bigger problems can be addressed using
//! multiple GPUs eventually on multiple nodes which is out of scope").
//! This harness regenerates that companion study with the scaling model:
//! per-rank compute stays constant under weak scaling while the
//! replicated-unknowns allreduce grows with the job, so efficiency decays
//! once the payload saturates the NIC.

use gaia_gpu_sim::scaling::{strong_scaling, weak_scaling, ClusterSpec};
use gaia_gpu_sim::{framework_by_name, platform_by_name};

fn main() {
    let cluster = ClusterSpec::leonardo();
    let a100 = platform_by_name("A100").expect("registry");
    let gpu_counts = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];

    println!(
        "weak scaling on {} (A100, 10 GB per GPU, ring allreduce {} GB/s NIC)",
        cluster.name, cluster.inter_node_bw_gbs
    );
    let mut artifacts = Vec::new();
    for fw_name in ["CUDA", "PSTL+V", "SYCL+ACPP"] {
        let fw = framework_by_name(fw_name).expect("registry");
        let Some(points) = weak_scaling(&fw, &a100, &cluster, 10.0, &gpu_counts) else {
            continue;
        };
        println!("\n{fw_name}:");
        println!(
            "  {:>6} {:>12} {:>12} {:>12} {:>10}",
            "GPUs", "iter [ms]", "compute", "comm", "efficiency"
        );
        for p in &points {
            println!(
                "  {:>6} {:>12.3} {:>12.3} {:>12.3} {:>9.1}%",
                p.n_gpus,
                1e3 * p.iteration_seconds,
                1e3 * p.compute_seconds,
                1e3 * p.comm_seconds,
                100.0 * p.efficiency
            );
        }
        artifacts.push(serde_json::json!({
            "framework": fw_name,
            "points": points.iter().map(|p| serde_json::json!({
                "gpus": p.n_gpus,
                "seconds": p.iteration_seconds,
                "efficiency": p.efficiency,
            })).collect::<Vec<_>>(),
        }));
    }
    gaia_bench::must_write_artifact("weak_scaling.json", &serde_json::json!(artifacts));

    println!("\nstrong scaling of the paper's 60 GB problem (does not fit one A100):");
    let cuda = framework_by_name("CUDA").expect("registry");
    let pts = strong_scaling(&cuda, &a100, &cluster, 60.0, &[1, 2, 4, 8, 16]);
    println!(
        "  {:>6} {:>12} {:>12} {:>10}",
        "GPUs", "iter [ms]", "comm [ms]", "efficiency"
    );
    for p in &pts {
        println!(
            "  {:>6} {:>12.3} {:>12.3} {:>9.1}%",
            p.n_gpus,
            1e3 * p.iteration_seconds,
            1e3 * p.comm_seconds,
            100.0 * p.efficiency
        );
    }
    println!(
        "\nShape reproduced from ref [22]: near-ideal weak scaling inside a node,\n\
         efficiency decay once the growing unknown-vector allreduce crosses the\n\
         NIC, the ceiling the predecessor paper projects toward exascale."
    );
}
