//! Preconditioning ablation: why the production LSQR is "customized and
//! preconditioned" (§III-B).
//!
//! The Gaia system's four parameter blocks aggregate wildly different
//! numbers of observations, so the column norms — and through them the
//! condition number seen by plain LSQR — are badly unbalanced. The Jacobi
//! column scaling equalizes them. This harness measures iterations to
//! convergence and the condition estimate with and without the
//! preconditioner across problem shapes, on a real backend.

use gaia_backends::AtomicBackend;
use gaia_lsqr::{solve, LsqrConfig};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    let shapes: Vec<(&str, SystemLayout)> = vec![
        ("tiny", SystemLayout::tiny()),
        ("small", SystemLayout::small()),
        (
            "wide-attitude",
            SystemLayout {
                n_stars: 150,
                obs_per_star: 30,
                n_deg_freedom_att: 256,
                n_instr_params: 64,
                n_glob_params: 1,
                n_constraint_rows: 12,
            },
        ),
        (
            "instrument-heavy",
            SystemLayout {
                n_stars: 150,
                obs_per_star: 30,
                n_deg_freedom_att: 32,
                n_instr_params: 400,
                n_glob_params: 1,
                n_constraint_rows: 8,
            },
        ),
    ];

    let backend = AtomicBackend::with_threads(4);
    println!(
        "{:<18} {:>8} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "shape", "rows", "cols", "iters (prec)", "iters (none)", "cond (prec)", "cond (none)"
    );
    let mut rows_json = Vec::new();
    for (name, layout) in shapes {
        let cfg = GeneratorConfig::new(layout)
            .seed(13)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-9 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let with = solve(
            &sys,
            &backend,
            &LsqrConfig::new().precondition(true).max_iters(50_000),
        );
        let without = solve(
            &sys,
            &backend,
            &LsqrConfig::new().precondition(false).max_iters(50_000),
        );
        println!(
            "{:<18} {:>8} {:>8} | {:>12} {:>12} | {:>12.3e} {:>12.3e}",
            name,
            sys.n_rows(),
            sys.n_cols(),
            with.iterations,
            without.iterations,
            with.acond,
            without.acond,
        );
        rows_json.push(serde_json::json!({
            "shape": name,
            "iterations_preconditioned": with.iterations,
            "iterations_plain": without.iterations,
            "acond_preconditioned": with.acond,
            "acond_plain": without.acond,
            "converged_preconditioned": with.stop.converged(),
            "converged_plain": without.stop.converged(),
        }));
    }
    gaia_bench::must_write_artifact("precond_ablation.json", &serde_json::json!(rows_json));
    println!(
        "\nThe column-scaled solver sees a near-unit condition number and\n\
         converges in a fraction of the iterations — the \"customized and\n\
         preconditioned\" design decision of §III-B quantified."
    );
}
