//! Chaos sweep: fault rate × recovery policy on a tiny system.
//!
//! Production AVU-GSR campaigns survive node loss and data corruption by
//! checkpoint/restart across CINECA allocations; this harness measures
//! the same story in miniature. For every (fault level, recovery policy)
//! cell it runs the resilient supervisor on a seeded [`FaultPlan`],
//! records what was injected and what recovery cost, and writes the
//! sweep to `results/chaos/sweep.json`.
//!
//! Exits non-zero if any cell fails to converge — every policy in the
//! sweep is recovery-capable (degrade floor), so non-convergence is a
//! defect, not chaos.
//!
//! Usage: `chaos [--seed S] [--ranks N]` (defaults: seed 7, 2 ranks).

use std::sync::Arc;
use std::time::Duration;

use gaia_backends::{Backend, SeqBackend};
use gaia_bench::sweep::{summary_block, SummaryRow};
use gaia_lsqr::resilient::{OnUnrecoverable, RecoveryPolicy, ResilienceOptions};
use gaia_lsqr::{solve_distributed, solve_resilient, LsqrConfig};
use gaia_mpi_sim::{install_quiet_panic_hook, FaultPlan, FaultSpec};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout};

fn system(seed: u64) -> SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate()
}

fn parse_args() -> (u64, usize) {
    let mut seed = 7u64;
    let mut ranks = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => seed = value("--seed").parse().expect("--seed: integer"),
            "--ranks" => ranks = value("--ranks").parse().expect("--ranks: integer"),
            other => {
                eprintln!("unknown flag {other}; usage: chaos [--seed S] [--ranks N]");
                std::process::exit(2);
            }
        }
    }
    (seed, ranks.max(1))
}

fn main() {
    install_quiet_panic_hook();
    let (seed, ranks) = parse_args();
    let sys = system(seed);
    let cfg = LsqrConfig::new();
    let reference = solve_distributed(&sys, ranks, &cfg);
    assert!(
        reference.stop.converged(),
        "fault-free reference must converge: {:?}",
        reference.stop
    );

    let fault_levels: [(&str, FaultSpec); 3] = [
        ("none", FaultSpec::none()),
        ("light", FaultSpec::light()),
        ("heavy", FaultSpec::heavy()),
    ];
    let policies: [(&str, RecoveryPolicy); 3] = [
        (
            "eager-checkpoint",
            RecoveryPolicy {
                max_retries: 4,
                backoff: Duration::ZERO,
                checkpoint_every: 2,
                on_unrecoverable: OnUnrecoverable::Degrade,
                ..RecoveryPolicy::default()
            },
        ),
        (
            "sparse-checkpoint",
            RecoveryPolicy {
                max_retries: 4,
                backoff: Duration::ZERO,
                checkpoint_every: 10,
                on_unrecoverable: OnUnrecoverable::Degrade,
                ..RecoveryPolicy::default()
            },
        ),
        (
            "restart-from-scratch",
            RecoveryPolicy {
                max_retries: 4,
                backoff: Duration::ZERO,
                checkpoint_every: 0,
                on_unrecoverable: OnUnrecoverable::Degrade,
                ..RecoveryPolicy::default()
            },
        ),
    ];

    println!(
        "chaos sweep: seed {seed}, {ranks} ranks, {} iterations fault-free",
        reference.iterations
    );
    println!(
        "  {:<8} {:<22} {:>5} {:>7} {:>8} {:>8} {:>7} {:>12}",
        "faults", "policy", "ok", "faults", "retries", "restores", "ranks", "max |Δx|"
    );

    let mut cells = Vec::new();
    let mut failures = 0usize;
    // One aggregate row per recovery policy, totalled across fault
    // levels — the shared `gaia-sweep-summary/v1` shape the overload
    // sweep also emits, so resilience diffs across PRs compare like
    // with like.
    let mut rows: Vec<SummaryRow> = policies
        .iter()
        .map(|(name, _)| SummaryRow {
            group: format!("policy={name}"),
            ..SummaryRow::default()
        })
        .collect();
    for (level_name, spec) in &fault_levels {
        for (policy_idx, (policy_name, policy)) in policies.iter().enumerate() {
            let plan = Arc::new(FaultPlan::new(seed, *spec));
            let result = solve_resilient(
                &sys,
                ranks,
                &cfg,
                |_| Box::new(SeqBackend) as Box<dyn Backend>,
                &ResilienceOptions {
                    policy: *policy,
                    faults: Some(plan.clone()),
                    collective_timeout: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            );
            let row = &mut rows[policy_idx];
            row.runs += 1;
            let cell = match result {
                Ok(report) => {
                    let converged = report.solution.stop.converged();
                    if !converged {
                        failures += 1;
                        row.failures += 1;
                    } else if report.final_ranks < ranks || report.telemetry.degradations > 0 {
                        row.degraded += 1;
                    } else {
                        row.converged += 1;
                    }
                    row.recoveries += report.telemetry.retries;
                    let max_dx = report
                        .solution
                        .x
                        .iter()
                        .zip(&reference.x)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    println!(
                        "  {:<8} {:<22} {:>5} {:>7} {:>8} {:>8} {:>7} {:>12.3e}",
                        level_name,
                        policy_name,
                        if converged { "yes" } else { "NO" },
                        report.fault_events.len(),
                        report.telemetry.retries,
                        report.telemetry.checkpoint_restores,
                        report.final_ranks,
                        max_dx,
                    );
                    serde_json::json!({
                        "faults": level_name,
                        "policy": policy_name,
                        "converged": converged,
                        "stop": format!("{:?}", report.solution.stop),
                        "iterations": report.solution.iterations,
                        "attempts": report.attempts.len(),
                        "injected": report.fault_events.len(),
                        "rank_panics": report.telemetry.rank_panics,
                        "bit_flips": report.telemetry.bit_flips,
                        "straggles": report.telemetry.straggles,
                        "breakdowns": report.telemetry.breakdowns,
                        "retries": report.telemetry.retries,
                        "checkpoint_restores": report.telemetry.checkpoint_restores,
                        "degradations": report.telemetry.degradations,
                        "recovery_seconds": report.telemetry.recovery_seconds,
                        "final_ranks": report.final_ranks,
                        "max_abs_dx": max_dx,
                    })
                }
                Err(err) => {
                    failures += 1;
                    row.failures += 1;
                    println!("  {:<8} {:<22} {:>5}  {err}", level_name, policy_name, "NO");
                    serde_json::json!({
                        "faults": level_name,
                        "policy": policy_name,
                        "converged": false,
                        "error": err.to_string(),
                        "attempts": err.attempts.len(),
                    })
                }
            };
            cells.push(cell);
        }
    }

    let artifact = serde_json::json!({
        "seed": seed,
        "ranks": ranks,
        "reference_iterations": reference.iterations,
        "cells": cells,
        "summary": summary_block(&rows),
    });
    gaia_bench::must_write_artifact("chaos/sweep.json", &artifact);

    if failures > 0 {
        eprintln!("{failures} chaos cell(s) failed to converge");
        std::process::exit(1);
    }
}
