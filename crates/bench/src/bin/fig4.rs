//! Fig. 4 a/b/c: average LSQR iteration time across architectures and
//! programming models for the 10, 30, and 60 GB problems.

use gaia_bench::{must_write_artifact, platform_set, simulate_measurements, PROBLEM_SIZES_GB};
use gaia_p3::{plot, report};

fn main() {
    for gb in PROBLEM_SIZES_GB {
        let (_, set) = simulate_measurements(gb);
        let platforms = platform_set(gb);
        println!("================ Fig. 4 — {gb} GB problem ================");
        println!("{}", report::times_table(&set, &platforms));

        for platform in &platforms {
            let entries: Vec<(String, f64)> = set
                .apps()
                .iter()
                .filter_map(|a| set.time(a, platform).map(|t| (a.clone(), t)))
                .collect();
            println!(
                "{}",
                plot::bar_chart(
                    &format!("iteration time on {platform} [s] ({gb} GB)"),
                    &entries,
                    40,
                )
            );
        }

        // SVG: grouped bars, frameworks within platform groups (log scale
        // as in the paper's Fig. 4).
        let series: Vec<(String, String, Vec<Option<f64>>)> = set
            .apps()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                (
                    a.clone(),
                    gaia_p3::svg::PALETTE[i % gaia_p3::svg::PALETTE.len()].to_string(),
                    platforms.iter().map(|p| set.time(a, p)).collect(),
                )
            })
            .collect();
        let svg = gaia_p3::svg::bar_chart_grouped(
            &format!("Fig. 4 — average iteration time [s], {gb} GB"),
            &platforms,
            &series,
        );
        gaia_bench::must_write_text_artifact(&format!("fig4_{}gb.svg", gb as u64), &svg);

        let json = serde_json::json!({
            "gb": gb,
            "platforms": platforms,
            "times": set.apps().iter().map(|a| serde_json::json!({
                "app": a,
                "seconds": platforms.iter()
                    .map(|p| set.time(a, p))
                    .collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        });
        must_write_artifact(&format!("fig4_{}gb.json", gb as u64), &json);
    }
    println!(
        "Paper shape: newer platforms deliver lower iteration times across all\n\
         sizes; per platform the fastest framework is CUDA (T4, A100), HIP\n\
         (V100, H100), or OMP+V (MI250X); the MI250X trails A100/H100 despite\n\
         its bandwidth because of non-coalesced accesses."
    );
}
