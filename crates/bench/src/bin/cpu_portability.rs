//! This repository's own *measured* portability study: the real Rust
//! backends play the role of the paper's frameworks, and CPU parallelism
//! budgets (thread counts) play the role of the platforms. Everything
//! here is wall-clock measurement of real kernels — no simulation.
//!
//! The same Pennycook analysis applies: a backend that is fastest at one
//! thread count but scales poorly (e.g. lock-striped) gets a low `P`,
//! while a uniformly-close strategy (privatize + reduce) scores high —
//! the CPU mirror of the HIP/SYCL-vs-PSTL story.

use std::time::Instant;

use gaia_backends::{backend_by_name, Backend};
use gaia_lsqr::{solve, LsqrConfig};
use gaia_p3::{report, Cascade, MeasurementSet, Normalization};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

const ITERATIONS: usize = 20;

fn measure(backend: &dyn Backend, sys: &gaia_sparse::SparseSystem) -> f64 {
    // Warm-up solve, then the timed fixed-iteration run, as in the
    // artifact's 100-iteration timing protocol (scaled down for CI).
    let cfg = LsqrConfig::fixed_iterations(ITERATIONS);
    let _ = solve(sys, backend, &cfg);
    // gaia-analyze: allow(timing): end-to-end wall-clock is this
    // benchmark's deliverable; telemetry scopes time kernels, not runs.
    let start = Instant::now();
    let sol = solve(sys, backend, &cfg);
    assert_eq!(sol.iterations, ITERATIONS);
    start.elapsed().as_secs_f64() / ITERATIONS as f64
}

fn main() {
    let layout = SystemLayout::medium();
    let sys = Generator::new(
        GeneratorConfig::new(layout)
            .seed(7)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-6 }),
    )
    .generate();
    println!(
        "measured CPU portability study: {} rows x {} cols, {} LSQR iterations per cell\n",
        sys.n_rows(),
        sys.n_cols(),
        ITERATIONS
    );

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut budgets = vec![1usize, 2, 4];
    if max_threads > 4 {
        budgets.push(max_threads);
    }
    budgets.dedup();

    // rayon's global pool is fixed at startup, so the tuning-oblivious
    // backend (like PSTL) uses whatever the runtime decides — we still
    // record it per budget, which is exactly its handicap in this study.
    let strategies = [
        "seq",
        "chunked",
        "atomic",
        "casloop",
        "replicated",
        "striped",
        "streamed",
        "rayon",
        "hybrid",
    ];

    let mut set = MeasurementSet::new();
    for budget in &budgets {
        let platform = format!("threads-{budget}");
        for name in strategies {
            let backend = backend_by_name(name, *budget).expect("registry");
            let secs = measure(&backend, &sys);
            set.record(name, &platform, secs);
            println!("  {name:<11} on {platform:<11} {secs:.6} s/iter");
        }
    }

    let platforms: Vec<String> = budgets.iter().map(|b| format!("threads-{b}")).collect();
    let matrix = set.efficiencies(Normalization::PlatformBest);
    println!("\n{}", report::efficiency_table(&matrix, &platforms));
    println!("{}", report::pp_table(&matrix, &platforms));
    for app in matrix.apps() {
        let cascade = Cascade::build(&matrix, app, &platforms);
        print!("{}", report::cascade_table(&cascade));
    }

    gaia_bench::must_write_artifact(
        "cpu_portability.json",
        &serde_json::json!({
            "iterations": ITERATIONS,
            "budgets": budgets,
            "pp": matrix.apps().iter().map(|a| {
                serde_json::json!({"backend": a, "pp": matrix.pp(a, &platforms)})
            }).collect::<Vec<_>>(),
        }),
    );

    // Per-kernel telemetry of representative strategies at the largest
    // budget: where inside aprod1/aprod2 each conflict strategy spends its
    // time (JSON artifacts under results/telemetry/).
    let top_budget = *budgets.last().unwrap_or(&4);
    println!("\nper-kernel telemetry at threads-{top_budget}:\n");
    for name in ["seq", "atomic", "replicated", "streamed"] {
        let report = gaia_bench::measured_run(
            &format!("cpu_portability_{name}"),
            name,
            top_budget,
            &sys,
            ITERATIONS,
        );
        println!("{}:", report.backend);
        print!("{}", gaia_telemetry::kernel_table(&report.telemetry));
        println!();
    }
}
