//! §VI forward projection: rerun the portability study with two
//! next-generation platforms (H200-class, MI300A-class) added to the set.
//! The point of a portable port is the machine you have not bought yet —
//! this harness quantifies which of today's ports carries over.

use gaia_gpu_sim::whatif::extended_platforms;
use gaia_gpu_sim::{all_frameworks, iteration_time, SimConfig};
use gaia_p3::{report, Cascade, MeasurementSet, Normalization};
use gaia_sparse::SystemLayout;

fn main() {
    let platforms = extended_platforms();
    let names: Vec<String> = platforms.iter().map(|p| p.name.clone()).collect();
    println!("extended platform set: {names:?}\n");

    for gb in [10.0, 60.0] {
        let layout = SystemLayout::from_gb(gb);
        let mut set = MeasurementSet::new();
        for fw in all_frameworks() {
            for p in &platforms {
                if let Some(b) = iteration_time(&layout, &fw, p, &SimConfig::default()) {
                    set.record(&fw.name, &p.name, b.seconds);
                }
            }
        }
        let supported: Vec<String> = names
            .iter()
            .filter(|n| set.platform_best(n).is_some())
            .cloned()
            .collect();
        let matrix = set.efficiencies(Normalization::PlatformBest);
        println!("=== {gb} GB over {} platforms ===", supported.len());
        println!("{}", report::pp_table(&matrix, &supported));
        for app in ["HIP", "SYCL+ACPP", "CUDA"] {
            let c = Cascade::build(&matrix, app, &supported);
            print!("{}", report::cascade_table(&c));
        }
        println!();
    }
    println!(
        "Shape: the high-P frameworks of the paper (HIP, SYCL+ACPP) carry\n\
         their scores onto the new machines unchanged; CUDA's investment\n\
         remains locked to one vendor (P = 0 on any mixed set) — the §VI\n\
         argument for portability, projected forward."
    );
}
