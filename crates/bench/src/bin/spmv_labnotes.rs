//! §V-B MI250X cross-check: "we take similar SpMV kernels, implemented
//! using HIP by amd-lab-notes, and test them on matrix sizes similar to
//! our own. We tested them on A100 and MI250X architectures. Indeed, the
//! performance was similar to the one obtained by our AVU-GSR solver."
//!
//! A generic CSR SpMV over the same matrix moves strictly more index
//! metadata than the structure-aware `aprod1`, and on both A100 and
//! MI250X its modeled time tracks the AVU-GSR kernels — supporting the
//! paper's conclusion that the MI250X shortfall is a property of the
//! access pattern (non-coalesced gathers), not of the port.

use gaia_gpu_sim::workload::{csr_spmv_kernel, iteration_kernels, Phase};
use gaia_gpu_sim::{framework_by_name, platform_by_name};
use gaia_sparse::SystemLayout;

fn main() {
    let layout = SystemLayout::from_gb(10.0);
    let hip = framework_by_name("HIP").expect("registry");

    println!("structured aprod1 vs generic CSR SpMV (HIP, 10 GB matrix)");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>14}",
        "platform", "aprod1 [s]", "csr spmv [s]", "csr/aprod1", "eff BW [GB/s]"
    );
    let mut rows = Vec::new();
    for name in ["A100", "MI250X"] {
        let p = platform_by_name(name).expect("registry");
        // Effective bandwidth of the tuned HIP kernels on this platform.
        let bw = p.bw_bytes_per_sec() * p.coalescing * hip.codegen_on(&p);
        let aprod1_bytes: u64 = iteration_kernels(&layout)
            .iter()
            .filter(|k| k.phase == Phase::Aprod1)
            .map(|k| k.bytes)
            .sum();
        let csr = csr_spmv_kernel(&layout);
        let t_aprod1 = aprod1_bytes as f64 / bw;
        let t_csr = csr.bytes as f64 / bw;
        println!(
            "{:<8} {:>14.4} {:>14.4} {:>12.3} {:>14.0}",
            name,
            t_aprod1,
            t_csr,
            t_csr / t_aprod1,
            bw / 1e9
        );
        rows.push(serde_json::json!({
            "platform": name,
            "aprod1_seconds": t_aprod1,
            "csr_seconds": t_csr,
            "effective_bw_gbs": bw / 1e9,
        }));
    }
    gaia_bench::must_write_artifact("spmv_labnotes.json", &serde_json::json!(rows));

    let a100 = platform_by_name("A100").expect("registry");
    let mi = platform_by_name("MI250X").expect("registry");
    let ratio = (a100.bw_gbs * a100.coalescing) / (mi.bw_gbs * mi.coalescing);
    println!(
        "\nA100/MI250X effective-bandwidth ratio for this access pattern: {ratio:.2}x\n\
         (peak-bandwidth ratio is only {:.2}x — the gap is the §V-B\n\
         non-coalescing effect, reproduced by the generic SpMV too).",
        a100.bw_gbs / mi.bw_gbs
    );

    // Measured counterpart on this machine's CPU: structured storage vs a
    // real CSR mirror, same matrix, same kernels-per-iteration budget.
    use gaia_backends::{Backend, CsrBackend, SeqBackend};
    use gaia_sparse::{Generator, GeneratorConfig};
    use std::time::Instant;
    let small = SystemLayout::medium();
    let sys = Generator::new(GeneratorConfig::new(small).seed(3)).generate();
    let csr = CsrBackend::for_system(&sys, 1);
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut out = vec![0.0f64; sys.n_rows()];
    let reps = 20;
    let time_it = |backend: &dyn Backend, out: &mut Vec<f64>| {
        // Warm-up call, then the timed loop.
        backend.aprod1(&sys, &x, out);
        // gaia-analyze: allow(timing): end-to-end wall-clock is this
        // benchmark's deliverable; telemetry scopes time kernels, not runs.
        let t0 = Instant::now();
        for _ in 0..reps {
            backend.aprod1(&sys, &x, out);
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let t_structured = time_it(&SeqBackend, &mut out);
    let t_csr = time_it(&csr, &mut out);
    let structured_bytes = gaia_sparse::footprint::device_bytes(&sys.layout().clone());
    println!(
        "\nmeasured on this CPU ({} rows): structured aprod1 {:.3} ms, CSR {:.3} ms ({:.2}x)\n\
         storage: structured {:.1} MB vs CSR {:.1} MB ({:.2}x more metadata)",
        sys.n_rows(),
        1e3 * t_structured,
        1e3 * t_csr,
        t_csr / t_structured,
        structured_bytes as f64 / 1e6,
        csr.storage_bytes() as f64 / 1e6,
        csr.storage_bytes() as f64 / structured_bytes as f64,
    );
}
