//! §V-B kernel-tuning ablation: "we tuned the parameters of the CUDA,
//! HIP, and SYCL kernels for each platform, achieving up to 40% reduction
//! in iteration time" — and the PSTL corollary: the runtime default of
//! 256 threads per block is near-optimal on A100/H100 but costly on the
//! T4/V100, whose optimum is 32.

use gaia_gpu_sim::occupancy::TPB_RANGE;
use gaia_gpu_sim::tuner::tune;
use gaia_gpu_sim::{all_platforms, framework_by_name, iteration_time, occupancy, SimConfig};
use gaia_sparse::SystemLayout;

fn main() {
    let layout = SystemLayout::from_gb(10.0);

    println!("kernel tuning sweep (10 GB problem), untuned default = 1024 tpb");
    println!(
        "{:<12} {:<8} {:>9} {:>12} {:>12} {:>10}",
        "framework", "platform", "best tpb", "tuned [s]", "default [s]", "reduction"
    );
    let mut rows = Vec::new();
    for fw_name in ["CUDA", "HIP", "SYCL+ACPP", "OMP+V"] {
        let fw = framework_by_name(fw_name).expect("registry");
        for p in all_platforms() {
            let Some(r) = tune(&layout, &fw, &p, 1024) else {
                continue;
            };
            println!(
                "{:<12} {:<8} {:>9} {:>12.4} {:>12.4} {:>9.1}%",
                r.framework,
                r.platform,
                r.best_tpb,
                r.best_seconds,
                r.default_seconds,
                100.0 * r.reduction()
            );
            rows.push(serde_json::json!({
                "framework": r.framework,
                "platform": r.platform,
                "best_tpb": r.best_tpb,
                "reduction": r.reduction(),
            }));
        }
    }
    gaia_bench::must_write_artifact("tuning_ablation.json", &serde_json::json!(rows));

    println!("\nPSTL's fixed 256 tpb: occupancy efficiency per platform");
    println!(
        "{:<8} {:>8} {}",
        "platform",
        "opt tpb",
        TPB_RANGE
            .iter()
            .map(|t| format!("{t:>8}"))
            .collect::<String>()
    );
    for p in all_platforms() {
        let cells: String = TPB_RANGE
            .iter()
            .map(|&tpb| format!("{:>8.3}", occupancy::occupancy_efficiency(&p, tpb)))
            .collect();
        println!("{:<8} {:>8} {}", p.name, p.opt_tpb, cells);
    }

    // PSTL iteration-time penalty vs a hypothetical tunable PSTL.
    println!("\nPSTL+ACPP: fixed-256 vs hypothetically tuned (10 GB):");
    let pstl = framework_by_name("PSTL+ACPP").expect("registry");
    for p in all_platforms() {
        let fixed = iteration_time(&layout, &pstl, &p, &SimConfig::default());
        let tuned = iteration_time(
            &layout,
            &pstl,
            &p,
            &SimConfig {
                tpb_override: Some(p.opt_tpb),
            },
        );
        if let (Some(f), Some(t)) = (fixed, tuned) {
            println!(
                "  {:<8} fixed {:.4}s  tuned {:.4}s  executor gain would be {:.1}%",
                p.name,
                f.seconds,
                t.seconds,
                100.0 * (1.0 - t.seconds / f.seconds)
            );
        }
    }
    println!(
        "\nPaper: \"the C++26 executors proposal ... will potentially allow to\n\
         set explicit kernel parameters and, hence, reduce the observed\n\
         performance gap among the platforms.\""
    );
}
