//! Profiler-style timeline view (the simulator's `nsys`/`rocprof`
//! substitute): where one modeled iteration spends its time, per
//! framework, with the stream overlap of the `aprod2` kernels visible.
//!
//! Usage: `cargo run -p gaia-bench --bin profile [platform] [GB]`

use gaia_gpu_sim::{all_frameworks, iteration_time, platform_by_name, timeline, SimConfig};
use gaia_sparse::SystemLayout;

fn main() {
    let mut args = std::env::args().skip(1);
    let platform_name = args.next().unwrap_or_else(|| "H100".to_string());
    let gb: f64 = args.next().map(|a| a.parse().expect("GB")).unwrap_or(10.0);
    let Some(platform) = platform_by_name(&platform_name) else {
        eprintln!("unknown platform {platform_name}");
        std::process::exit(1);
    };
    let layout = SystemLayout::from_gb(gb);
    println!(
        "modeled iteration timeline on {} ({gb} GB problem)\n",
        platform.name
    );
    for fw in all_frameworks() {
        let Some(b) = iteration_time(&layout, &fw, &platform, &SimConfig::default()) else {
            println!("{}: not supported here\n", fw.name);
            continue;
        };
        println!("{}:", fw.name);
        print!("{}", timeline::render(&b, fw.streams, 64));
        if fw.streams {
            if let Some(sched) =
                gaia_gpu_sim::model::aprod2_fluid_schedule(&layout, &fw, &platform)
            {
                print!("{}", timeline::render_fluid(&sched, 64));
            }
        }
        println!();
    }
    println!(
        "The aprod products dominate every framework's iteration, matching the\n\
         paper's profiler finding (§V-A); stream frameworks collapse the four\n\
         aprod2 kernels into overlapped lanes."
    );
}
