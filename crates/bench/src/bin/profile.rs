//! Profiler-style timeline view (the simulator's `nsys`/`rocprof`
//! substitute): where one modeled iteration spends its time, per
//! framework, with the stream overlap of the `aprod2` kernels visible —
//! followed by *measured* per-kernel telemetry of the real CPU backends
//! (artifacts in `results/telemetry/`).
//!
//! Usage: `cargo run -p gaia-bench --bin profile [platform] [GB]`

use gaia_bench::measured_run;
use gaia_gpu_sim::{all_frameworks, iteration_time, platform_by_name, timeline, SimConfig};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

/// Real backends profiled in the measured section.
const MEASURED_BACKENDS: [&str; 4] = ["seq", "atomic", "replicated", "streamed"];
const MEASURED_ITERATIONS: usize = 20;

fn main() {
    let mut args = std::env::args().skip(1);
    let platform_name = args.next().unwrap_or_else(|| "H100".to_string());
    let gb: f64 = args.next().map(|a| a.parse().expect("GB")).unwrap_or(10.0);
    let Some(platform) = platform_by_name(&platform_name) else {
        eprintln!("unknown platform {platform_name}");
        std::process::exit(1);
    };
    let layout = SystemLayout::from_gb(gb);
    println!(
        "modeled iteration timeline on {} ({gb} GB problem)\n",
        platform.name
    );
    for fw in all_frameworks() {
        let Some(b) = iteration_time(&layout, &fw, &platform, &SimConfig::default()) else {
            println!("{}: not supported here\n", fw.name);
            continue;
        };
        println!("{}:", fw.name);
        print!("{}", timeline::render(&b, fw.streams, 64));
        if fw.streams {
            if let Some(sched) = gaia_gpu_sim::model::aprod2_fluid_schedule(&layout, &fw, &platform)
            {
                print!("{}", timeline::render_fluid(&sched, 64));
            }
        }
        println!();
    }
    println!(
        "The aprod products dominate every framework's iteration, matching the\n\
         paper's profiler finding (§V-A); stream frameworks collapse the four\n\
         aprod2 kernels into overlapped lanes.\n"
    );

    // ---- measured per-kernel telemetry of the real backends ----------
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let sys = Generator::new(
        GeneratorConfig::new(SystemLayout::small())
            .seed(9)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-6 }),
    )
    .generate();
    println!(
        "measured per-kernel breakdown ({} rows x {} cols, {} LSQR iterations, {} threads):\n",
        sys.n_rows(),
        sys.n_cols(),
        MEASURED_ITERATIONS,
        threads
    );
    if !gaia_telemetry::is_enabled() {
        println!("(telemetry feature disabled — tables will be empty)\n");
    }
    for name in MEASURED_BACKENDS {
        let report = measured_run(
            &format!("profile_{name}"),
            name,
            threads,
            &sys,
            MEASURED_ITERATIONS,
        );
        println!(
            "{} — {:.3} ms/iter",
            report.backend,
            1e3 * report.mean_iteration_seconds()
        );
        print!("{}", gaia_telemetry::kernel_table(&report.telemetry));
        println!();
    }
}
