//! Calibration inspector: prints the modeled time/efficiency/P grids for
//! the three paper problem sizes. Used while fitting the simulator
//! constants; kept as a development tool.

use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_p3::{report, MeasurementSet, Normalization};
use gaia_sparse::SystemLayout;

fn main() {
    for gb in [10.0, 30.0, 60.0] {
        let layout = SystemLayout::from_gb(gb);
        let mut set = MeasurementSet::new();
        for fw in all_frameworks() {
            for p in all_platforms() {
                if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                    set.record(&fw.name, &p.name, b.seconds);
                }
            }
        }
        let platforms: Vec<String> = set.platforms();
        let m = set.efficiencies(Normalization::PlatformBest);
        println!("=== {gb} GB ===");
        println!("{}", report::times_table(&set, &platforms));
        println!("{}", report::efficiency_table(&m, &platforms));
        println!("{}", report::pp_table(&m, &platforms));
    }
}
