//! The perf regression gate: measure the pinned backend × layout grid
//! (median-of-K, per-kernel) and compare it against the committed
//! `BENCH_executor.json` baseline with noise-aware relative bands.
//!
//! ```text
//! cargo run --release -p gaia-bench --bin gate            # compare, exit 1 on regression
//! cargo run --release -p gaia-bench --bin gate -- --refresh   # re-pin baselines + REPORT.md
//! ```
//!
//! Flags:
//!   --refresh          rewrite the baseline (and regenerate results/REPORT.md
//!                      with the gate grid + P-metric cascade appended)
//!   --quick            CI smoke: drop the `medium` layout, halve iterations
//!   --threads N        thread budget (capped by available_parallelism; default: all)
//!   --repeats K        timing repeats per cell (default 7, quick 5; --refresh needs ≥ 5)
//!   --band F           override every cell's threshold fraction (e.g. 2.0 in CI)
//!   --widen F          noise-widening multiplier on relative IQR (default 1.0)
//!   --baseline PATH    baseline file (default: <workspace root>/BENCH_executor.json)
//!   --backends a,b,c   subset of the pinned backend set
//!   --layouts a,b      subset of tiny,small,medium
//!
//! Exit codes: 0 pass, 1 regression, 2 baseline unusable (missing / wrong
//! schema / unreadable — the message says how to refresh).

use std::path::PathBuf;

use gaia_bench::gate::measure::{measure_grid, GridSpec};
use gaia_bench::gate::{
    compare_grid, delta_table, pp_json, report_section, Baseline, CellRecord, BASELINE_FILE,
    GATE_BACKENDS, GATE_LAYOUTS, SCHEMA,
};
use gaia_bench::{fatal, must_write_artifact, must_write_text_artifact, report_gen};

/// Default per-cell threshold stamped into refreshed baselines: 35 %
/// (doubled for `tiny` by the measurer) — wide enough for shared-runner
/// noise at these microsecond scales, tight enough to catch the 2–10×
/// cliffs a broken launch path causes.
const DEFAULT_THRESHOLD: f64 = 0.35;

struct Cli {
    refresh: bool,
    quick: bool,
    threads: usize,
    available: usize,
    repeats: usize,
    band: Option<f64>,
    widen: f64,
    baseline: PathBuf,
    backends: Vec<String>,
    layouts: Vec<String>,
}

fn parse_cli() -> Cli {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cli = Cli {
        refresh: false,
        quick: false,
        threads: available,
        available,
        repeats: 0, // resolved after --quick is known
        band: None,
        widen: 1.0,
        baseline: gaia_bench::workspace_root().join(BASELINE_FILE),
        backends: GATE_BACKENDS.iter().map(|s| (*s).to_owned()).collect(),
        layouts: GATE_LAYOUTS.iter().map(|s| (*s).to_owned()).collect(),
    };
    let mut args = std::env::args().skip(1);
    let mut repeats: Option<usize> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fatal(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--refresh" => cli.refresh = true,
            "--quick" => cli.quick = true,
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| fatal("--threads needs a positive integer"));
                cli.threads = n.max(1);
            }
            "--repeats" => {
                repeats = Some(
                    value("--repeats")
                        .parse()
                        .unwrap_or_else(|_| fatal("--repeats needs a positive integer")),
                );
            }
            "--band" => {
                cli.band = Some(
                    value("--band")
                        .parse()
                        .unwrap_or_else(|_| fatal("--band needs a fraction, e.g. 0.35")),
                );
            }
            "--widen" => {
                cli.widen = value("--widen")
                    .parse()
                    .unwrap_or_else(|_| fatal("--widen needs a number, e.g. 1.0"));
            }
            "--baseline" => cli.baseline = PathBuf::from(value("--baseline")),
            "--backends" => {
                cli.backends = value("--backends")
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--layouts" => {
                cli.layouts = value("--layouts")
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other => fatal(&format!(
                "unknown flag `{other}` (see --bin gate source header)"
            )),
        }
    }
    // The effective budget is capped by the host — a baseline recorded
    // with more threads than exist would pin launch overhead that this
    // machine can never reproduce.
    cli.threads = cli.threads.min(cli.available);
    if cli.quick {
        cli.layouts.retain(|l| l != "medium");
    }
    cli.repeats = repeats.unwrap_or(if cli.quick { 5 } else { 7 });
    if cli.repeats == 0 {
        fatal("--repeats needs a positive integer");
    }
    cli
}

fn main() {
    let cli = parse_cli();
    if cli.refresh && cli.repeats < 5 {
        fatal(&format!(
            "--refresh with --repeats {} refused: committed baselines need \
             median-of-K with K >= 5 for a usable IQR",
            cli.repeats
        ));
    }

    let spec = GridSpec {
        backends: cli.backends.clone(),
        layouts: cli.layouts.clone(),
        threads: cli.threads,
        repeats: cli.repeats,
        default_threshold_frac: DEFAULT_THRESHOLD,
        quick: cli.quick,
    };
    println!(
        "gate: measuring {} backend(s) x {} layout(s), {} thread(s) \
         (host parallelism {}), median-of-{}{}",
        spec.backends.len(),
        spec.layouts.len(),
        spec.threads,
        cli.available,
        spec.repeats,
        if cli.quick { ", quick" } else { "" },
    );
    let cells = measure_grid(&spec).unwrap_or_else(|e| fatal(&e));

    if cli.refresh {
        refresh(&cli, cells);
    } else {
        compare(&cli, cells);
    }
}

/// `--refresh`: rewrite the baseline, the P-metric artifact, and
/// `results/REPORT.md` (with the gate section appended).
fn refresh(cli: &Cli, cells: Vec<CellRecord>) {
    let baseline = Baseline {
        schema: SCHEMA.to_owned(),
        note: format!(
            "Perf-gate baseline ({SCHEMA}): median-of-{} per-kernel wall times \
             of the pinned backend x layout grid. Regenerate on this machine with \
             `cargo run --release -p gaia-bench --bin gate -- --refresh`; compare \
             with `--bin gate` (exit 1 = regression).",
            cli.repeats
        ),
        threads: cli.threads as u64,
        available_parallelism: cli.available as u64,
        repeats: cli.repeats as u64,
        default_threshold_frac: DEFAULT_THRESHOLD,
        cells,
    };
    baseline
        .save(&cli.baseline)
        .unwrap_or_else(|e| fatal(&format!("cannot write {}: {e}", cli.baseline.display())));
    println!("[artifact] {}", cli.baseline.display());

    must_write_artifact("bench/gate_pp.json", &pp_json(&baseline.cells));
    let section = report_section(&baseline.cells, baseline.threads, baseline.repeats);
    let md = report_gen::reproduction_report(Some(&section));
    must_write_text_artifact("REPORT.md", &md);
    println!(
        "gate: baseline refreshed ({} cells); REPORT.md regenerated",
        baseline.cells.len()
    );
}

/// Compare mode: verdict table to stdout + `results/bench/gate_delta.txt`
/// and `gate_report.json`; exit 1 on regression, 2 on unusable baseline.
fn compare(cli: &Cli, cells: Vec<CellRecord>) {
    let baseline = match Baseline::load(&cli.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let outcome = compare_grid(&baseline, &cells, cli.threads as u64, cli.band, cli.widen);
    gaia_telemetry::record_gate(&gaia_telemetry::GateCell {
        cells_compared: outcome.deltas.len() as u64 / 3,
        regressions: outcome.regressions as u64,
        improvements: outcome.improvements as u64,
        new_cells: outcome.new_cells.len() as u64,
        ..Default::default()
    });

    let table = delta_table(&outcome, &baseline);
    print!("{table}");
    must_write_text_artifact("bench/gate_delta.txt", &table);
    let report = serde_json::json!({
        "schema": "gaia-bench-gate-report/v1",
        "baseline_file": cli.baseline.display().to_string(),
        "threads": cli.threads,
        "available_parallelism": cli.available,
        "repeats": cli.repeats,
        "band_override": cli.band,
        "noise_widen": cli.widen,
        "quick": cli.quick,
        "passed": outcome.passed(),
        "regressions": outcome.regressions,
        "improvements": outcome.improvements,
        "new_cells": outcome.new_cells.len(),
        "deltas": outcome.deltas.iter().map(|d| serde_json::json!({
            "backend": d.backend,
            "layout": d.layout,
            "metric": d.metric,
            "baseline_median_s": d.baseline.median_s,
            "current_median_s": d.current.median_s,
            "ratio": d.cmp.ratio,
            "allowed_frac": d.cmp.allowed_frac,
            "regression": d.cmp.regression,
            "improvement": d.cmp.improvement,
        })).collect::<Vec<_>>(),
        "telemetry": serde_json::to_value(gaia_telemetry::snapshot())
            .unwrap_or(serde_json::Value::Null),
    });
    must_write_artifact("bench/gate_report.json", &report);
    if !outcome.passed() {
        std::process::exit(1);
    }
}
