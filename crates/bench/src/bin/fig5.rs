//! Fig. 5 a/b/c: application efficiency across platforms and programming
//! frameworks for the 10, 30, and 60 GB problems.

use gaia_bench::{must_write_artifact, platform_set, simulate_measurements, PROBLEM_SIZES_GB};
use gaia_p3::{plot, report, Normalization};

fn main() {
    for gb in PROBLEM_SIZES_GB {
        let (_, set) = simulate_measurements(gb);
        let platforms = platform_set(gb);
        let matrix = set.efficiencies(Normalization::PlatformBest);
        println!("================ Fig. 5 — {gb} GB problem ================");
        println!("{}", report::efficiency_table(&matrix, &platforms));

        for platform in &platforms {
            let entries: Vec<(String, f64)> = matrix
                .apps()
                .iter()
                .filter_map(|a| matrix.efficiency(a, platform).map(|e| (a.clone(), e)))
                .collect();
            println!(
                "{}",
                plot::bar_chart(
                    &format!("application efficiency on {platform} ({gb} GB)"),
                    &entries,
                    40,
                )
            );
        }
        print!("{}", report::efficiency_csv(&matrix, &platforms));
        // SVG: one line per framework across the platform axis.
        let series: Vec<(String, String, Vec<Option<f64>>)> = matrix
            .apps()
            .iter()
            .enumerate()
            .map(|(i, app)| {
                (
                    app.clone(),
                    gaia_p3::svg::PALETTE[i % gaia_p3::svg::PALETTE.len()].to_string(),
                    platforms
                        .iter()
                        .map(|p| matrix.efficiency(app, p))
                        .collect(),
                )
            })
            .collect();
        let svg = gaia_p3::svg::line_chart(
            &format!("Fig. 5 — application efficiency, {gb} GB"),
            &platforms,
            &series,
        );
        gaia_bench::must_write_text_artifact(&format!("fig5_{}gb.svg", gb as u64), &svg);

        must_write_artifact(
            &format!("fig5_{}gb.json", gb as u64),
            &serde_json::json!({
                "gb": gb,
                "platforms": platforms,
                "efficiency": matrix.apps().iter().map(|a| serde_json::json!({
                    "app": a,
                    "values": platforms.iter()
                        .map(|p| matrix.efficiency(a, p))
                        .collect::<Vec<_>>(),
                })).collect::<Vec<_>>(),
            }),
        );
        println!();
    }
    println!(
        "Paper shape: C++ PSTL efficiency rises monotonically from T4 to H100\n\
         (≈0.9 on H100, 0.45-0.6 on MI250X); OMP+LLVM and SYCL+DPCPP sink on\n\
         MI250X (CAS-loop atomics); SYCL+ACPP is uniformly close everywhere."
    );
}
