//! Fig. 6 a–d: validation of the ports against the production solution.
//!
//! The paper compares the astrometric solution and its standard error
//! obtained by the HIP port (on H100/Leonardo and on MI250X/Setonix)
//! against the CUDA code in production, on real 42 GB / 306 GB datasets:
//! the pairs must fall on the 1:1 line, agree within 1σ, and the
//! standard-error differences must stay below 10 µas.
//!
//! Here the roles are played by *real solves with genuinely different
//! parallel backends* on a seeded synthetic system whose right-hand side
//! is calibrated to radian-scale astrometry (so the µas threshold is
//! meaningful): the sequential oracle stands in for the production CUDA
//! run, and two independently-parallelized backends (atomic-RMW and
//! stream-overlapped — the two strategies the HIP port combines) stand in
//! for HIP-on-H100 and HIP-on-MI250X.

use gaia_avugsr_fig6::run;

mod gaia_avugsr_fig6 {
    use gaia_backends::{AtomicBackend, Backend, SeqBackend, StreamedBackend};
    use gaia_lsqr::{compare_solutions, solve, LsqrConfig, Solution, MICRO_ARCSEC_RAD};
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    /// Typical magnitude of an astrometric correction in radians
    /// (tens of milli-arcseconds).
    const ASTRO_SCALE_RAD: f64 = 1e-7;

    fn solve_port(sys: &gaia_sparse::SparseSystem, backend: &dyn Backend) -> Solution {
        solve(sys, backend, &LsqrConfig::new().max_iters(5_000))
    }

    pub fn run() {
        let layout = SystemLayout::small();
        let cfg = GeneratorConfig::new(layout)
            .seed(42)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-5 });
        let (mut sys, _) = Generator::new(cfg).generate_with_truth();
        // Calibrate the synthetic units to radians: scaling b scales the
        // solution and its standard errors linearly.
        let b: Vec<f64> = sys
            .known_terms()
            .iter()
            .map(|v| v * ASTRO_SCALE_RAD)
            .collect();
        sys.set_known_terms(b);

        println!("Fig. 6 — solution validation (synthetic 1σ + 10 µas criteria)");
        println!(
            "system: {} rows x {} cols, seed 42, radian-calibrated RHS\n",
            sys.n_rows(),
            sys.n_cols()
        );

        let production = solve_port(&sys, &SeqBackend);
        println!(
            "reference (production role): {:?} after {} iterations, |r|/|b| = {:.2e}",
            production.stop,
            production.iterations,
            production.relative_residual()
        );

        let ports: Vec<(&str, Box<dyn Backend>)> = vec![
            (
                "HIP-on-H100 role (atomic backend)",
                Box::new(AtomicBackend::with_threads(4)),
            ),
            (
                "HIP-on-MI250X role (streamed backend)",
                Box::new(StreamedBackend::with_threads(4)),
            ),
        ];

        let n_astro = sys.layout().n_astro_cols() as usize;
        let mut artifacts = Vec::new();
        for (label, backend) in ports {
            let sol = solve_port(&sys, &backend);
            let agr = compare_solutions(&production, &sol);
            let one_sigma = agr.within_one_sigma.unwrap_or(0.0);
            let below_10uas = agr.stderr_within(10.0 * MICRO_ARCSEC_RAD);
            println!("\n--- {label} ---");
            println!("  max |Δx|            = {:.3e} rad", agr.max_abs_diff);
            println!(
                "  mean Δx / std Δx    = {:.3e} / {:.3e}",
                agr.mean_diff, agr.std_diff
            );
            println!(
                "  within 1σ           = {:.2}% of unknowns",
                100.0 * one_sigma
            );
            println!(
                "  std-err Δ mean/std  = {:.3e} / {:.3e} rad (10 µas = {:.3e})",
                agr.stderr_mean_diff.unwrap_or(f64::NAN),
                agr.stderr_std_diff.unwrap_or(f64::NAN),
                10.0 * MICRO_ARCSEC_RAD
            );
            println!(
                "  verdict: 1σ {} | 10 µas {}",
                if agr.passes(0.99) { "PASS" } else { "FAIL" },
                if below_10uas { "PASS" } else { "FAIL" }
            );

            // Scatter sample for the 1:1 plots (astrometric section only,
            // as in the paper's panels).
            let se_ref = production.standard_errors().expect("var computed");
            let se_port = sol.standard_errors().expect("var computed");
            println!("  scatter sample (x_prod, x_port, se_prod, se_port):");
            for j in (0..n_astro).step_by((n_astro / 5).max(1)).take(5) {
                println!(
                    "    {:+.6e}  {:+.6e}  {:.3e}  {:.3e}",
                    production.x[j], sol.x[j], se_ref[j], se_port[j]
                );
            }
            artifacts.push(serde_json::json!({
                "port": label,
                "within_one_sigma": one_sigma,
                "max_abs_diff": agr.max_abs_diff,
                "stderr_mean_diff": agr.stderr_mean_diff,
                "stderr_std_diff": agr.stderr_std_diff,
                "passes_1sigma": agr.passes(0.99),
                "passes_10uas": below_10uas,
                "scatter_x": production.x[..n_astro.min(200)].to_vec(),
                "scatter_x_port": sol.x[..n_astro.min(200)].to_vec(),
            }));
            assert!(agr.passes(0.99), "{label} failed the 1σ validation");
            assert!(below_10uas, "{label} exceeded the 10 µas threshold");
        }
        gaia_bench::must_write_artifact("fig6_validation.json", &serde_json::json!(artifacts));

        // SVG scatter panels (the paper's 1:1 plots).
        for (idx, art) in artifacts.iter().enumerate() {
            let xs: Vec<f64> = art["scatter_x"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let ys: Vec<f64> = art["scatter_x_port"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let points: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
            let svg = gaia_p3::svg::scatter_1to1(
                art["port"].as_str().unwrap_or("port"),
                "x (production) [rad]",
                "x (port) [rad]",
                &points,
                if idx == 0 { "#d62728" } else { "#1f77b4" },
            );
            gaia_bench::must_write_text_artifact(&format!("fig6_scatter_{}.svg", idx + 1), &svg);
        }
        println!("\nAll ports validate, as in §V-C (\"in agreement within 1σ\" and");
        println!("\"always stay below the 10 micro-arcseconds threshold\").");
    }
}

fn main() {
    run();
}
