//! Capacity-budget sweep: out-of-core solves under bounded tile memory.
//!
//! The paper's §V-B capacity gating asks which devices can *hold* which
//! problem size; this harness asks the follow-up the out-of-core path
//! exists to answer: what does a solve cost when the observation matrix
//! does **not** fit, and does the tile cache actually respect its budget?
//! For each layout it spills the system to a `gaia-tiles/v1` directory,
//! then solves it at budgets {unbounded, 2×, 1.25×, 0.75×} of the
//! resident matrix bytes, recording per-iteration time, tile
//! loads/hits/evictions, and the measured peak resident bytes.
//!
//! The run *audits* itself and exits non-zero on violation:
//!
//! * every bounded cell must keep `peak_resident_bytes <= budget`;
//! * every under-provisioned cell (factor < 1) must record >= 1 eviction
//!   (a cache that never evicts under-budget is not being exercised);
//! * on the `tiny` layout the tiled solution must be bitwise identical
//!   to the resident solve with the same backend.
//!
//! `--smoke` shrinks the sweep to `tiny` × {unbounded, 0.75×} for CI.
//! Artifact: `results/capacity/sweep.json` with `gaia-sweep-summary/v1`
//! aggregate rows plus full per-cell detail.

use std::path::PathBuf;

use gaia_backends::backend_by_name;
use gaia_bench::sweep::{summary_block, SummaryRow};
use gaia_bench::{fatal, must_write_artifact};
use gaia_lsqr::{solve, solve_tiled, LsqrConfig};
use gaia_sparse::{CapacityBudget, Generator, GeneratorConfig, Rhs, SystemLayout, TiledSystem};

/// Fixed iteration count: enough work to stream every tile repeatedly,
/// short enough for CI.
const ITERATIONS: usize = 6;

/// Budget factors swept per layout (`None` = unbounded).
const FACTORS: &[Option<f64>] = &[None, Some(2.0), Some(1.25), Some(0.75)];

fn budget_label(factor: Option<f64>) -> String {
    match factor {
        None => "unbounded".into(),
        Some(f) => format!("{f}x"),
    }
}

fn main() {
    let mut smoke = false;
    let mut backend_name = "seq".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--backend" => {
                backend_name = args
                    .next()
                    .unwrap_or_else(|| fatal("--backend needs a registry name"));
            }
            other => fatal(&format!(
                "unknown flag {other} (expected --smoke/--backend)"
            )),
        }
    }
    let backend = backend_by_name(&backend_name, 4)
        .unwrap_or_else(|| fatal(&format!("unknown backend `{backend_name}`")));

    let layouts: Vec<(&str, SystemLayout)> = if smoke {
        vec![("tiny", SystemLayout::tiny())]
    } else {
        vec![
            ("tiny", SystemLayout::tiny()),
            ("small", SystemLayout::small()),
            ("medium", SystemLayout::medium()),
        ]
    };
    let factors: Vec<Option<f64>> = if smoke {
        vec![None, Some(0.75)]
    } else {
        FACTORS.to_vec()
    };

    let scratch = std::env::temp_dir().join(format!("gaia-capacity-{}", std::process::id()));
    let cfg = LsqrConfig::fixed_iterations(ITERATIONS);
    let mut rows: Vec<SummaryRow> = Vec::new();
    let mut cells = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    println!("capacity sweep: backend={backend_name}, {ITERATIONS} iterations per cell");
    for (layout_name, layout) in &layouts {
        let dir: PathBuf = scratch.join(layout_name);
        let tile_stars = (layout.n_stars / 8).max(1);
        let gen_cfg = GeneratorConfig::new(*layout)
            .seed(9)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 });
        let manifest = Generator::new(gen_cfg)
            .generate_tiled(&dir, tile_stars)
            .unwrap_or_else(|e| fatal(&format!("tiled generation for {layout_name}: {e}")));
        let disk_bytes: u64 = manifest.tiles.iter().map(|t| t.bytes).sum();
        gaia_telemetry::record_tile_spill(disk_bytes);

        // Resident reference for the bitwise audit (tiny only: assembling
        // the bigger layouts would defeat the point of the sweep).
        let resident_x: Option<Vec<f64>> = (*layout_name == "tiny").then(|| {
            let sys = TiledSystem::open(&dir)
                .and_then(|t| t.assemble())
                .unwrap_or_else(|e| fatal(&format!("assemble {layout_name}: {e}")));
            solve(&sys, backend.as_ref(), &cfg).x
        });

        for &factor in &factors {
            let probe = TiledSystem::open(&dir)
                .unwrap_or_else(|e| fatal(&format!("open {layout_name}: {e}")));
            let matrix_bytes = probe.matrix_bytes();
            drop(probe);
            let (budget, budget_bytes) = match factor {
                None => (CapacityBudget::unbounded(), None),
                Some(f) => {
                    let bytes = (f * matrix_bytes as f64) as u64;
                    (CapacityBudget::limited(bytes), Some(bytes))
                }
            };
            let tiles = TiledSystem::open_with_budget(&dir, budget)
                .unwrap_or_else(|e| fatal(&format!("open {layout_name} at {factor:?}: {e}")));
            let sol = solve_tiled(&tiles, backend.as_ref(), &cfg)
                .unwrap_or_else(|e| fatal(&format!("tiled solve {layout_name}: {e}")));
            let stats = tiles.stats();
            let label = budget_label(factor);
            let group = format!("layout={layout_name}/budget={label}");

            let peak_ok = budget_bytes.is_none_or(|b| stats.peak_resident_bytes <= b);
            if !peak_ok {
                violations.push(format!(
                    "{group}: peak resident {} exceeds budget {}",
                    stats.peak_resident_bytes,
                    budget_bytes.unwrap()
                ));
            }
            let must_evict = factor.is_some_and(|f| f < 1.0);
            if must_evict && stats.evictions == 0 {
                violations.push(format!("{group}: under-provisioned cell never evicted"));
            }
            let bitwise = resident_x.as_ref().map(|want| {
                want.len() == sol.x.len()
                    && want
                        .iter()
                        .zip(&sol.x)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            });
            if bitwise == Some(false) {
                violations.push(format!("{group}: tiled solve diverged from resident solve"));
            }
            let cell_ok =
                peak_ok && !(must_evict && stats.evictions == 0) && bitwise != Some(false);

            let iter_seconds: Vec<f64> = sol.history.iter().map(|h| h.seconds).collect();
            println!(
                "  {group:<36} {:>7.2} ms/iter  loads={:<4} hits={:<4} evictions={:<4} peak={} B{}",
                1e3 * iter_seconds.iter().sum::<f64>() / iter_seconds.len().max(1) as f64,
                stats.loads,
                stats.hits,
                stats.evictions,
                stats.peak_resident_bytes,
                if cell_ok { "" } else { "  [VIOLATION]" },
            );
            rows.push(SummaryRow {
                group: group.clone(),
                runs: 1,
                converged: u64::from(cell_ok),
                failures: u64::from(!cell_ok),
                ..SummaryRow::default()
            });
            cells.push(serde_json::json!({
                "layout": layout_name,
                "budget": label,
                "budget_bytes": budget_bytes,
                "matrix_bytes": matrix_bytes,
                "disk_bytes": disk_bytes,
                "tile_stars": tile_stars,
                "n_tiles": tiles.n_tiles(),
                "backend": backend_name,
                "iterations": sol.iterations,
                "iteration_seconds": iter_seconds,
                "rnorm": sol.rnorm,
                "loads": stats.loads,
                "hits": stats.hits,
                "evictions": stats.evictions,
                "loaded_bytes": stats.loaded_bytes,
                "evicted_bytes": stats.evicted_bytes,
                "peak_resident_bytes": stats.peak_resident_bytes,
                "bitwise_vs_resident": bitwise,
                "ok": cell_ok,
            }));
        }
    }
    std::fs::remove_dir_all(&scratch).ok();

    must_write_artifact(
        "capacity/sweep.json",
        &serde_json::json!({
            "smoke": smoke,
            "summary": summary_block(&rows),
            "cells": cells,
        }),
    );

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("capacity audit violation: {v}");
        }
        fatal(&format!("{} capacity audit violation(s)", violations.len()));
    }
    println!("capacity audit passed: every bounded cell stayed within budget");
}
