//! One-shot reproduction report: runs the full simulated study (all
//! figures' data), the solver validation, and the claim checks, and
//! writes `results/REPORT.md` — the human-readable summary a reviewer
//! reads first. Real-solve sections use small presets so the whole report
//! builds in seconds.
//!
//! The document body lives in [`gaia_bench::report_gen`] so the perf
//! gate's `--refresh` regenerates the identical report (plus the measured
//! gate grid) whenever baselines change.

use gaia_bench::{must_write_text_artifact, report_gen};

fn main() {
    let md = report_gen::reproduction_report(None);
    must_write_text_artifact("REPORT.md", &md);
    println!("\n{md}");
}
