//! §V-B in-text claim: "we did a preliminary comparison of our optimized
//! CUDA version against the production version of the code, obtaining a
//! speed-up of 2.0x on Leonardo on a 42 GB problem."
//!
//! Regenerates the comparison across every NVIDIA platform and a sweep of
//! problem sizes, attributing the gain to its three §IV ingredients
//! (kernel-shape tuning, reduced atomic contention, stream overlap).

use gaia_gpu_sim::{framework_by_name, iteration_time, platform_by_name, SimConfig};
use gaia_sparse::SystemLayout;

fn main() {
    let cuda = framework_by_name("CUDA").expect("registry");
    let prod = framework_by_name("CUDA-production").expect("registry");

    println!("optimized vs production CUDA (modeled iteration time)");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9}",
        "platform", "GB", "prod [s]", "opt [s]", "speedup"
    );
    let mut rows = Vec::new();
    for platform in ["T4", "V100", "A100", "H100"] {
        let p = platform_by_name(platform).expect("registry");
        for gb in [10.0, 30.0, 42.0, 60.0] {
            let layout = SystemLayout::from_gb(gb);
            let (Some(t_opt), Some(t_prod)) = (
                iteration_time(&layout, &cuda, &p, &SimConfig::default()),
                iteration_time(&layout, &prod, &p, &SimConfig::default()),
            ) else {
                continue;
            };
            let speedup = t_prod.seconds / t_opt.seconds;
            println!(
                "{:<8} {:>8} {:>12.4} {:>12.4} {:>8.2}x",
                platform, gb, t_prod.seconds, t_opt.seconds, speedup
            );
            rows.push(serde_json::json!({
                "platform": platform,
                "gb": gb,
                "production_seconds": t_prod.seconds,
                "optimized_seconds": t_opt.seconds,
                "speedup": speedup,
            }));
        }
    }
    gaia_bench::must_write_artifact("speedup_production.json", &serde_json::json!(rows));

    // Attribution on the paper's reference point (42 GB, H100-class node).
    let layout = SystemLayout::from_gb(42.0);
    let h100 = platform_by_name("H100").expect("registry");
    let base = iteration_time(&layout, &prod, &h100, &SimConfig::default())
        .expect("fits")
        .seconds;
    println!("\ningredient attribution at 42 GB (H100-class node):");
    let mut step = prod.clone();
    step.tunability = cuda.tunability;
    let t1 = iteration_time(&layout, &step, &h100, &SimConfig::default())
        .expect("fits")
        .seconds;
    println!("  + kernel-shape tuning      : {:.3}x", base / t1);
    step.atomic_contention_mult = 1.0;
    let t2 = iteration_time(&layout, &step, &h100, &SimConfig::default())
        .expect("fits")
        .seconds;
    println!("  + reduced atomic regions   : {:.3}x", base / t2);
    step.coherence_bw_factor = 1.0;
    step.streams = true;
    let t3 = iteration_time(&layout, &step, &h100, &SimConfig::default())
        .expect("fits")
        .seconds;
    println!(
        "  + coarse grain + streams   : {:.3}x (paper: 2.0x)",
        base / t3
    );
}
