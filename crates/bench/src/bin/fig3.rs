//! Fig. 3 a/b/c: performance-portability cascades and `P` for the 10, 30,
//! and 60 GB problems across the eight framework+compiler combinations.
//!
//! Prints, per problem size: the application-efficiency cascade of every
//! framework (platforms ordered best-first, with the cumulative `P`), and
//! the final `P` ranking — the Rust rendition of the p3-analysis plots.

use gaia_bench::{must_write_artifact, platform_set, simulate_measurements, PROBLEM_SIZES_GB};
use gaia_p3::{report, Cascade, Normalization};

fn main() {
    for gb in PROBLEM_SIZES_GB {
        let (_, set) = simulate_measurements(gb);
        let platforms = platform_set(gb);
        let matrix = set.efficiencies(Normalization::PlatformBest);

        println!("================ Fig. 3 — {gb} GB problem ================");
        println!("platform set: {platforms:?}\n");

        let mut artifacts = Vec::new();
        for app in matrix.apps() {
            let cascade = Cascade::build(&matrix, app, &platforms);
            print!("{}", gaia_p3::plot::cascade_strip(&cascade, 40));
            println!();
            artifacts.push(serde_json::json!({
                "app": cascade.app,
                "final_pp": cascade.final_pp(),
                "points": cascade.points.iter().map(|p| serde_json::json!({
                    "rank": p.rank,
                    "platform": p.platform,
                    "efficiency": p.efficiency,
                    "cumulative_pp": p.cumulative_pp,
                })).collect::<Vec<_>>(),
            }));
        }

        println!("{}", report::pp_table(&matrix, &platforms));

        // The paper's subset analysis: "if we only consider NVIDIA
        // platforms, CUDA would be the winner with 0.97".
        let nvidia: Vec<String> = platforms
            .iter()
            .filter(|p| p.as_str() != "MI250X")
            .cloned()
            .collect();
        if nvidia.len() > 1 {
            println!("NVIDIA-only subset:");
            for (app, p) in gaia_p3::subsets::subset_ranking(&matrix, &nvidia)
                .iter()
                .take(3)
            {
                println!("  {app:<12} P = {p:.3}");
            }
            if let Some((winner, p)) = gaia_p3::subsets::subset_winner(&matrix, &nvidia) {
                println!("  winner: {winner} ({p:.3}) — paper: CUDA, 0.97\n");
            }
        }
        // Why the harmonic mean: compare against AM/GM for each framework.
        println!("mean comparison (the harmonic mean is the P metric):");
        println!(
            "  {:<12} {:>6} {:>6} {:>6}",
            "framework", "HM=P", "GM", "AM"
        );
        for app in matrix.apps() {
            let effs: Vec<f64> = platforms
                .iter()
                .filter_map(|pl| matrix.efficiency(app, pl))
                .collect();
            if effs.len() == platforms.len() {
                let c = gaia_p3::means::compare(&effs);
                println!(
                    "  {:<12} {:>6.3} {:>6.3} {:>6.3}",
                    app, c.harmonic, c.geometric, c.arithmetic
                );
            }
        }
        println!();
        // Leave-one-out: which platform costs each framework the most.
        println!("bottleneck platform per framework (P if removed):");
        for app in matrix.apps() {
            if let Some((worst, improved)) =
                gaia_p3::subsets::bottleneck_platform(&matrix, app, &platforms)
            {
                println!(
                    "  {app:<12} without {worst:<8} P {:.3} -> {improved:.3}",
                    matrix.pp(app, &platforms)
                );
            }
        }
        println!();
        if gb >= 60.0 {
            println!(
                "note: as in the paper, P over a 2-platform set (and CUDA's single\n\
                 NVIDIA platform at 60 GB) carries little information.\n"
            );
        }
        must_write_artifact(
            &format!("fig3_{}gb.json", gb as u64),
            &serde_json::json!({ "gb": gb, "platforms": platforms, "cascades": artifacts }),
        );

        // SVG cascade (the paper's top-left Fig. 3 panel): efficiency per
        // rank position, one line per framework.
        let ranks: Vec<String> = (1..=platforms.len()).map(|r| r.to_string()).collect();
        let series: Vec<(String, String, Vec<Option<f64>>)> = matrix
            .apps()
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let cascade = gaia_p3::Cascade::build(&matrix, app, &platforms);
                let values: Vec<Option<f64>> = cascade
                    .points
                    .iter()
                    .map(|p| (p.efficiency > 0.0).then_some(p.efficiency))
                    .collect();
                (
                    app.clone(),
                    gaia_p3::svg::PALETTE[i % gaia_p3::svg::PALETTE.len()].to_string(),
                    values,
                )
            })
            .collect();
        let svg = gaia_p3::svg::line_chart(
            &format!("Fig. 3 — application-efficiency cascade, {gb} GB"),
            &ranks,
            &series,
        );
        gaia_bench::must_write_text_artifact(&format!("fig3_{}gb.svg", gb as u64), &svg);
    }
    println!(
        "Paper reference points: HIP P=0.98 (10 GB) / 0.88 (30 GB);\n\
         SYCL+ACPP 0.92 / 0.93; OMP+LLVM worst at 0.25 (10 GB);\n\
         CUDA P=0 on any set containing the MI250X."
    );
}
