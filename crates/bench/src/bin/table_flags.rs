//! Tables I–III: software versions and compilation flags per framework
//! and vendor, as carried by the framework registry.

use gaia_gpu_sim::{all_frameworks, Vendor};

fn main() {
    println!("Table I — compiler per framework and vendor");
    println!("{:<12} {:<28} {:<28}", "framework", "NVIDIA", "AMD");
    for fw in all_frameworks() {
        println!(
            "{:<12} {:<28} {:<28}",
            fw.name,
            fw.compiler_on(Vendor::Nvidia).unwrap_or("-"),
            fw.compiler_on(Vendor::Amd).unwrap_or("-"),
        );
    }

    println!("\nTable II — compilation flags on NVIDIA architectures");
    for fw in all_frameworks() {
        if let Some(flags) = fw.flags_on(Vendor::Nvidia) {
            println!("{:<12} {}", fw.name, flags);
        }
    }

    println!("\nTable III — compilation flags on AMD architectures");
    for fw in all_frameworks() {
        if let Some(flags) = fw.flags_on(Vendor::Amd) {
            println!("{:<12} {}", fw.name, flags);
        }
    }

    println!("\nModel-relevant framework properties:");
    println!(
        "{:<12} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "framework", "tunable", "streams", "atomics(NV)", "atomics(AMD)", "sync[µs]"
    );
    for fw in all_frameworks() {
        println!(
            "{:<12} {:>9} {:>8} {:>12} {:>12} {:>9.0}",
            fw.name,
            format!("{:?}", fw.tunability)
                .split(' ')
                .next()
                .unwrap_or("?")
                .trim_start_matches("Fixed"),
            fw.streams,
            format!("{:?}", fw.atomics_nvidia),
            format!("{:?}", fw.atomics_amd),
            fw.sync_us,
        );
    }
}
