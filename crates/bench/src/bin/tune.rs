//! The launch-profile auto-tuner: coordinate descent over the
//! [`gaia_backends::LaunchPlan`] axis set per layout, persisting each
//! winner as a `gaia-tune-profile/v1` JSON the `tuned` backend loads.
//!
//! ```text
//! cargo run --release -p gaia-bench --bin tune                 # tune tiny,small,medium
//! cargo run --release -p gaia-bench --bin tune -- --smoke      # CI: tiny only, trimmed axes
//! cargo run --release -p gaia-bench --bin tune -- --check results/tuning/*.json
//! ```
//!
//! Flags:
//!   --smoke            CI smoke: tiny layout only, trimmed strategy axes
//!   --layouts a,b      subset of tiny,small,medium (default: all three)
//!   --threads N        thread budget (capped by available_parallelism; default: all)
//!   --repeats K        timing repeats per candidate (default 5, smoke 3)
//!   --check PATH...    no measurement: load + schema-validate profile files,
//!                      exit 1 when any is invalid
//!
//! Artifacts (under `results/tuning/`): `<layout>.json` — the winning
//! profile, loadable by the `tuned` backend; `search/<layout>.json` — the
//! full search log with every measured configuration and the comparison
//! against the committed `BENCH_executor.json` cell when one exists.

use gaia_backends::profile::load_profile_file;
use gaia_bench::gate::{Baseline, BASELINE_FILE};
use gaia_bench::tune::{tune_layout, TuneSpec};
use gaia_bench::{fatal, must_write_artifact, workspace_root};

struct Cli {
    smoke: bool,
    layouts: Vec<String>,
    threads: usize,
    repeats: usize,
    check: Vec<String>,
}

fn parse_cli() -> Cli {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cli = Cli {
        smoke: false,
        layouts: Vec::new(),
        threads: available,
        repeats: 0, // resolved after --smoke is known
        check: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let mut repeats: Option<usize> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fatal(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--layouts" => {
                cli.layouts = value("--layouts")
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| fatal("--threads needs a positive integer"));
                cli.threads = n.max(1);
            }
            "--repeats" => {
                repeats = Some(
                    value("--repeats")
                        .parse()
                        .unwrap_or_else(|_| fatal("--repeats needs a positive integer")),
                );
            }
            "--check" => {
                cli.check.push(value("--check"));
                // Everything after --check's first value is more paths.
                cli.check.extend(args.by_ref());
            }
            other => fatal(&format!(
                "unknown flag `{other}` (see --bin tune source header)"
            )),
        }
    }
    cli.threads = cli.threads.min(available);
    if cli.layouts.is_empty() {
        cli.layouts = if cli.smoke {
            vec!["tiny".to_owned()]
        } else {
            vec!["tiny".to_owned(), "small".to_owned(), "medium".to_owned()]
        };
    }
    cli.repeats = repeats.unwrap_or(if cli.smoke { 3 } else { 5 });
    if cli.repeats == 0 {
        fatal("--repeats needs a positive integer");
    }
    cli
}

/// `--check`: validate profile files without measuring anything.
fn check(paths: &[String]) {
    let mut bad = 0usize;
    for p in paths {
        match load_profile_file(std::path::Path::new(p)) {
            Ok(profile) => println!(
                "tune: {p}: valid {} profile for `{}` ({})",
                gaia_backends::PROFILE_SCHEMA,
                profile.layout,
                if profile.is_non_default() {
                    "non-default plan"
                } else {
                    "default plan"
                }
            ),
            Err(e) => {
                eprintln!("error: {p}: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        std::process::exit(1);
    }
}

/// The committed gate baseline's per-iteration median for
/// (`chunked`, `layout`) — the anchor the tuned median is quoted against.
fn committed_median(baseline: &Option<Baseline>, layout: &str) -> Option<f64> {
    let b = baseline.as_ref()?;
    b.cells
        .iter()
        .find(|c| c.backend == "chunked" && c.layout == layout)
        .map(|c| c.iteration.median_s)
}

fn main() {
    let cli = parse_cli();
    if !cli.check.is_empty() {
        check(&cli.check);
        return;
    }

    let baseline = Baseline::load(&workspace_root().join(BASELINE_FILE)).ok();
    println!(
        "tune: {} layout(s), {} thread(s), median-of-{}{}",
        cli.layouts.join(","),
        cli.threads,
        cli.repeats,
        if cli.smoke { ", smoke" } else { "" },
    );

    let mut telemetry = gaia_telemetry::TuneCell::default();
    for layout in &cli.layouts {
        let spec = TuneSpec {
            layout: layout.clone(),
            threads: cli.threads,
            repeats: cli.repeats,
            smoke: cli.smoke,
        };
        let outcome = tune_layout(&spec).unwrap_or_else(|e| fatal(&e));
        let p = &outcome.profile;
        println!(
            "tune: {layout}: {} configs explored ({} unsound skipped), \
             winner att={} instr={} glob={} budget={} variant={} layout={} c={}",
            outcome.telemetry.configs_explored,
            outcome.skipped_unsound,
            p.att,
            p.instr,
            p.glob,
            p.budget,
            p.variant,
            p.matrix_layout,
            p.chunks_per_thread,
        );
        println!(
            "tune: {layout}: baseline {:.3} ms/iter -> tuned {:.3} ms/iter \
             ({:+.1} % improvement, {})",
            p.baseline_median_s * 1e3,
            p.tuned_median_s * 1e3,
            p.improvement * 100.0,
            if p.is_non_default() {
                "non-default plan"
            } else {
                "default plan kept"
            }
        );
        let committed = committed_median(&baseline, layout);
        if let Some(c) = committed {
            println!(
                "tune: {layout}: committed {BASELINE_FILE} chunked/{layout} \
                 iteration median {:.3} ms/iter (tuned/committed ratio {:.3})",
                c * 1e3,
                if c > 0.0 {
                    p.tuned_median_s / c
                } else {
                    f64::NAN
                },
            );
        }

        let profile_json =
            serde_json::to_value(p).unwrap_or_else(|e| fatal(&format!("serialize profile: {e}")));
        let written = must_write_artifact(&format!("tuning/{layout}.json"), &profile_json);
        // Round-trip the file we just wrote through the loader: the
        // artifact must be exactly what the `tuned` backend will accept.
        if let Err(e) = load_profile_file(&written) {
            fatal(&format!(
                "persisted profile {} fails validation: {e}",
                written.display()
            ));
        }
        let search_json = serde_json::json!({
            "schema": "gaia-tune-search/v1",
            "layout": layout,
            "threads": cli.threads,
            "repeats": cli.repeats,
            "smoke": cli.smoke,
            "configs_explored": outcome.telemetry.configs_explored,
            "skipped_unsound": outcome.skipped_unsound,
            "committed_chunked_iteration_median_s": committed,
            "winner": profile_json,
            "explored": serde_json::to_value(&outcome.explored)
                .unwrap_or(serde_json::Value::Null),
        });
        // Search logs live one level down so the profile loader's scan
        // of `results/tuning/*.json` only ever sees real profiles.
        must_write_artifact(&format!("tuning/search/{layout}.json"), &search_json);

        telemetry.configs_explored += outcome.telemetry.configs_explored;
        telemetry.measurements += outcome.telemetry.measurements;
        telemetry.measure_seconds += outcome.telemetry.measure_seconds;
        telemetry.profiles_persisted += 1;
    }
    gaia_telemetry::record_tune(&telemetry);
    println!(
        "tune: done — {} profile(s) persisted, {} configs, {:.2} s measured",
        telemetry.profiles_persisted, telemetry.configs_explored, telemetry.measure_seconds,
    );
}
