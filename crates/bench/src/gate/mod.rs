//! The perf regression gate: a pinned backend × layout grid, measured
//! with median-of-K repeats, compared against committed baselines with
//! noise-aware relative bands.
//!
//! This module is the contract layer: the versioned [`SCHEMA`] the
//! committed `BENCH_executor.json` baseline is stored in, the
//! [`compare_grid`] verdict logic, and the human-readable delta table the
//! gate prints (and CI uploads) when something regressed. The actual
//! clock-touching measurement lives in [`measure`]; the band arithmetic
//! lives in [`crate::stats`] so it stays unit-testable.
//!
//! It is the Rust analogue of the PP-Gaia reproducibility artifact's
//! per-kernel average logs (SNIPPETS.md snippet 1): per-kernel
//! (`aprod1`/`aprod2`) and per-iteration wall time per (backend, layout)
//! cell, except here the numbers *fail the build* when they drift.

pub mod measure;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::stats::{compare, Band, Comparison, Summary};

/// Version tag of the baseline artifact. Bump on any incompatible change
/// and teach [`Baseline::load`] to explain the migration.
pub const SCHEMA: &str = "gaia-bench-gate/v1";

/// The committed baseline file, anchored at the workspace root.
pub const BASELINE_FILE: &str = "BENCH_executor.json";

/// The pinned backend set: one representative per `Aprod2Strategy`
/// family that the speed roadmap items will touch (owner-computes,
/// atomic RMW, lock-striped, stream-overlapped) plus the sequential
/// floor every speedup is quoted against.
pub const GATE_BACKENDS: [&str; 5] = ["seq", "chunked", "atomic", "striped", "streamed"];

/// The pinned layout set, smallest first. `--quick` (CI) drops `medium`.
pub const GATE_LAYOUTS: [&str; 3] = ["tiny", "small", "medium"];

/// Metric names stored per cell, in presentation order.
pub const METRICS: [&str; 3] = ["aprod1", "aprod2", "iteration"];

/// One measured grid cell: a (backend, layout) pair with its per-kernel
/// and per-iteration timing summaries and the relative band it is held
/// to. `threads` is the *effective* thread budget the cell ran with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Backend registry name (`seq`, `atomic`, ...).
    pub backend: String,
    /// Layout preset name (`tiny`/`small`/`medium`).
    pub layout: String,
    /// Effective thread budget the measurement ran with.
    pub threads: u64,
    /// Generated system rows.
    pub n_rows: u64,
    /// Generated system columns.
    pub n_cols: u64,
    /// `aprod1`+`aprod2` iterations per timing repeat.
    pub iterations: u64,
    /// Per-cell floor on the allowed relative slowdown (the band's
    /// threshold; the noise widening comes on top at compare time).
    pub threshold_frac: f64,
    /// Median-of-K summary of per-iteration `aprod1` seconds.
    pub aprod1: Summary,
    /// Median-of-K summary of per-iteration `aprod2` seconds.
    pub aprod2: Summary,
    /// Median-of-K summary of combined per-iteration seconds.
    pub iteration: Summary,
}

impl CellRecord {
    /// `backend/layout`, the display key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.backend, self.layout)
    }

    /// Look up a metric summary by name (one of [`METRICS`]).
    pub fn metric(&self, name: &str) -> Option<&Summary> {
        match name {
            "aprod1" => Some(&self.aprod1),
            "aprod2" => Some(&self.aprod2),
            "iteration" => Some(&self.iteration),
            _ => None,
        }
    }
}

/// The committed baseline artifact (`BENCH_executor.json`): the pinned
/// grid's summaries plus enough provenance (thread budget, repeat count,
/// host parallelism) to judge whether a comparison is apples-to-apples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Must equal [`SCHEMA`].
    pub schema: String,
    /// Human-readable header: what this file is and how to regenerate it.
    pub note: String,
    /// Effective thread budget the baseline grid ran with.
    pub threads: u64,
    /// `available_parallelism()` on the recording host.
    pub available_parallelism: u64,
    /// Timing repeats per cell (the K of median-of-K; ≥ 5 for committed
    /// baselines).
    pub repeats: u64,
    /// Default per-cell threshold the refresh stamped into the cells.
    pub default_threshold_frac: f64,
    /// The measured grid.
    pub cells: Vec<CellRecord>,
}

/// Why a baseline could not be loaded — each case gets its own
/// actionable message (and the gate binary maps them to exit code 2,
/// distinct from exit 1 = regression).
#[derive(Debug)]
pub enum BaselineError {
    /// No file at the path: nothing has pinned this machine yet.
    Missing(PathBuf),
    /// The file exists but could not be read.
    Unreadable(PathBuf, io::Error),
    /// The file is not valid JSON or not the expected shape.
    Parse(PathBuf, String),
    /// The file parses but carries a different schema tag (e.g. the
    /// pre-gate `executor_overhead` format).
    Schema(PathBuf, String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Missing(p) => write!(
                f,
                "no baseline at {} — run `gaia-bench --bin gate -- --refresh` to pin this machine",
                p.display()
            ),
            BaselineError::Unreadable(p, e) => {
                write!(f, "cannot read baseline {}: {e}", p.display())
            }
            BaselineError::Parse(p, e) => write!(
                f,
                "baseline {} is not a {SCHEMA} artifact ({e}) — refresh with \
                 `gaia-bench --bin gate -- --refresh`",
                p.display()
            ),
            BaselineError::Schema(p, found) => write!(
                f,
                "baseline {} has schema `{found}`, expected `{SCHEMA}` — refresh with \
                 `gaia-bench --bin gate -- --refresh` to migrate",
                p.display()
            ),
        }
    }
}

impl Baseline {
    /// Load and validate a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, BaselineError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(BaselineError::Missing(path.to_path_buf()))
            }
            Err(e) => return Err(BaselineError::Unreadable(path.to_path_buf(), e)),
        };
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| BaselineError::Parse(path.to_path_buf(), format!("{e:?}")))?;
        let found = value
            .get("schema")
            .and_then(|s| s.as_str())
            .unwrap_or("<none>")
            .to_owned();
        if found != SCHEMA {
            return Err(BaselineError::Schema(path.to_path_buf(), found));
        }
        serde_json::from_value(&value)
            .map_err(|e| BaselineError::Parse(path.to_path_buf(), format!("{e:?}")))
    }

    /// Serialize to `path`, creating parent directories. A failure here
    /// must abort the caller — a gate that cannot write its baseline has
    /// pinned nothing.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_value(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        crate::write_json_file(path, &json)
    }

    /// Find the baseline cell for a (backend, layout) pair.
    pub fn cell(&self, backend: &str, layout: &str) -> Option<&CellRecord> {
        self.cells
            .iter()
            .find(|c| c.backend == backend && c.layout == layout)
    }
}

/// One compared metric: the pair of summaries and the verdict.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Backend registry name.
    pub backend: String,
    /// Layout preset name.
    pub layout: String,
    /// Metric name (one of [`METRICS`]).
    pub metric: &'static str,
    /// Baseline summary.
    pub baseline: Summary,
    /// Freshly measured summary.
    pub current: Summary,
    /// Ratio, applied band, and verdict.
    pub cmp: Comparison,
}

/// The full result of one gate comparison run.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Every compared metric, grid order.
    pub deltas: Vec<Delta>,
    /// Measured cells with no baseline counterpart (`(backend, layout)`):
    /// reported, never failing — refresh to pin them.
    pub new_cells: Vec<(String, String)>,
    /// Metrics whose ratio exceeded the band.
    pub regressions: usize,
    /// Metrics faster than the band's lower edge.
    pub improvements: usize,
    /// Set when the baseline and current thread budgets differ
    /// (`(baseline, current)`): the numbers are still compared, but the
    /// table flags them as cross-budget.
    pub threads_mismatch: Option<(u64, u64)>,
}

impl GateOutcome {
    /// True when no metric regressed.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }
}

/// Compare freshly measured cells against a baseline. `band_override`
/// replaces every cell's stored threshold (CI uses this for wider,
/// cross-machine-tolerant bands); `noise_widen` scales the IQR-based
/// widening term.
pub fn compare_grid(
    baseline: &Baseline,
    current: &[CellRecord],
    current_threads: u64,
    band_override: Option<f64>,
    noise_widen: f64,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    if baseline.threads != current_threads {
        out.threads_mismatch = Some((baseline.threads, current_threads));
    }
    for cell in current {
        let Some(base) = baseline.cell(&cell.backend, &cell.layout) else {
            out.new_cells
                .push((cell.backend.clone(), cell.layout.clone()));
            continue;
        };
        let band = Band {
            threshold_frac: band_override.unwrap_or(base.threshold_frac),
            noise_widen,
        };
        for metric in METRICS {
            let (b, c) = (
                base.metric(metric).expect("known metric"),
                cell.metric(metric).expect("known metric"),
            );
            let cmp = compare(b, c, &band);
            if cmp.regression {
                out.regressions += 1;
            }
            if cmp.improvement {
                out.improvements += 1;
            }
            out.deltas.push(Delta {
                backend: cell.backend.clone(),
                layout: cell.layout.clone(),
                metric,
                baseline: *b,
                current: *c,
                cmp,
            });
        }
    }
    out
}

fn fmt_us(s: &Summary) -> String {
    format!("{:9.2} ±{:.2}", s.median_s * 1e6, s.iqr_s * 1e6)
}

/// Render the human-readable delta table for a comparison: one row per
/// compared metric, the applied band, and a PASS/FAIL trailer. This is
/// the artifact CI uploads and the text a developer reads when the gate
/// fires.
pub fn delta_table(outcome: &GateOutcome, baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "perf gate vs {} (baseline: {} repeats, {} threads, host parallelism {})\n",
        BASELINE_FILE, baseline.repeats, baseline.threads, baseline.available_parallelism
    ));
    if let Some((b, c)) = outcome.threads_mismatch {
        out.push_str(&format!(
            "warning: thread budgets differ (baseline {b}, current {c}) — \
             deltas mix launch-overhead regimes; prefer --refresh on this host\n"
        ));
    }
    out.push_str(&format!(
        "{:<18} {:<10} {:>16} {:>16} {:>8} {:>9}  verdict\n",
        "cell", "metric", "baseline µs", "current µs", "ratio", "allowed"
    ));
    for d in &outcome.deltas {
        let verdict = if d.cmp.regression {
            "REGRESSION"
        } else if d.cmp.improvement {
            "improved"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{:<18} {:<10} {:>16} {:>16} {:>8.3} {:>8.1}%  {}\n",
            format!("{}/{}", d.backend, d.layout),
            d.metric,
            fmt_us(&d.baseline),
            fmt_us(&d.current),
            d.cmp.ratio,
            d.cmp.allowed_frac * 100.0,
            verdict,
        ));
    }
    for (backend, layout) in &outcome.new_cells {
        out.push_str(&format!(
            "{:<18} (new cell — no baseline entry; passes, --refresh to pin)\n",
            format!("{backend}/{layout}")
        ));
    }
    let cells: std::collections::BTreeSet<_> = outcome
        .deltas
        .iter()
        .map(|d| (&d.backend, &d.layout))
        .collect();
    out.push_str(&format!(
        "gate: {} metric(s) across {} cell(s) compared — {} regression(s), \
         {} improvement(s), {} new cell(s): {}\n",
        outcome.deltas.len(),
        cells.len(),
        outcome.regressions,
        outcome.improvements,
        outcome.new_cells.len(),
        if outcome.passed() { "PASS" } else { "FAIL" },
    ));
    out
}

/// The measured grid as a markdown section for `results/REPORT.md`:
/// per-cell medians plus the P-metric cascade with backends in the
/// application role and layouts in the platform role — the repo's own
/// measured mirror of the paper's Fig. 3 analysis, regenerated from the
/// same grid the gate pins.
pub fn report_section(cells: &[CellRecord], threads: u64, repeats: u64) -> String {
    use std::fmt::Write as _;

    let mut md = String::new();
    let _ = writeln!(md, "## Perf regression gate (measured grid)\n");
    let _ = writeln!(
        md,
        "Median-of-{repeats} per-iteration wall time at {threads} thread(s); \
         dispersion is the interquartile range across repeats. The same\n\
         grid is the committed `{BASELINE_FILE}` baseline the gate\n\
         (`cargo run -p gaia-bench --bin gate`) compares against.\n"
    );
    let _ = writeln!(
        md,
        "| cell | aprod1 µs | aprod2 µs | iteration µs (±IQR) |\n|---|---|---|---|"
    );
    for c in cells {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.2} | {:.2} ±{:.2} |",
            c.key(),
            c.aprod1.median_s * 1e6,
            c.aprod2.median_s * 1e6,
            c.iteration.median_s * 1e6,
            c.iteration.iqr_s * 1e6,
        );
    }
    let (matrix, layouts) = pp_matrix(cells);
    if layouts.len() > 1 {
        let _ = writeln!(
            md,
            "\nP-metric cascade over the gate grid (backends as applications,\n\
             layouts as platforms, `PlatformBest` normalization):\n"
        );
        let _ = writeln!(
            md,
            "```\n{}```",
            gaia_p3::report::pp_table(&matrix, &layouts)
        );
        for app in matrix.apps() {
            let cascade = gaia_p3::Cascade::build(&matrix, app, &layouts);
            let _ = writeln!(md, "```\n{}```", gaia_p3::report::cascade_table(&cascade));
        }
    }
    md
}

/// Build the efficiency matrix of the grid: iteration medians, backends
/// as apps, layouts as platforms (in [`GATE_LAYOUTS`] order).
pub fn pp_matrix(cells: &[CellRecord]) -> (gaia_p3::EfficiencyMatrix, Vec<String>) {
    let mut set = gaia_p3::MeasurementSet::new();
    for c in cells {
        set.record(&c.backend, &c.layout, c.iteration.median_s);
    }
    let layouts: Vec<String> = GATE_LAYOUTS
        .iter()
        .filter(|l| cells.iter().any(|c| &c.layout == *l))
        .map(|l| (*l).to_owned())
        .collect();
    (
        set.efficiencies(gaia_p3::Normalization::PlatformBest),
        layouts,
    )
}

/// The P-metric JSON artifact regenerated on `--refresh`
/// (`results/bench/gate_pp.json`).
pub fn pp_json(cells: &[CellRecord]) -> serde_json::Value {
    let (matrix, layouts) = pp_matrix(cells);
    serde_json::json!({
        "schema": "gaia-bench-gate-pp/v1",
        "platforms": layouts,
        "pp": matrix.apps().iter().map(|a| {
            serde_json::json!({ "backend": a, "pp": matrix.pp(a, &layouts) })
        }).collect::<Vec<_>>(),
    })
}
