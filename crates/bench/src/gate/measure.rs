//! Clock-touching half of the gate: run the pinned grid and produce
//! [`CellRecord`]s. Per repeat, every iteration times `aprod1` and
//! `aprod2` individually (the paper's per-kernel axis) and the cell
//! summarizes K repeats as median + IQR — the dispersion the comparison
//! bands widen by.

use std::time::Instant;

use gaia_backends::{backend_by_name, backend_names, Backend};
use gaia_sparse::{Generator, GeneratorConfig, SparseSystem, SystemLayout};

use super::CellRecord;
use crate::stats::Summary;

/// Fixed generator seed: the grid must measure the same system every run.
const GRID_SEED: u64 = 7;

/// Resolve a layout preset by name.
pub fn layout_by_name(name: &str) -> Option<SystemLayout> {
    match name {
        "tiny" => Some(SystemLayout::tiny()),
        "small" => Some(SystemLayout::small()),
        "medium" => Some(SystemLayout::medium()),
        _ => None,
    }
}

/// Warmup and per-repeat iteration counts for a layout. Quick mode (CI)
/// trims iterations, never repeats — K is what the dispersion estimate
/// lives on.
pub fn iterations_for(layout: &str, quick: bool) -> (usize, usize) {
    let (warmup, iters) = match layout {
        "tiny" => (3, 40),
        "small" => (2, 16),
        _ => (1, 6),
    };
    if quick {
        (warmup.min(2), (iters / 2).max(4))
    } else {
        (warmup, iters)
    }
}

/// What to measure and how hard.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Backend registry names.
    pub backends: Vec<String>,
    /// Layout preset names.
    pub layouts: Vec<String>,
    /// Effective thread budget for every backend.
    pub threads: usize,
    /// Timing repeats per cell (the K of median-of-K).
    pub repeats: usize,
    /// Threshold stamped into each cell (doubled for `tiny`, whose
    /// microsecond-scale kernels are proportionally noisier).
    pub default_threshold_frac: f64,
    /// Trim per-repeat iteration counts (CI smoke).
    pub quick: bool,
}

/// Per-repeat mean seconds of one combined `aprod1`+`aprod2` iteration,
/// split per kernel. Outputs accumulate across iterations (the kernels
/// are `out += ...`); finiteness is asserted so the work cannot be
/// optimized away.
fn time_repeat(sys: &SparseSystem, backend: &dyn Backend, iters: usize) -> (f64, f64) {
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
    let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut out1 = vec![0.0; sys.n_rows()];
    let mut out2 = vec![0.0; sys.n_cols()];
    let (mut a1, mut a2) = (0.0f64, 0.0f64);
    for _ in 0..iters {
        // gaia-analyze: allow(timing): per-kernel wall clock *is* the
        // gate's deliverable; telemetry scopes attribute time inside
        // kernels, the gate times the backend calls themselves.
        let t = Instant::now();
        backend.aprod1(sys, &x, &mut out1);
        a1 += t.elapsed().as_secs_f64();
        // gaia-analyze: allow(timing): second half of the same per-kernel
        // measurement (aprod2 timed separately from aprod1).
        let t = Instant::now();
        backend.aprod2(sys, &y, &mut out2);
        a2 += t.elapsed().as_secs_f64();
    }
    assert!(out1.iter().chain(out2.iter()).all(|v| v.is_finite()));
    (a1 / iters as f64, a2 / iters as f64)
}

/// Measure every cell of the grid. Validates names up front so a typo
/// yields one clean error instead of a panic mid-grid; records the run's
/// totals into the telemetry [`gaia_telemetry::GateCell`].
pub fn measure_grid(spec: &GridSpec) -> Result<Vec<CellRecord>, String> {
    for name in &spec.backends {
        if backend_by_name(name, spec.threads).is_none() {
            return Err(format!(
                "unknown backend `{name}` (registry names: {})",
                backend_names().join(", ")
            ));
        }
    }
    for name in &spec.layouts {
        if layout_by_name(name).is_none() {
            return Err(format!(
                "unknown layout `{name}` (gate layouts: tiny, small, medium)"
            ));
        }
    }

    let mut cells = Vec::new();
    let mut telemetry = gaia_telemetry::GateCell::default();
    for layout_name in &spec.layouts {
        let layout = layout_by_name(layout_name).expect("validated above");
        let sys = Generator::new(GeneratorConfig::new(layout).seed(GRID_SEED)).generate();
        let (warmup, iters) = iterations_for(layout_name, spec.quick);
        for backend_name in &spec.backends {
            let backend = backend_by_name(backend_name, spec.threads).expect("validated above");
            let mut s1 = Vec::with_capacity(spec.repeats);
            let mut s2 = Vec::with_capacity(spec.repeats);
            let mut si = Vec::with_capacity(spec.repeats);
            let _ = time_repeat(&sys, backend.as_ref(), warmup.max(1));
            for _ in 0..spec.repeats {
                let (a1, a2) = time_repeat(&sys, backend.as_ref(), iters);
                s1.push(a1);
                s2.push(a2);
                si.push(a1 + a2);
                telemetry.measure_seconds += (a1 + a2) * iters as f64;
            }
            telemetry.cells_measured += 1;
            telemetry.repeats += spec.repeats as u64;
            let threshold_frac = if layout_name == "tiny" {
                spec.default_threshold_frac * 2.0
            } else {
                spec.default_threshold_frac
            };
            cells.push(CellRecord {
                backend: backend_name.clone(),
                layout: layout_name.clone(),
                threads: spec.threads as u64,
                n_rows: sys.n_rows() as u64,
                n_cols: sys.n_cols() as u64,
                iterations: iters as u64,
                threshold_frac,
                aprod1: Summary::from_samples(&s1),
                aprod2: Summary::from_samples(&s2),
                iteration: Summary::from_samples(&si),
            });
        }
    }
    gaia_telemetry::record_gate(&telemetry);
    Ok(cells)
}
