//! Order statistics and noise-aware band math for the perf regression
//! gate: median-of-K summaries with interquartile-range dispersion, and
//! the comparison rule that decides when a timing delta is a regression.
//!
//! Everything here is pure arithmetic — no clocks, no I/O — so the gate's
//! verdict logic is unit-testable without running a single kernel. The
//! shape follows the pSTL-Bench methodology (arXiv 2402.06384): repeated
//! runs, a robust central estimate (median, not mean), and an explicit
//! dispersion measure so thresholds can widen where the machine is noisy
//! instead of either flaking or rubber-stamping.

use serde::{Deserialize, Serialize};

/// Linear-interpolation quantile (R type 7, the numpy default) of an
/// ascending-sorted slice. `q` in `[0, 1]`.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Median of a sample set (not required to be sorted).
pub fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&s, 0.5)
}

/// Interquartile range (`q3 − q1`, type-7 quantiles) of a sample set.
pub fn iqr(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&s, 0.75) - quantile_sorted(&s, 0.25)
}

/// Statistical summary of K timing repeats of one metric: the robust
/// center (median), the dispersion (IQR), and the extremes. This is the
/// unit the gate schema stores per (cell, metric) — committed baselines
/// carry their own noise level, so comparisons can be exactly as strict
/// as the measurement quality supports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of timing repeats summarized (the K of median-of-K).
    pub repeats: u64,
    /// Median seconds across the repeats.
    pub median_s: f64,
    /// Interquartile range in seconds across the repeats.
    pub iqr_s: f64,
    /// Fastest repeat, seconds.
    pub min_s: f64,
    /// Slowest repeat, seconds.
    pub max_s: f64,
}

impl Summary {
    /// Summarize a non-empty sample set of per-repeat seconds.
    pub fn from_samples(samples: &[f64]) -> Summary {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        Summary {
            repeats: s.len() as u64,
            median_s: quantile_sorted(&s, 0.5),
            iqr_s: quantile_sorted(&s, 0.75) - quantile_sorted(&s, 0.25),
            min_s: s.first().copied().unwrap_or(0.0),
            max_s: s.last().copied().unwrap_or(0.0),
        }
    }

    /// Dispersion relative to the center: `iqr / median` (0 when the
    /// median is not positive). The noise term the band widens by.
    pub fn rel_iqr(&self) -> f64 {
        if self.median_s > 0.0 {
            self.iqr_s / self.median_s
        } else {
            0.0
        }
    }
}

/// The comparison band: a floor threshold plus a noise-proportional
/// widening. The allowed relative slowdown for a cell is
/// `threshold_frac + noise_widen · max(rel_iqr(baseline), rel_iqr(current))`
/// — wider exactly where the measurements themselves are wider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Minimum allowed relative slowdown even on a perfectly quiet cell
    /// (e.g. `0.2` = 20 %).
    pub threshold_frac: f64,
    /// Multiplier on the worse of the two relative IQRs.
    pub noise_widen: f64,
}

impl Band {
    /// The allowed relative slowdown for this baseline/current pair.
    pub fn allowed_frac(&self, baseline: &Summary, current: &Summary) -> f64 {
        self.threshold_frac + self.noise_widen * baseline.rel_iqr().max(current.rel_iqr())
    }
}

/// Verdict of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// `current.median / baseline.median` (∞ when the baseline median is
    /// zero but the current one is not).
    pub ratio: f64,
    /// The band edge actually applied, as a relative fraction.
    pub allowed_frac: f64,
    /// `ratio` strictly above `1 + allowed_frac`: the gate fails.
    /// A ratio landing exactly on the edge passes.
    pub regression: bool,
    /// `ratio` strictly below `1 − allowed_frac`: faster than the band —
    /// reported (a refresh candidate), never a failure.
    pub improvement: bool,
}

/// Compare a current summary against its baseline under a band.
pub fn compare(baseline: &Summary, current: &Summary, band: &Band) -> Comparison {
    let ratio = if baseline.median_s > 0.0 {
        current.median_s / baseline.median_s
    } else if current.median_s > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let allowed_frac = band.allowed_frac(baseline, current);
    Comparison {
        ratio,
        allowed_frac,
        regression: ratio > 1.0 + allowed_frac,
        improvement: ratio < 1.0 - allowed_frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(median_s: f64, iqr_s: f64) -> Summary {
        Summary {
            repeats: 5,
            median_s,
            iqr_s,
            min_s: median_s - iqr_s,
            max_s: median_s + iqr_s,
        }
    }

    #[test]
    fn median_of_known_samples() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn iqr_of_known_samples() {
        // Type-7 quantiles on [1, 2, 3, 4]: q1 = 1.75, q3 = 3.25.
        assert!((iqr(&[4.0, 2.0, 1.0, 3.0]) - 1.5).abs() < 1e-12);
        // Odd count [1..5]: q1 = 2, q3 = 4.
        assert!((iqr(&[5.0, 1.0, 3.0, 2.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(iqr(&[9.0]), 0.0);
    }

    #[test]
    fn summary_from_samples_matches_hand_computation() {
        let s = Summary::from_samples(&[10.0, 30.0, 20.0, 40.0, 50.0]);
        assert_eq!(s.repeats, 5);
        assert_eq!(s.median_s, 30.0);
        assert_eq!(s.iqr_s, 20.0);
        assert_eq!(s.min_s, 10.0);
        assert_eq!(s.max_s, 50.0);
        assert!((s.rel_iqr() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exactly_at_the_band_edge_passes_just_over_fails() {
        let band = Band {
            threshold_frac: 0.10,
            noise_widen: 1.0,
        };
        let base = flat(100e-6, 0.0);
        // Exactly +10 %: on the edge, passes.
        let at_edge = compare(&base, &flat(110e-6, 0.0), &band);
        assert!(!at_edge.regression, "{at_edge:?}");
        // Epsilon over: fails.
        let over = compare(&base, &flat(110e-6 * (1.0 + 1e-9), 0.0), &band);
        assert!(over.regression, "{over:?}");
        // Well under the lower edge: an improvement, not a failure.
        let faster = compare(&base, &flat(80e-6, 0.0), &band);
        assert!(faster.improvement && !faster.regression);
    }

    #[test]
    fn noisier_cells_get_wider_bands() {
        let band = Band {
            threshold_frac: 0.10,
            noise_widen: 1.0,
        };
        // Quiet baseline and current: a 25 % slowdown fails.
        let quiet = compare(&flat(100e-6, 0.0), &flat(125e-6, 0.0), &band);
        assert!(quiet.regression);
        // Same ratio but the baseline's IQR is 20 % of its median: the
        // band widens to 30 % and the cell passes.
        let noisy = compare(&flat(100e-6, 20e-6), &flat(125e-6, 0.0), &band);
        assert!(!noisy.regression);
        assert!(noisy.allowed_frac > quiet.allowed_frac);
        // The widening takes the worse of the two sides.
        let noisy_current = compare(&flat(100e-6, 0.0), &flat(125e-6, 25e-6), &band);
        assert!(!noisy_current.regression);
    }

    #[test]
    fn degenerate_baselines_do_not_divide_by_zero() {
        let band = Band {
            threshold_frac: 0.10,
            noise_widen: 1.0,
        };
        let zero = flat(0.0, 0.0);
        let c = compare(&zero, &flat(1e-6, 0.0), &band);
        assert!(c.ratio.is_infinite() && c.regression);
        let both_zero = compare(&zero, &zero, &band);
        assert!(!both_zero.regression && !both_zero.improvement);
    }
}
