//! The launch-configuration auto-tuner — the paper's §V-B kernel-tuning
//! study as a seeded search.
//!
//! The paper reports "up to 40 % reduction in iteration time" from tuning
//! the CUDA launch configuration per kernel and platform. The CPU mirror
//! of that search space is the [`LaunchPlan`] axis set: the per-block
//! conflict strategy (`att`/`instr`/`glob`), the worker budget
//! (uniform/streamed), the kernel interior variant
//! (scalar/unrolled/blocked), the value layout (row-major/ELL), and the
//! chunk granularity. [`tune_layout`] runs deterministic coordinate
//! descent over those axes — measure every candidate value of one axis
//! with the others held at the incumbent, adopt the best, move to the
//! next axis, repeat until a full pass improves nothing — and returns the
//! winner as a persistable [`LaunchProfile`].
//!
//! Every candidate plan is proven sound by the static checker
//! ([`LaunchPlan::analyze_canonical`]) *before* it is timed; an unsound
//! combination is skipped, never measured, never pinned. Measurements use
//! the same median-of-K discipline as the perf gate
//! ([`crate::gate::measure`]), on the same fixed generator seed, so tuner
//! medians and gate medians are directly comparable.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use gaia_backends::{
    Aprod2Spec, Aprod2Strategy, ExecutorPool, KernelVariant, LaunchPlan, LaunchProfile, Tuning,
    WorkerBudget,
};
use gaia_sparse::{Generator, GeneratorConfig, MatrixLayout, SparseSystem};
use gaia_telemetry::TuneCell;

use crate::gate::measure::{iterations_for, layout_by_name};
use crate::stats::Summary;

/// Fixed generator seed — the same system the gate grid measures, so a
/// tuned median is comparable to the committed baseline's.
pub const TUNE_SEED: u64 = 7;

/// Fractional improvement a candidate must show over the incumbent to be
/// adopted; keeps run-to-run noise from flapping the winner.
const ADOPT_MARGIN: f64 = 0.005;

/// Maximum coordinate-descent passes over the axis set.
const MAX_PASSES: usize = 3;

/// What to tune and how hard.
#[derive(Debug, Clone)]
pub struct TuneSpec {
    /// Layout preset name (`tiny`/`small`/`medium`).
    pub layout: String,
    /// Worker thread budget for every candidate.
    pub threads: usize,
    /// Timing repeats per candidate (the K of median-of-K).
    pub repeats: usize,
    /// Shrink the axis set and iteration counts (CI smoke).
    pub smoke: bool,
}

/// One measured candidate, for the search log artifact.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Explored {
    /// Human-readable configuration label.
    pub config: String,
    /// Median-of-K summary of mean per-iteration seconds.
    pub summary: Summary,
}

/// The result of tuning one layout.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The pinned winner, measurement fields filled in.
    pub profile: LaunchProfile,
    /// Every configuration measured, in search order.
    pub explored: Vec<Explored>,
    /// Telemetry totals for the run (the caller records them).
    pub telemetry: TuneCell,
    /// Candidate plans skipped because the static checker rejected them.
    pub skipped_unsound: u64,
}

/// One point of the search space, independent of the thread budget.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Config {
    att: Aprod2Strategy,
    instr: Aprod2Strategy,
    glob: Aprod2Strategy,
    budget: WorkerBudget,
    variant: KernelVariant,
    matrix_layout: MatrixLayout,
    chunks_per_thread: usize,
}

impl Config {
    fn default_plan() -> Config {
        Config {
            att: Aprod2Strategy::OwnerComputes,
            instr: Aprod2Strategy::OwnerComputes,
            glob: Aprod2Strategy::OwnerComputes,
            budget: WorkerBudget::Uniform,
            variant: KernelVariant::Scalar,
            matrix_layout: MatrixLayout::RowMajor,
            chunks_per_thread: 1,
        }
    }

    fn to_plan(self, threads: usize) -> LaunchPlan {
        LaunchPlan::new(
            Tuning {
                threads,
                chunks_per_thread: self.chunks_per_thread,
            },
            Aprod2Spec {
                att: self.att,
                instr: self.instr,
                glob: self.glob,
                budget: self.budget,
            },
        )
        .with_variant(self.variant)
        .with_matrix_layout(self.matrix_layout)
    }

    fn label(&self) -> String {
        format!(
            "att={} instr={} glob={} budget={} variant={} layout={} c={}",
            gaia_backends::profile::strategy_name(self.att),
            gaia_backends::profile::strategy_name(self.instr),
            gaia_backends::profile::strategy_name(self.glob),
            gaia_backends::profile::budget_name(self.budget),
            self.variant,
            self.matrix_layout.as_str(),
            self.chunks_per_thread,
        )
    }
}

/// The candidate values per axis. Smoke mode trims the strategy axes to
/// the cheap representatives but keeps the full variant/layout axes —
/// those are what this tuner exists to explore.
struct Axes {
    att: Vec<Aprod2Strategy>,
    instr: Vec<Aprod2Strategy>,
    glob: Vec<Aprod2Strategy>,
    budget: Vec<WorkerBudget>,
    variant: Vec<KernelVariant>,
    matrix_layout: Vec<MatrixLayout>,
    chunks_per_thread: Vec<usize>,
}

impl Axes {
    fn new(smoke: bool) -> Axes {
        if smoke {
            Axes {
                att: vec![Aprod2Strategy::OwnerComputes, Aprod2Strategy::Atomic],
                instr: vec![Aprod2Strategy::OwnerComputes],
                glob: vec![Aprod2Strategy::OwnerComputes],
                budget: vec![WorkerBudget::Uniform],
                variant: KernelVariant::ALL.to_vec(),
                matrix_layout: MatrixLayout::ALL.to_vec(),
                chunks_per_thread: vec![1, 2],
            }
        } else {
            let all = vec![
                Aprod2Strategy::OwnerComputes,
                Aprod2Strategy::Atomic,
                Aprod2Strategy::CasLoop,
                Aprod2Strategy::Replicated,
                Aprod2Strategy::LockStriped { stripes: 16 },
            ];
            Axes {
                att: all.clone(),
                instr: all,
                glob: vec![
                    Aprod2Strategy::OwnerComputes,
                    Aprod2Strategy::Atomic,
                    Aprod2Strategy::Replicated,
                ],
                budget: vec![WorkerBudget::Uniform, WorkerBudget::Streamed],
                variant: KernelVariant::ALL.to_vec(),
                matrix_layout: MatrixLayout::ALL.to_vec(),
                chunks_per_thread: vec![1, 2, 4, 8],
            }
        }
    }
}

/// Clock-touching half of the search: measures candidate plans against
/// one generated system, caching by configuration label so coordinate
/// descent never re-times a point it already visited.
struct Search<'a> {
    sys: &'a SparseSystem,
    pool: Arc<ExecutorPool>,
    threads: usize,
    warmup: usize,
    iters: usize,
    repeats: usize,
    cache: HashMap<String, f64>,
    explored: Vec<Explored>,
    telemetry: TuneCell,
    skipped_unsound: u64,
}

impl Search<'_> {
    /// Mean seconds of one combined `aprod1`+`aprod2` iteration over
    /// `iters` iterations.
    fn time_once(&self, plan: &LaunchPlan, iters: usize) -> f64 {
        let sys = self.sys;
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut out1 = vec![0.0; sys.n_rows()];
        let mut out2 = vec![0.0; sys.n_cols()];
        // gaia-analyze: allow(timing): candidate wall clock *is* the
        // tuner's selection criterion, same discipline as the gate.
        let t = Instant::now();
        for _ in 0..iters {
            plan.aprod1(&self.pool, sys, &x, &mut out1);
            plan.aprod2(&self.pool, sys, &y, &mut out2);
        }
        let elapsed = t.elapsed().as_secs_f64();
        assert!(out1.iter().chain(out2.iter()).all(|v| v.is_finite()));
        elapsed / iters.max(1) as f64
    }

    /// Median-of-K seconds for a configuration, or `None` when the static
    /// checker rejects the plan (skipped, never timed). Cached by label.
    fn median(&mut self, cfg: Config) -> Option<f64> {
        let label = cfg.label();
        if let Some(&m) = self.cache.get(&label) {
            return Some(m);
        }
        let plan = cfg.to_plan(self.threads);
        if plan.analyze_canonical().is_err() {
            self.skipped_unsound += 1;
            return None;
        }
        let _ = self.time_once(&plan, self.warmup.max(1));
        let mut samples = Vec::with_capacity(self.repeats);
        for _ in 0..self.repeats {
            let s = self.time_once(&plan, self.iters);
            self.telemetry.measure_seconds += s * self.iters as f64;
            samples.push(s);
        }
        let summary = Summary::from_samples(&samples);
        let m = summary.median_s;
        self.telemetry.configs_explored += 1;
        self.telemetry.measurements += self.repeats as u64;
        self.explored.push(Explored {
            config: label.clone(),
            summary,
        });
        self.cache.insert(label, m);
        Some(m)
    }

    /// Measure `candidate`; adopt it as the incumbent when it improves
    /// the incumbent median by more than the noise margin.
    fn consider(&mut self, candidate: Config, best: &mut Config, best_m: &mut f64) -> bool {
        if candidate == *best {
            return false;
        }
        match self.median(candidate) {
            Some(m) if m < *best_m * (1.0 - ADOPT_MARGIN) => {
                *best = candidate;
                *best_m = m;
                true
            }
            _ => false,
        }
    }
}

/// Tune one layout: coordinate descent from the default plan, returning
/// the winning profile with `tuned_median_s` / `baseline_median_s` /
/// `improvement` filled in. Errors are user input (unknown layout name)
/// or a default plan that failed to measure — both render as one line.
pub fn tune_layout(spec: &TuneSpec) -> Result<TuneOutcome, String> {
    let Some(layout) = layout_by_name(&spec.layout) else {
        return Err(format!(
            "unknown layout `{}` (tune layouts: tiny, small, medium)",
            spec.layout
        ));
    };
    if spec.threads == 0 || spec.repeats == 0 {
        return Err("threads and repeats must be positive".to_string());
    }
    let sys = Generator::new(GeneratorConfig::new(layout).seed(TUNE_SEED)).generate();
    let (warmup, iters) = iterations_for(&spec.layout, spec.smoke);
    let axes = Axes::new(spec.smoke);
    let mut search = Search {
        sys: &sys,
        pool: ExecutorPool::shared(spec.threads),
        threads: spec.threads,
        warmup,
        iters,
        repeats: spec.repeats,
        cache: HashMap::new(),
        explored: Vec::new(),
        telemetry: TuneCell::default(),
        skipped_unsound: 0,
    };

    let mut best = Config::default_plan();
    let Some(baseline_m) = search.median(best) else {
        return Err("the default plan failed the static checker (registry bug)".to_string());
    };
    let mut best_m = baseline_m;

    for _pass in 0..MAX_PASSES {
        let mut improved = false;
        for &v in &axes.variant {
            improved |= search.consider(Config { variant: v, ..best }, &mut best, &mut best_m);
        }
        for &ml in &axes.matrix_layout {
            improved |= search.consider(
                Config {
                    matrix_layout: ml,
                    ..best
                },
                &mut best,
                &mut best_m,
            );
        }
        for &s in &axes.att {
            improved |= search.consider(Config { att: s, ..best }, &mut best, &mut best_m);
        }
        for &s in &axes.instr {
            improved |= search.consider(Config { instr: s, ..best }, &mut best, &mut best_m);
        }
        for &s in &axes.glob {
            improved |= search.consider(Config { glob: s, ..best }, &mut best, &mut best_m);
        }
        for &b in &axes.budget {
            improved |= search.consider(Config { budget: b, ..best }, &mut best, &mut best_m);
        }
        for &c in &axes.chunks_per_thread {
            improved |= search.consider(
                Config {
                    chunks_per_thread: c,
                    ..best
                },
                &mut best,
                &mut best_m,
            );
        }
        if !improved {
            break;
        }
    }

    let mut profile = LaunchProfile::from_plan(&spec.layout, layout, &best.to_plan(spec.threads));
    profile.tuned_median_s = best_m;
    profile.baseline_median_s = baseline_m;
    profile.improvement = if baseline_m > 0.0 {
        (baseline_m - best_m) / baseline_m
    } else {
        0.0
    };
    profile.configs_explored = search.telemetry.configs_explored;

    Ok(TuneOutcome {
        profile,
        explored: search.explored,
        telemetry: search.telemetry,
        skipped_unsound: search.skipped_unsound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tune_on_tiny_returns_a_valid_profile() {
        let outcome = tune_layout(&TuneSpec {
            layout: "tiny".into(),
            threads: 2,
            repeats: 2,
            smoke: true,
        })
        .unwrap();
        // The profile must lower back to a sound plan.
        let plan = outcome.profile.to_plan().unwrap();
        plan.analyze_canonical().unwrap();
        assert_eq!(outcome.profile.layout, "tiny");
        assert!(outcome.profile.baseline_median_s > 0.0);
        assert!(outcome.profile.tuned_median_s > 0.0);
        assert!(outcome.profile.tuned_median_s <= outcome.profile.baseline_median_s);
        assert!(outcome.telemetry.configs_explored >= 2);
        assert_eq!(
            outcome.explored.len() as u64,
            outcome.telemetry.configs_explored
        );
    }

    #[test]
    fn unknown_layout_is_a_clean_error() {
        let err = tune_layout(&TuneSpec {
            layout: "huge".into(),
            threads: 2,
            repeats: 2,
            smoke: true,
        })
        .unwrap_err();
        assert!(err.contains("unknown layout"), "{err}");
    }

    #[test]
    fn config_labels_are_unique_across_the_smoke_axes() {
        let axes = Axes::new(true);
        let mut labels = std::collections::HashSet::new();
        let base = Config::default_plan();
        for &v in &axes.variant {
            for &ml in &axes.matrix_layout {
                for &c in &axes.chunks_per_thread {
                    let cfg = Config {
                        variant: v,
                        matrix_layout: ml,
                        chunks_per_thread: c,
                        ..base
                    };
                    assert!(labels.insert(cfg.label()), "{}", cfg.label());
                }
            }
        }
    }
}
