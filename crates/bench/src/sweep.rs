//! Shared summary schema for robustness sweeps.
//!
//! Both chaos (`--bin chaos`: fault level × recovery policy) and
//! overload (`--bin overload`: tenant count × fault × deadline) emit the
//! same aggregate row shape, tagged with [`SWEEP_SUMMARY_SCHEMA`], so
//! downstream tooling can diff resilience across PRs without caring
//! which harness produced the numbers.

use serde::{Deserialize, Serialize};

/// Version tag embedded in every sweep summary block. Bump on any field
/// change; consumers must refuse unknown majors.
pub const SWEEP_SUMMARY_SCHEMA: &str = "gaia-sweep-summary/v1";

/// One aggregate row of a robustness sweep: totals for one group
/// (a recovery policy, an overload cell, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Group label (`policy=eager-checkpoint`, `tenants=8/faults=panic`).
    pub group: String,
    /// Solves (or requests) attempted in the group.
    pub runs: u64,
    /// Runs that converged at full quality.
    pub converged: u64,
    /// Runs that converged under degraded resources or rank count.
    pub degraded: u64,
    /// Recovery actions taken (supervisor retries + service retries).
    pub recoveries: u64,
    /// Runs that terminally failed (unrecoverable / faulted).
    pub failures: u64,
    /// Requests shed at admission (0 for non-serving sweeps).
    pub shed: u64,
    /// Requests that hit a deadline (0 for non-serving sweeps).
    pub deadline_exceeded: u64,
}

/// Wrap rows in the tagged summary block embedded in sweep artifacts.
pub fn summary_block(rows: &[SummaryRow]) -> serde_json::Value {
    serde_json::json!({
        "schema": SWEEP_SUMMARY_SCHEMA,
        "rows": rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_block_is_tagged_and_round_trips() {
        let rows = vec![SummaryRow {
            group: "policy=eager".into(),
            runs: 3,
            converged: 2,
            degraded: 1,
            recoveries: 4,
            ..SummaryRow::default()
        }];
        let block = summary_block(&rows);
        assert_eq!(block["schema"].as_str(), Some(SWEEP_SUMMARY_SCHEMA));
        let back: Vec<SummaryRow> = serde_json::from_value(&block["rows"]).unwrap();
        assert_eq!(back, rows);
    }
}
