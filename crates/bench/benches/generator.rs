//! Criterion benchmark of the synthetic dataset generator (the artifact
//! synthesizes the dataset at runtime from the GB size, so generation
//! throughput matters for large runs) and of the column-norm
//! preconditioner construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gaia_lsqr::ColumnScaling;
use gaia_sparse::{footprint, Generator, GeneratorConfig, SystemLayout};
use std::hint::black_box;

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    for (label, layout) in [
        ("small", SystemLayout::small()),
        ("medium", SystemLayout::medium()),
    ] {
        g.throughput(Throughput::Bytes(footprint::device_bytes(&layout)));
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let sys = Generator::new(GeneratorConfig::new(layout).seed(1)).generate();
                black_box(sys.n_rows());
            });
        });
    }
    g.finish();

    let sys = Generator::new(GeneratorConfig::new(SystemLayout::medium()).seed(1)).generate();
    c.bench_function("column_scaling", |b| {
        b.iter(|| black_box(ColumnScaling::from_system(&sys)));
    });
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
