//! Criterion benchmark of the two hot kernels (`aprod1`, `aprod2`) across
//! every backend strategy — the measured counterpart of the paper's
//! per-kernel profiling ("most of the time of this code is spent computing
//! the matrix-by-vector products of aprod1 and aprod2", §V-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gaia_backends::{backend_by_name, backend_names, Backend, CsrBackend};
use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
use std::hint::black_box;

fn bench_aprods(c: &mut Criterion) {
    let layout = SystemLayout::medium();
    let sys = Generator::new(GeneratorConfig::new(layout).seed(1)).generate();
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.1).sin()).collect();
    let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.2).cos()).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let nnz = sys.layout().nnz_total();

    // The structured backends plus the generic-CSR comparison of §V-B
    // (amd-lab-notes), measured rather than modeled.
    let mut backends: Vec<(String, Box<dyn Backend>)> = backend_names()
        .iter()
        .map(|n| (n.to_string(), backend_by_name(n, threads).unwrap()))
        .collect();
    backends.push((
        "csr".to_string(),
        Box::new(CsrBackend::for_system(&sys, threads)),
    ));

    let mut g1 = c.benchmark_group("aprod1");
    g1.throughput(Throughput::Elements(nnz));
    g1.sample_size(10);
    for (name, backend) in &backends {
        let mut out = vec![0.0f64; sys.n_rows()];
        g1.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                backend.aprod1(&sys, black_box(&x), &mut out);
                black_box(&out);
            });
        });
    }
    g1.finish();

    let mut g2 = c.benchmark_group("aprod2");
    g2.throughput(Throughput::Elements(nnz));
    g2.sample_size(10);
    for (name, backend) in &backends {
        let mut out = vec![0.0f64; sys.n_cols()];
        g2.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                backend.aprod2(&sys, black_box(&y), &mut out);
                black_box(&out);
            });
        });
    }
    g2.finish();
}

criterion_group!(benches, bench_aprods);
criterion_main!(benches);
