//! Criterion benchmark of the simulator itself: full-grid evaluation,
//! tuner sweeps, and the fluid discrete-event engine. The simulator is
//! used inside test suites and parameter sweeps, so its own throughput
//! matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaia_gpu_sim::events::{simulate_concurrent, FluidTask};
use gaia_gpu_sim::tuner::tune;
use gaia_gpu_sim::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_sparse::SystemLayout;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let layout = SystemLayout::from_gb(10.0);

    c.bench_function("sim/full_grid_10gb", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for fw in all_frameworks() {
                for p in all_platforms() {
                    if let Some(br) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                        total += br.seconds;
                    }
                }
            }
            black_box(total);
        });
    });

    let cuda = gaia_gpu_sim::framework_by_name("CUDA").unwrap();
    let t4 = gaia_gpu_sim::platform_by_name("T4").unwrap();
    c.bench_function("sim/tuner_sweep", |b| {
        b.iter(|| black_box(tune(&layout, &cuda, &t4, 1024)));
    });

    let mut g = c.benchmark_group("sim/fluid_des");
    for n in [4usize, 64, 512] {
        let tasks: Vec<FluidTask> = (0..n)
            .map(|i| FluidTask {
                name: format!("k{i}"),
                shared_seconds: 0.01 + 0.001 * i as f64,
                private_seconds: if i % 3 == 0 { 0.002 } else { 0.0 },
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| black_box(simulate_concurrent(tasks).makespan));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
