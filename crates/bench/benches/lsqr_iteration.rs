//! Criterion benchmark of the full LSQR iteration per backend and thread
//! budget — the measured analogue of the paper's Fig. 4 (average iteration
//! time per platform × framework), with backends as frameworks and thread
//! budgets as platforms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaia_backends::backend_by_name;
use gaia_lsqr::{solve, LsqrConfig};
use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
use std::hint::black_box;

const ITERS_PER_SOLVE: usize = 5;

fn bench_iterations(c: &mut Criterion) {
    let layout = SystemLayout::medium();
    let sys = Generator::new(GeneratorConfig::new(layout).seed(2)).generate();
    let cfg = LsqrConfig::fixed_iterations(ITERS_PER_SOLVE);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    let mut g = c.benchmark_group("lsqr_iteration");
    g.sample_size(10);
    for budget in [1usize, max_threads] {
        for name in [
            "seq",
            "chunked",
            "atomic",
            "replicated",
            "streamed",
            "rayon",
        ] {
            let backend = backend_by_name(name, budget).unwrap();
            let id = BenchmarkId::new(name, format!("t{budget}"));
            g.bench_with_input(id, name, |b, _| {
                b.iter(|| {
                    let sol = solve(&sys, &backend, &cfg);
                    black_box(sol.rnorm);
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_iterations);
criterion_main!(benches);
