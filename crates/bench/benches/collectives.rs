//! Criterion benchmark of the MPI-substitute collectives: allreduce cost
//! vs rank count and payload size (the communication term of the
//! distributed LSQR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gaia_mpi_sim::{run, ReduceOp};
use std::hint::black_box;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    g.sample_size(10);
    for ranks in [2usize, 4, 8] {
        for len in [16usize, 4096] {
            let id = BenchmarkId::new(format!("ranks{ranks}"), format!("len{len}"));
            g.throughput(Throughput::Elements((ranks * len) as u64));
            g.bench_function(id, |b| {
                b.iter(|| {
                    let out = run(ranks, |comm| {
                        let mut buf = vec![comm.rank() as f64; len];
                        for _ in 0..4 {
                            comm.allreduce(ReduceOp::Sum, &mut buf);
                        }
                        buf[0]
                    });
                    black_box(out);
                });
            });
        }
    }
    g.finish();

    let mut gb = c.benchmark_group("barrier");
    gb.sample_size(10);
    for ranks in [2usize, 8] {
        gb.bench_function(BenchmarkId::from_parameter(ranks), |b| {
            b.iter(|| {
                run(ranks, |comm| {
                    for _ in 0..16 {
                        comm.barrier();
                    }
                })
            });
        });
    }
    gb.finish();
}

fn bench_ring(c: &mut Criterion) {
    use gaia_mpi_sim::{ring_allreduce, Mesh};
    let mut g = c.benchmark_group("ring_allreduce");
    g.sample_size(10);
    for ranks in [2usize, 4, 8] {
        let len = 4096usize;
        g.throughput(Throughput::Elements((ranks * len) as u64));
        g.bench_function(BenchmarkId::from_parameter(ranks), |b| {
            b.iter(|| {
                let mesh = Mesh::new(ranks);
                // gaia-analyze: allow(thread-spawn): the bench stands up one
                // OS thread per simulated MPI rank — ranks are peers, not
                // pool jobs.
                std::thread::scope(|scope| {
                    for rank in 0..ranks {
                        let mesh = &mesh;
                        scope.spawn(move || {
                            let mut buf = vec![rank as f64; len];
                            ring_allreduce(mesh, rank, &mut buf);
                            black_box(buf[0]);
                        });
                    }
                });
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives, bench_ring);
criterion_main!(benches);
