//! Kernel-variant equivalence over the committed seed corpus: every
//! interior the auto-tuner can select (`KernelVariant` × `MatrixLayout`)
//! must agree with the scalar row-major reference under every conflict
//! strategy the tuner pairs it with.
//!
//! Determinism classes (see the kernel-variant table in
//! `gaia_backends::launch`):
//!
//! * `Unrolled` and the ELL interiors keep the scalar accumulation order
//!   exactly, so under a fixed-reduction-order configuration the match is
//!   **bitwise** — any reassociation sneaking into an "equivalent"
//!   unrolling is caught at the ULP level;
//! * `Blocked` tiles the attitude accumulation (deliberate
//!   reassociation) and nondeterministic strategies reduce in
//!   schedule-dependent order, so those matches are bounded by
//!   [`TOLERANCE`] instead.
//!
//! `aprod1` never races (each row is owned by exactly one worker and
//! every interior preserves the scalar per-row order), so it must be
//! bitwise for every variant, layout, and strategy.

use gaia_backends::exec::ExecutorPool;
use gaia_backends::{Aprod2Spec, Aprod2Strategy, KernelVariant, LaunchPlan, Tuning};
use gaia_sparse::{fuzz, MatrixLayout};
use gaia_verify::corpus;
use proptest::prelude::*;

/// |variant − scalar| bound where bitwise identity is not required:
/// far above reduction-order rounding noise on the corpus systems,
/// far below any real kernel defect (a dropped or doubled `a·y` term).
const TOLERANCE: f64 = 1e-12;

/// The strategy configurations the tuner pairs variants with: the
/// sequential reference shape plus the two contended multi-thread
/// strategies (by their registry names).
fn configs() -> Vec<(&'static str, Tuning, Aprod2Strategy)> {
    vec![
        (
            "seq",
            Tuning {
                threads: 1,
                chunks_per_thread: 1,
            },
            Aprod2Strategy::OwnerComputes,
        ),
        (
            "atomic-t3",
            Tuning {
                threads: 3,
                chunks_per_thread: 1,
            },
            Aprod2Strategy::Atomic,
        ),
        (
            "striped-t3",
            Tuning {
                threads: 3,
                chunks_per_thread: 1,
            },
            Aprod2Strategy::LockStriped { stripes: 8 },
        ),
    ]
}

/// The non-scalar (variant, layout) points of the tuner's kernel axis.
fn variant_axis() -> Vec<(KernelVariant, MatrixLayout)> {
    vec![
        (KernelVariant::Unrolled, MatrixLayout::RowMajor),
        (KernelVariant::Blocked, MatrixLayout::RowMajor),
        (KernelVariant::Scalar, MatrixLayout::Ell),
        (KernelVariant::Unrolled, MatrixLayout::Ell),
    ]
}

/// Whether (config, variant, layout) must match the scalar row-major
/// reference bit-for-bit in `aprod2`: a fixed reduction order on both
/// sides, and an order-preserving interior.
fn expect_bitwise(config: &str, variant: KernelVariant) -> bool {
    config == "seq" && variant != KernelVariant::Blocked
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sweep the full corpus × configuration × variant grid with
    /// randomized probe vectors and prior output contents (the
    /// accumulate contract).
    #[test]
    fn variants_match_scalar_reference_over_the_corpus(
        bias in -2.0f64..2.0,
        xk in 0.07f64..0.9,
        yk in 0.07f64..0.9,
    ) {
        let pool = ExecutorPool::new(3);
        for seed in corpus::corpus_seeds() {
            let sys = fuzz::system_from_seed(seed);
            let x: Vec<f64> =
                (0..sys.n_cols()).map(|i| ((i + 1) as f64 * xk).sin()).collect();
            let y: Vec<f64> =
                (0..sys.n_rows()).map(|i| ((i + 2) as f64 * yk).cos()).collect();

            for (cfg_name, tuning, strategy) in configs() {
                let scalar = LaunchPlan::new(tuning, Aprod2Spec::uniform(strategy));
                let mut want1 = vec![bias; sys.n_rows()];
                scalar.aprod1(&pool, &sys, &x, &mut want1);
                let mut want2 = vec![bias; sys.n_cols()];
                scalar.aprod2(&pool, &sys, &y, &mut want2);

                for (variant, layout) in variant_axis() {
                    let plan = LaunchPlan::new(tuning, Aprod2Spec::uniform(strategy))
                        .with_variant(variant)
                        .with_matrix_layout(layout);
                    let tag = format!(
                        "seed {seed} / {cfg_name} / {variant:?} / {layout:?}"
                    );

                    let mut got1 = vec![bias; sys.n_rows()];
                    plan.aprod1(&pool, &sys, &x, &mut got1);
                    prop_assert!(
                        bits_equal(&got1, &want1),
                        "{tag}: aprod1 not bitwise (max |Δ| {:.3e})",
                        max_abs_diff(&got1, &want1),
                    );

                    let mut got2 = vec![bias; sys.n_cols()];
                    plan.aprod2(&pool, &sys, &y, &mut got2);
                    if expect_bitwise(cfg_name, variant) {
                        prop_assert!(
                            bits_equal(&got2, &want2),
                            "{tag}: aprod2 not bitwise (max |Δ| {:.3e})",
                            max_abs_diff(&got2, &want2),
                        );
                    } else {
                        let err = max_abs_diff(&got2, &want2);
                        prop_assert!(
                            err.is_finite() && err <= TOLERANCE,
                            "{tag}: aprod2 off by {err:.3e} (> {TOLERANCE:.0e})",
                        );
                    }
                }
            }
        }
    }
}
