//! Out-of-core equivalence over the committed seed corpus: solving
//! through a `gaia-tiles/v1` spill directory must be indistinguishable
//! from solving the resident system.
//!
//! Determinism classes mirror the kernel-equivalence suite:
//!
//! * `seq` and owner-computes `chunked` backends accumulate every output
//!   slot in ascending row order, and the tiled operator streams tiles in
//!   ascending row order, so the tiled solve is **bitwise** identical to
//!   the resident solve — at any capacity budget, including budgets that
//!   force evictions on every access;
//! * `striped` reduces in schedule-dependent stripe order, so its tiled
//!   solve is bounded by [`TOLERANCE`] instead.
//!
//! Streamed generation (`Generator::generate_tiled`) must round-trip:
//! assembling the spill directory reproduces the in-memory generator's
//! arrays bit for bit, index for index.

use std::path::PathBuf;

use gaia_backends::{backend_by_name, Backend};
use gaia_lsqr::{solve, solve_tiled, LsqrConfig};
use gaia_sparse::{fuzz, Generator, TiledSystem};
use gaia_verify::corpus;

/// Per-element relative |tiled − resident| bound for reduction-reordering
/// strategies (scaled by `max(1, |x_i|)`): far above the stripe-order
/// rounding noise a 12-iteration solve accumulates, far below a dropped
/// or double-counted tile contribution.
const TOLERANCE: f64 = 1e-12;

/// Iterations for the fixed-trajectory solves (matches the metamorphic
/// suite's budget).
const FIXED_ITERS: usize = 12;

/// Stars per tile: small enough that every corpus layout (2–8 stars)
/// splits into multiple tiles, so the equivalence actually exercises the
/// gather/scatter seams between tiles.
const TILE_STARS: u64 = 1;

fn backend(name: &str) -> Box<dyn Backend> {
    backend_by_name(name, 3).unwrap_or_else(|| panic!("unknown backend {name:?}"))
}

/// Spill `seed`'s system into a scratch directory, run `f`, clean up.
fn with_tiles<R>(seed: u64, tag: &str, f: impl FnOnce(&PathBuf) -> R) -> R {
    let dir = std::env::temp_dir().join(format!(
        "gaia-verify-tiled-{}-{tag}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Generator::new(fuzz::config_from_seed(seed))
        .generate_tiled(&dir, TILE_STARS)
        .unwrap_or_else(|e| panic!("seed {seed}: streamed generation failed: {e}"));
    let out = f(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The two capacity budgets each solve runs under: everything resident,
/// and half the matrix (clamped up to the largest tile so the cache can
/// still operate), which forces evictions mid-solve.
fn budgets(tiles_dir: &PathBuf) -> Vec<(&'static str, Option<u64>)> {
    let probe = TiledSystem::open(tiles_dir).expect("probe open");
    let half = (probe.matrix_bytes() / 2).max(probe.min_budget());
    vec![("unbounded", None), ("half-matrix", Some(half))]
}

fn open_at(dir: &PathBuf, budget_bytes: Option<u64>) -> TiledSystem {
    match budget_bytes {
        None => TiledSystem::open(dir),
        Some(b) => TiledSystem::open_with_budget(dir, gaia_sparse::CapacityBudget::limited(b)),
    }
    .expect("open tiled system")
}

#[test]
fn tiled_solves_are_bitwise_identical_to_resident_for_ordered_backends() {
    let cfg = LsqrConfig::fixed_iterations(FIXED_ITERS);
    for seed in corpus::corpus_seeds() {
        let sys = fuzz::system_from_seed(seed);
        with_tiles(seed, "bitwise", |dir| {
            for name in ["seq", "chunked-t3"] {
                let be = backend(name);
                let resident = solve(&sys, be.as_ref(), &cfg);
                for (blabel, bytes) in budgets(dir) {
                    let tiles = open_at(dir, bytes);
                    let tiled = solve_tiled(&tiles, be.as_ref(), &cfg)
                        .unwrap_or_else(|e| panic!("seed {seed} {name} {blabel}: {e}"));
                    assert_eq!(resident.iterations, tiled.iterations, "seed {seed} {name}");
                    for (i, (r, t)) in resident.x.iter().zip(&tiled.x).enumerate() {
                        assert_eq!(
                            r.to_bits(),
                            t.to_bits(),
                            "seed {seed} backend {name} budget {blabel}: x[{i}] \
                             resident={r:e} tiled={t:e}"
                        );
                    }
                    if bytes.is_some() {
                        assert!(
                            tiles.stats().evictions > 0,
                            "seed {seed} {name} {blabel}: bounded budget never evicted \
                             (the eviction path was not exercised)"
                        );
                    }
                }
            }
        });
    }
}

#[test]
fn tiled_striped_solves_match_resident_within_tolerance() {
    let cfg = LsqrConfig::fixed_iterations(FIXED_ITERS);
    for seed in corpus::corpus_seeds() {
        let sys = fuzz::system_from_seed(seed);
        with_tiles(seed, "striped", |dir| {
            let be = backend("striped-t3");
            let resident = solve(&sys, be.as_ref(), &cfg);
            for (blabel, bytes) in budgets(dir) {
                let tiles = open_at(dir, bytes);
                let tiled = solve_tiled(&tiles, be.as_ref(), &cfg)
                    .unwrap_or_else(|e| panic!("seed {seed} striped {blabel}: {e}"));
                for (i, (r, t)) in resident.x.iter().zip(&tiled.x).enumerate() {
                    assert!(
                        (r - t).abs() <= TOLERANCE * r.abs().max(1.0),
                        "seed {seed} striped budget {blabel}: x[{i}] resident={r:e} \
                         tiled={t:e} diff={:e}",
                        (r - t).abs()
                    );
                }
            }
        });
    }
}

#[test]
fn streamed_generation_round_trips_bit_identically() {
    for seed in corpus::corpus_seeds() {
        let resident = fuzz::system_from_seed(seed);
        with_tiles(seed, "roundtrip", |dir| {
            let tiles = TiledSystem::open(dir).expect("open");
            let assembled = tiles.assemble().expect("assemble");
            assert_eq!(assembled.layout(), resident.layout(), "seed {seed}");
            assert_eq!(
                assembled.known_terms(),
                resident.known_terms(),
                "seed {seed}: known terms"
            );
            assert_eq!(
                assembled.values_astro(),
                resident.values_astro(),
                "seed {seed}: astro values"
            );
            assert_eq!(
                assembled.values_att(),
                resident.values_att(),
                "seed {seed}: att values"
            );
            assert_eq!(
                assembled.values_instr(),
                resident.values_instr(),
                "seed {seed}: instr values"
            );
            assert_eq!(
                assembled.values_glob(),
                resident.values_glob(),
                "seed {seed}: glob values"
            );
            assert_eq!(
                assembled.matrix_index_astro(),
                resident.matrix_index_astro(),
                "seed {seed}: astro indices"
            );
            assert_eq!(
                assembled.matrix_index_att(),
                resident.matrix_index_att(),
                "seed {seed}: att indices"
            );
            assert_eq!(
                assembled.instr_col(),
                resident.instr_col(),
                "seed {seed}: instr columns"
            );
        });
    }
}
