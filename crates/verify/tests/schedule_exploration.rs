//! Schedule-exploration acceptance tests: every real conflict strategy
//! survives 200+ seeded adversarial schedules, the fixed-reduction-order
//! strategies are bitwise schedule-stable, and the deliberately racy
//! canary is caught (proving the harness can actually see races).

use gaia_verify::corpus;
use gaia_verify::schedule::{self, ScheduleReport};

fn assert_clean(rep: &ScheduleReport) {
    assert!(
        rep.passed(),
        "{}: {}/{} schedules failed (max error {:.3e}, expect_bitwise={}, bitwise_stable={})",
        rep.subject,
        rep.failures,
        rep.schedules,
        rep.max_abs_error,
        rep.expect_bitwise,
        rep.bitwise_stable,
    );
    assert!(
        !rep.statically_flagged,
        "{}: the static plan checker rejected a strategy the dynamic \
         harness accepts",
        rep.subject,
    );
    assert!(
        !rep.write_model_flagged && !rep.read_model_flagged,
        "{}: a static layer flag is set on a clean subject (write={}, read={})",
        rep.subject,
        rep.write_model_flagged,
        rep.read_model_flagged,
    );
}

#[test]
fn every_strategy_survives_200_seeded_schedules() {
    let seeds = corpus::schedule_seeds(200);
    for (name, strategy) in schedule::strategies() {
        let rep = schedule::explore_strategy(name, strategy, false, &seeds);
        assert_eq!(rep.schedules, 200);
        assert_clean(&rep);
    }
}

#[test]
fn streamed_budget_survives_seeded_schedules() {
    // The streamed worker budget changes chunk shapes and barrier timing;
    // a lighter pass per strategy keeps the suite fast.
    let seeds = corpus::schedule_seeds(40);
    for (name, strategy) in schedule::strategies() {
        let rep = schedule::explore_strategy(name, strategy, true, &seeds);
        assert_clean(&rep);
    }
}

#[test]
fn fixed_order_strategies_are_bitwise_stable_across_schedules() {
    let seeds = corpus::schedule_seeds(64);
    for (name, strategy) in schedule::strategies() {
        if !schedule::expect_bitwise(strategy) {
            continue;
        }
        let rep = schedule::explore_strategy(name, strategy, false, &seeds);
        assert!(
            rep.bitwise_stable,
            "{}: result bits changed under some schedule",
            rep.subject
        );
    }
}

/// The tuner's kernel-variant axis under adversarial schedules: every
/// non-scalar interior / layout, driven through the contended atomic
/// strategy, stays within tolerance of the sequential oracle.
#[test]
fn kernel_variants_survive_seeded_schedules() {
    let seeds = corpus::schedule_seeds(40);
    for (name, variant, layout) in schedule::variants() {
        let rep = schedule::explore_variant(name, variant, layout, &seeds);
        assert_clean(&rep);
    }
}

/// The must-fail canary: a correct harness flags the lost-update fixture.
/// If this test fails, the harness has gone blind to write-write races and
/// every other schedule-exploration result is meaningless.
#[test]
fn broken_strategy_canary_is_caught() {
    let seeds = corpus::schedule_seeds(8);
    let rep = schedule::explore_broken(&seeds);
    assert!(
        rep.failures > 0,
        "harness failed to detect the deliberate lost-update race over {} schedules \
         (max error {:.3e})",
        rep.schedules,
        rep.max_abs_error,
    );
    assert!(
        rep.statically_flagged,
        "the static plan checker failed to flag the canary's colliding \
         plain-shared write model as an illegal strategy/block pairing"
    );
    assert!(
        rep.write_model_flagged,
        "the write-disjointness layer missed the canary"
    );
    assert!(
        rep.read_model_flagged,
        "the read/write access-model layer missed the canary's stale \
         cross-lane reads"
    );
}

/// The static layers alone: the canary's access model is rejected without
/// running a single schedule — by the write-disjointness check *and* by
/// the read/write race check (two independent static detections).
#[test]
fn broken_write_model_is_statically_illegal() {
    let model = schedule::broken_write_model(90, 8);
    let err = gaia_backends::check_sections(&[model]).unwrap_err();
    assert!(
        err.to_string().contains("illegal strategy/block pairing"),
        "{err}"
    );
    assert!(
        err.has_write_violation(),
        "write layer must reject the canary: {err}"
    );
    assert!(
        err.has_read_violation(),
        "read/write layer must reject the canary: {err}"
    );
    assert!(err.to_string().contains("read/write race"), "{err}");
}
