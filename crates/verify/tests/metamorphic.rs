//! Metamorphic and trajectory acceptance tests across every backend.
//!
//! The cheap fixed-iteration properties (scaling equivariances, trajectory
//! agreement) run over the full committed corpus; the solve-to-convergence
//! properties subsample it (every third seed) to keep the suite's wall
//! time reasonable — the `verify` binary covers the full cross product.

use gaia_verify::metamorphic::{self, PropertyOutcome, BACKENDS, THREADS};
use gaia_verify::{corpus, trajectory};

fn full_corpus() -> Vec<u64> {
    corpus::corpus_seeds()
}

fn subsampled_corpus() -> Vec<u64> {
    corpus::corpus_seeds().into_iter().step_by(3).collect()
}

fn assert_all_passed(outcomes: Vec<PropertyOutcome>) {
    let failures: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.passed)
        .map(|o| {
            format!(
                "{} / {} / seed {}: {}",
                o.property, o.backend, o.seed, o.detail
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} checks failed:\n{}",
        failures.len(),
        outcomes.len(),
        failures.join("\n")
    );
}

#[test]
fn rhs_scaling_equivariance_holds_on_every_backend() {
    let mut outcomes = Vec::new();
    for backend in BACKENDS {
        for &seed in &full_corpus() {
            outcomes.push(metamorphic::check_rhs_scaling(seed, backend));
        }
    }
    assert_all_passed(outcomes);
}

#[test]
fn column_scaling_equivariance_holds_on_every_backend() {
    let mut outcomes = Vec::new();
    for backend in BACKENDS {
        for &seed in &full_corpus() {
            outcomes.push(metamorphic::check_column_scaling(seed, backend));
        }
    }
    assert_all_passed(outcomes);
}

#[test]
fn row_permutation_invariance_holds_on_every_backend() {
    let mut outcomes = Vec::new();
    for backend in BACKENDS {
        for &seed in &subsampled_corpus() {
            outcomes.push(metamorphic::check_row_permutation(seed, backend));
        }
    }
    assert_all_passed(outcomes);
}

#[test]
fn known_solutions_converge_on_every_backend() {
    let mut outcomes = Vec::new();
    for backend in BACKENDS {
        for &seed in &subsampled_corpus() {
            outcomes.push(metamorphic::check_known_solution(seed, backend));
        }
    }
    assert_all_passed(outcomes);
}

#[test]
fn checkpoint_resume_agrees_with_uninterrupted_solves() {
    let mut outcomes = Vec::new();
    for backend in BACKENDS {
        for &seed in &full_corpus() {
            outcomes.push(metamorphic::check_checkpoint_resume(seed, backend));
        }
    }
    assert_all_passed(outcomes);
}

#[test]
fn lsqr_trajectories_stay_within_the_ulp_budget_on_every_backend() {
    let mut failures = Vec::new();
    for backend in BACKENDS.iter().filter(|b| **b != "seq") {
        for &seed in &full_corpus() {
            let t = trajectory::compare_with_seq(seed, backend, THREADS);
            if !t.within_budget() {
                failures.push(format!(
                    "{} / seed {}: {} ulp on {} at iteration {}",
                    t.backend, t.seed, t.max_ulp, t.worst_scalar, t.worst_iteration
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "trajectory divergence exceeded {} ulp:\n{}",
        trajectory::TRAJECTORY_ULP_BUDGET,
        failures.join("\n")
    );
}

/// Calibration helper, not a gate: prints the observed worst-case ULP
/// divergence per backend over the corpus so [`trajectory::TRAJECTORY_ULP_BUDGET`]
/// can be re-derived after solver or kernel changes. Run with
/// `cargo test -p gaia-verify --test metamorphic -- --ignored --nocapture`.
#[test]
#[ignore = "calibration printer, not a gate"]
fn print_trajectory_divergence_calibration() {
    for backend in BACKENDS.iter().filter(|b| **b != "seq") {
        let mut worst = trajectory::compare_with_seq(0, backend, THREADS);
        for &seed in &full_corpus() {
            let t = trajectory::compare_with_seq(seed, backend, THREADS);
            if t.max_ulp > worst.max_ulp {
                worst = t;
            }
        }
        println!(
            "{:<12} worst {} ulp ({} at iteration {}, seed {})",
            worst.backend, worst.max_ulp, worst.worst_scalar, worst.worst_iteration, worst.seed
        );
    }
}
