//! Metamorphic solver properties: invariants a correct LSQR must satisfy
//! regardless of backend, checked without any external oracle.
//!
//! Each property transforms a seeded input system and states how the
//! solution must respond. For backends with a fixed reduction order the
//! scaling properties hold **bitwise** (the transformations are exact
//! powers of two, which commute with IEEE-754 rounding); for
//! reduction-order-nondeterministic backends they hold within
//! [`NONDET_TOLERANCE`].

use gaia_backends::{backend_by_name, Backend};
use gaia_lsqr::checkpoint::Checkpoint;
use gaia_lsqr::lsqr::Lsqr;
use gaia_lsqr::{solve, LsqrConfig};
use gaia_sparse::{fuzz, Generator, GeneratorConfig, Rhs, ASTRO_PARAMS_PER_STAR};
use serde::Serialize;

/// Backends exercised by the suite: the sequential reference plus every
/// conflict strategy the paper's ports map onto, the stream-overlapped
/// budget, the production-style hybrid composition, and the kernel
/// variant / matrix-layout axes the auto-tuner searches over.
pub const BACKENDS: &[&str] = &[
    "seq",
    "atomic",
    "casloop",
    "replicated",
    "striped",
    "streamed",
    "hybrid",
    "unrolled",
    "blocked",
    "ell",
];

/// Worker threads handed to every parallel backend under test.
pub const THREADS: usize = 4;

/// Iteration count for the fixed-iteration (bitwise) properties — long
/// enough to exercise the full update cycle, short of any stopping rule.
pub const FIXED_ITERS: usize = 12;

/// Tolerance for equivariance properties on nondeterministic backends,
/// where the two runs differ by reduction-order rounding noise.
pub const NONDET_TOLERANCE: f64 = 1e-7;

/// Tolerance for agreement between two independent solves-to-convergence.
pub const CONVERGED_TOLERANCE: f64 = 1e-5;

/// Relative residual a noise-free (consistent) system must reach.
pub const RESIDUAL_TOLERANCE: f64 = 1e-6;

/// Relative residual-norm agreement between an interrupted-and-resumed
/// solve and an uninterrupted one on a *nondeterministic* backend. The two
/// runs sample independent reduction orders, which at a fixed iteration
/// count shifts the convergence phase slightly; measured run-to-run
/// differences over the corpus reach ~3e-5, while actual resume corruption
/// (stale vector, wrong iteration) lands orders of magnitude higher.
pub const RESUME_RNORM_TOLERANCE: f64 = 1e-3;

/// Whether `backend` reduces in a fixed order, making whole runs
/// bitwise-reproducible (see the determinism table in `gaia-backends`).
pub fn is_deterministic(backend: &str) -> bool {
    matches!(
        backend,
        "seq" | "chunked" | "replicated" | "streamed" | "hybrid" | "unrolled" | "blocked" | "ell"
    )
}

/// A property checker: (seed, backend name) → outcome.
pub type PropertyCheck = fn(u64, &str) -> PropertyOutcome;

/// Outcome of one (property, backend, seed) check.
#[derive(Debug, Clone, Serialize)]
pub struct PropertyOutcome {
    /// Property name (e.g. `rhs-scaling`).
    pub property: String,
    /// Backend under test.
    pub backend: String,
    /// Corpus seed that generated the system.
    pub seed: u64,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable measurement (error magnitudes, stop reasons).
    pub detail: String,
}

fn outcome(
    property: &str,
    backend: &str,
    seed: u64,
    passed: bool,
    detail: String,
) -> PropertyOutcome {
    gaia_telemetry::record_verify_property(!passed);
    PropertyOutcome {
        property: property.into(),
        backend: backend.into(),
        seed,
        passed,
        detail,
    }
}

fn backend(name: &str) -> Box<dyn Backend> {
    backend_by_name(name, THREADS).unwrap_or_else(|| panic!("unknown backend {name:?}"))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// **RHS scaling equivariance**: `b → 2b` must give `x → 2x`. Doubling is
/// exact in IEEE-754, so β doubles exactly, `u = b/β` is bit-identical, the
/// whole bidiagonalization repeats, and only the φ̄ chain (hence `x`)
/// doubles — bitwise on deterministic backends.
pub fn check_rhs_scaling(seed: u64, backend_name: &str) -> PropertyOutcome {
    let sys = fuzz::system_from_seed(seed);
    let mut scaled = sys.clone();
    scaled.set_known_terms(sys.known_terms().iter().map(|v| 2.0 * v).collect());

    let cfg = LsqrConfig::fixed_iterations(FIXED_ITERS);
    let be = backend(backend_name);
    let x = solve(&sys, &be, &cfg).x;
    let x2 = solve(&scaled, &be, &cfg).x;
    let doubled: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();

    let (passed, detail) = if is_deterministic(backend_name) {
        (bitwise_eq(&x2, &doubled), "bitwise x(2b) == 2·x(b)".into())
    } else {
        let err = max_abs_diff(&x2, &doubled);
        (
            err.is_finite() && err <= NONDET_TOLERANCE,
            format!("max |x(2b) − 2·x(b)| = {err:.3e}"),
        )
    };
    outcome("rhs-scaling", backend_name, seed, passed, detail)
}

/// **Column-scaling equivariance**: doubling column `j` of `A` under the
/// Jacobi preconditioner leaves the preconditioned trajectory untouched
/// (the column norm doubles exactly, its inverse halves exactly, and the
/// products `2a · d/2` round identically) and exactly halves `x_j`.
pub fn check_column_scaling(seed: u64, backend_name: &str) -> PropertyOutcome {
    let sys = fuzz::system_from_seed(seed);
    // Target an astrometric column: each star block is dense in its five
    // columns, so the scaled column always carries coefficients.
    let layout = *sys.layout();
    let col = (seed % layout.n_stars) * ASTRO_PARAMS_PER_STAR as u64 + (seed / 7) % 5;
    let mut scaled = sys.clone();
    let touched = scaled.scale_column(col, 2.0);
    assert!(touched > 0, "astro column {col} has no coefficients");

    // fixed_iterations keeps precondition = true, which this property needs.
    let cfg = LsqrConfig::fixed_iterations(FIXED_ITERS);
    let be = backend(backend_name);
    let x = solve(&sys, &be, &cfg).x;
    let xs = solve(&scaled, &be, &cfg).x;
    let mut want = x.clone();
    want[col as usize] /= 2.0;

    let (passed, detail) = if is_deterministic(backend_name) {
        (
            bitwise_eq(&xs, &want),
            format!("bitwise: x_j halves (col {col}), others unchanged"),
        )
    } else {
        let err = max_abs_diff(&xs, &want);
        (
            err.is_finite() && err <= NONDET_TOLERANCE,
            format!("col {col}: max |x_scaled − want| = {err:.3e}"),
        )
    };
    outcome("column-scaling", backend_name, seed, passed, detail)
}

/// **Row-permutation invariance**: reordering observations within a star
/// (and constraint rows among themselves) describes the same least-squares
/// problem, so two solves-to-convergence must agree on `x`.
pub fn check_row_permutation(seed: u64, backend_name: &str) -> PropertyOutcome {
    let sys = fuzz::system_from_seed(seed);
    let mut permuted = sys.clone();
    permuted
        .permute_rows(&fuzz::permutation_within_stars(seed ^ 0x00b5, sys.layout()))
        .expect("fuzz permutations are always valid");

    let cfg = LsqrConfig::new().compute_var(false).max_iters(600);
    let be = backend(backend_name);
    let a = solve(&sys, &be, &cfg);
    let p = solve(&permuted, &be, &cfg);
    let err = max_abs_diff(&a.x, &p.x);
    let passed = err.is_finite() && err <= CONVERGED_TOLERANCE;
    outcome(
        "row-permutation",
        backend_name,
        seed,
        passed,
        format!(
            "max |x − x_perm| = {err:.3e} (stop {:?} / {:?})",
            a.stop, p.stop
        ),
    )
}

/// **Known-solution residual convergence**: on a noise-free system
/// synthesized as `b = A·x_true`, the solve must drive the independently
/// recomputed relative residual ‖b − Ax‖/‖b‖ below [`RESIDUAL_TOLERANCE`]
/// (rank-deficient layouts may converge to a different minimizer than
/// `x_true`, but a consistent system always admits a zero residual).
pub fn check_known_solution(seed: u64, backend_name: &str) -> PropertyOutcome {
    let config = GeneratorConfig::new(fuzz::layout_from_seed(seed))
        .seed(seed ^ 0x0f2ee5eed)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
    let (sys, truth) = Generator::new(config).generate_with_truth();
    let truth = truth.expect("Rhs::FromTrueSolution always yields a truth vector");

    let be = backend(backend_name);
    let sol = solve(
        &sys,
        &be,
        &LsqrConfig::new().compute_var(false).max_iters(800),
    );

    let bnorm = sys.known_terms().iter().map(|v| v * v).sum::<f64>().sqrt();
    let rnorm = (0..sys.n_rows())
        .map(|r| {
            let d = sys.row_dot(r, &sol.x) - sys.known_terms()[r];
            d * d
        })
        .sum::<f64>()
        .sqrt();
    let rel = rnorm / bnorm;
    let xerr = max_abs_diff(&sol.x, &truth);
    let passed = rel.is_finite() && rel <= RESIDUAL_TOLERANCE;
    outcome(
        "known-solution",
        backend_name,
        seed,
        passed,
        format!(
            "‖b − Ax‖/‖b‖ = {rel:.3e}, max |x − x_true| = {xerr:.3e}, stop {:?} after {}",
            sol.stop, sol.iterations
        ),
    )
}

/// **Checkpoint/resume identity**: interrupting a solve, round-tripping the
/// state through the serialized checkpoint format, and resuming must agree
/// with the uninterrupted solve. The serialized state must restore
/// bit-identically on *every* backend; the resumed solve must then match
/// the uninterrupted one bitwise on deterministic backends. On
/// nondeterministic backends the two runs are independent samples of the
/// reduction order, and on ill-conditioned systems their iterates drift
/// apart along flat directions — so the invariant compared there is the
/// *residual norm* (what LSQR minimizes, so it is insensitive to
/// flat-direction drift in `x`), which must agree to
/// [`RESUME_RNORM_TOLERANCE`] relative.
pub fn check_checkpoint_resume(seed: u64, backend_name: &str) -> PropertyOutcome {
    let sys = fuzz::system_from_seed(seed);
    let cfg = LsqrConfig::new().compute_var(false).max_iters(60);
    let be = backend(backend_name);
    let solver = Lsqr::new(&sys, &be, cfg);
    let direct = solver.run();

    let mut state = solver.init_state();
    for _ in 0..7 {
        if state.is_done() {
            break;
        }
        solver.step(&mut state);
    }
    let mut buf = Vec::new();
    Checkpoint::capture(&sys, &cfg, &state)
        .write_to(&mut buf)
        .expect("in-memory checkpoint serialization");
    let restored = Checkpoint::read_from(buf.as_slice())
        .expect("checkpoint round-trip")
        .restore(&sys, &cfg)
        .expect("checkpoint restore");
    let state_round_trip = restored == state;
    let resumed = solver.run_from(restored);

    let (passed, detail) = if is_deterministic(backend_name) {
        (
            state_round_trip
                && bitwise_eq(&resumed.x, &direct.x)
                && resumed.iterations == direct.iterations
                && resumed.stop == direct.stop,
            format!(
                "state round-trip {state_round_trip}, bitwise resume (stop {:?} at {} vs {:?} at {})",
                resumed.stop, resumed.iterations, direct.stop, direct.iterations
            ),
        )
    } else {
        let rdiff = (resumed.rnorm - direct.rnorm).abs() / (1.0 + direct.rnorm.abs());
        (
            state_round_trip && rdiff.is_finite() && rdiff <= RESUME_RNORM_TOLERANCE,
            format!("state round-trip {state_round_trip}, relative |Δrnorm| = {rdiff:.3e}"),
        )
    };
    outcome("checkpoint-resume", backend_name, seed, passed, detail)
}

/// Every property checker, with its name (drives the CLI and the suites).
pub fn all_checks() -> Vec<(&'static str, PropertyCheck)> {
    vec![
        ("rhs-scaling", check_rhs_scaling),
        ("column-scaling", check_column_scaling),
        ("row-permutation", check_row_permutation),
        ("known-solution", check_known_solution),
        ("checkpoint-resume", check_checkpoint_resume),
    ]
}
