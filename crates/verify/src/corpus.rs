//! The committed seed corpus driving the metamorphic and trajectory suites.
//!
//! Seeds live in `corpus/sparse_seeds.txt`, compiled into the binary with
//! `include_str!` so a checkout is all that is needed to reproduce a CI
//! failure (the vendored property-testing stand-in has no shrinking or
//! persistence, so the corpus *is* the regression file). Replay one seed
//! with `scripts/replay_verify_seed.sh <seed>`.

/// Raw contents of `corpus/sparse_seeds.txt`.
const CORPUS: &str = include_str!("../corpus/sparse_seeds.txt");

/// The committed seeds, in file order. Panics if the corpus file is
/// malformed — that is a repo bug, not a runtime condition.
pub fn corpus_seeds() -> Vec<u64> {
    CORPUS
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            l.parse::<u64>()
                .unwrap_or_else(|e| panic!("corpus/sparse_seeds.txt: bad seed {l:?}: {e}"))
        })
        .collect()
}

/// The fixed schedule-seed set `0..n` used by the schedule-exploration
/// layer (schedules are cheap, so they are dense rather than curated).
pub fn schedule_seeds(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_duplicate_free() {
        let seeds = corpus_seeds();
        assert!(seeds.len() >= 16, "corpus too small: {}", seeds.len());
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len(), "duplicate corpus seeds");
    }

    #[test]
    fn corpus_spans_small_and_large_seed_magnitudes() {
        let seeds = corpus_seeds();
        assert!(seeds.iter().any(|&s| s < 100));
        assert!(seeds.iter().any(|&s| s > u64::MAX / 2));
    }

    #[test]
    fn schedule_seeds_are_dense_from_zero() {
        assert_eq!(schedule_seeds(4), vec![0, 1, 2, 3]);
        assert!(schedule_seeds(0).is_empty());
    }
}
