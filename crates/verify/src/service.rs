//! Service-level invariant checking over `gaia-serve` event logs.
//!
//! The serving layer's contract is lifecycle-shaped, not numerical:
//! **every submitted request resolves to exactly one typed outcome**.
//! The service appends every transition to its event log; this module
//! replays a log and proves the invariants the overload bench and the CI
//! smoke job rely on:
//!
//! 1. every `Submitted` id is `Admitted` XOR `Shed` (exactly one);
//! 2. every `Admitted` id has exactly one `Finished`;
//! 3. `Finished`, `Started`, and `Retried` appear only for admitted ids;
//! 4. a shed id is never `Started` and never `Finished`;
//! 5. events reference only submitted ids, and per-id ordering is
//!    `Submitted` → (`Admitted` | `Shed`) → `Started`* → `Finished`.
//!
//! Violations are collected (not short-circuited) so a broken log yields
//! the full defect list in one pass — the same style as the metamorphic
//! suite.

use std::collections::HashMap;

use gaia_serve::{OutcomeKind, ServiceEvent};

/// Aggregated result of one invariant pass over an event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceAudit {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Terminal outcomes observed, by kind.
    pub finished: Vec<(OutcomeKind, usize)>,
    /// Invariant violations found (empty = the log is sound).
    pub violations: Vec<String>,
}

impl ServiceAudit {
    /// True when the log satisfied every invariant.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Default)]
struct PerRequest {
    submitted: usize,
    admitted: usize,
    shed: usize,
    started: usize,
    finished: usize,
    /// Event-order markers for the per-id ordering check.
    first_terminal_seen: bool,
}

/// Replay `events` and check every service-level invariant. Each
/// violation is recorded via `gaia_telemetry::record_verify_property`
/// alongside the pass/fail counters of the metamorphic suite.
pub fn audit_service_log(events: &[ServiceEvent]) -> ServiceAudit {
    let mut per: HashMap<u64, PerRequest> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut finished_kinds: HashMap<OutcomeKind, usize> = HashMap::new();

    for event in events {
        let id = event.id();
        if !per.contains_key(&id) {
            if !matches!(event, ServiceEvent::Submitted { .. }) {
                violations.push(format!("id {id}: {event:?} precedes Submitted"));
            }
            order.push(id);
        }
        let r = per.entry(id).or_default();
        match event {
            ServiceEvent::Submitted { .. } => r.submitted += 1,
            ServiceEvent::Admitted { .. } => r.admitted += 1,
            ServiceEvent::Shed { .. } => r.shed += 1,
            ServiceEvent::Started { .. } => {
                if r.admitted == 0 {
                    violations.push(format!("id {id}: Started without Admitted"));
                }
                if r.first_terminal_seen {
                    violations.push(format!("id {id}: Started after Finished"));
                }
                r.started += 1;
            }
            ServiceEvent::Retried { .. } => {
                if r.started == 0 {
                    violations.push(format!("id {id}: Retried without Started"));
                }
            }
            ServiceEvent::Finished { kind, .. } => {
                r.finished += 1;
                r.first_terminal_seen = true;
                *finished_kinds.entry(*kind).or_default() += 1;
            }
        }
    }

    let mut submitted = 0;
    let mut admitted = 0;
    let mut shed = 0;
    for id in &order {
        // `order` only holds keys inserted above; a missing entry would
        // be a bug in this function, not in the log.
        let Some(r) = per.get(id) else { continue };
        submitted += r.submitted;
        admitted += r.admitted;
        shed += r.shed;
        if r.submitted != 1 {
            violations.push(format!("id {id}: submitted {} times", r.submitted));
        }
        if r.admitted + r.shed != 1 {
            violations.push(format!(
                "id {id}: admitted {} + shed {} times (want exactly one of the two)",
                r.admitted, r.shed
            ));
        }
        if r.admitted == 1 && r.finished != 1 {
            violations.push(format!(
                "id {id}: admitted but finished {} times (want exactly 1)",
                r.finished
            ));
        }
        if r.shed == 1 && (r.started > 0 || r.finished > 0) {
            violations.push(format!(
                "id {id}: shed but started {} / finished {} times",
                r.started, r.finished
            ));
        }
    }

    let mut finished: Vec<(OutcomeKind, usize)> = finished_kinds.into_iter().collect();
    finished.sort_by_key(|(k, _)| format!("{k}"));

    gaia_telemetry::record_verify_property(!violations.is_empty());
    ServiceAudit {
        submitted,
        admitted,
        shed,
        finished,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_serve::ShedReason;

    fn sound_log() -> Vec<ServiceEvent> {
        vec![
            ServiceEvent::Submitted {
                id: 0,
                tenant: "a".into(),
            },
            ServiceEvent::Admitted { id: 0 },
            ServiceEvent::Submitted {
                id: 1,
                tenant: "b".into(),
            },
            ServiceEvent::Shed {
                id: 1,
                reason: ShedReason::QueueFull,
            },
            ServiceEvent::Started {
                id: 0,
                threads: 2,
                ranks: 1,
            },
            ServiceEvent::Retried { id: 0, attempt: 1 },
            ServiceEvent::Finished {
                id: 0,
                kind: OutcomeKind::Converged,
            },
        ]
    }

    #[test]
    fn a_sound_log_passes_with_correct_tallies() {
        let audit = audit_service_log(&sound_log());
        assert!(audit.is_sound(), "{:?}", audit.violations);
        assert_eq!((audit.submitted, audit.admitted, audit.shed), (2, 1, 1));
        assert_eq!(audit.finished, vec![(OutcomeKind::Converged, 1)]);
    }

    #[test]
    fn a_dropped_admitted_request_is_a_violation() {
        let mut log = sound_log();
        log.retain(|e| !matches!(e, ServiceEvent::Finished { .. }));
        let audit = audit_service_log(&log);
        assert!(!audit.is_sound());
        assert!(audit.violations.iter().any(|v| v.contains("finished 0")));
    }

    #[test]
    fn double_resolution_and_shed_then_started_are_violations() {
        let mut log = sound_log();
        log.push(ServiceEvent::Finished {
            id: 0,
            kind: OutcomeKind::Faulted,
        });
        log.push(ServiceEvent::Started {
            id: 1,
            threads: 1,
            ranks: 1,
        });
        let audit = audit_service_log(&log);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.contains("finished 2 times")));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.contains("shed but started")));
    }

    #[test]
    fn events_for_unknown_ids_are_violations() {
        let log = vec![ServiceEvent::Finished {
            id: 9,
            kind: OutcomeKind::Converged,
        }];
        let audit = audit_service_log(&log);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.contains("precedes Submitted")));
    }
}
