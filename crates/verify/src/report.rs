//! JSON verification artifacts under `results/verify/`.
//!
//! One verification run — the `verify` binary or CI's `verify` job —
//! serializes everything it measured into a single pretty-printed JSON
//! file, mirroring the perf artifacts `gaia-telemetry` writes under
//! `results/`: machine-readable, diffable across commits, and uploadable
//! as a CI artifact.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::metamorphic::PropertyOutcome;
use crate::schedule::ScheduleReport;
use crate::trajectory::TrajectoryDivergence;

/// Default artifact directory, relative to the repo root.
pub const DEFAULT_DIR: &str = "results/verify";

/// Everything one verification run measured.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Corpus seeds driving the metamorphic and trajectory layers.
    pub seeds: Vec<u64>,
    /// Adversarial schedules replayed per strategy.
    pub schedules_per_strategy: usize,
    /// Schedule-exploration results, one per (strategy, worker budget).
    pub schedule: Vec<ScheduleReport>,
    /// Metamorphic property outcomes.
    pub properties: Vec<PropertyOutcome>,
    /// Per-backend trajectory divergence from the sequential reference.
    pub trajectories: Vec<TrajectoryDivergence>,
}

impl VerifyReport {
    /// An empty report with the current schema tag.
    pub fn new() -> Self {
        VerifyReport {
            schema: "gaia-verify/v1".into(),
            seeds: Vec::new(),
            schedules_per_strategy: 0,
            schedule: Vec::new(),
            properties: Vec::new(),
            trajectories: Vec::new(),
        }
    }

    /// True iff every layer met its acceptance criterion.
    pub fn passed(&self) -> bool {
        self.schedule.iter().all(|r| r.passed())
            && self.properties.iter().all(|p| p.passed)
            && self.trajectories.iter().all(|t| t.within_budget())
    }

    /// Write the report as `<dir>/<name>.json` (name sanitized to
    /// `[A-Za-z0-9_-]`), creating the directory if needed.
    pub fn write_json(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", sanitize(name)));
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

impl Default for VerifyReport {
    fn default() -> Self {
        VerifyReport::new()
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("gaia-verify-report-{}", std::process::id()));
        let mut report = VerifyReport::new();
        report.seeds = vec![1, 2, 3];
        let path = report.write_json(&dir, "unit test/../report").unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("unit_test"));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"gaia-verify/v1\""));
        assert!(report.passed(), "an empty report has nothing failing");
        fs::remove_dir_all(&dir).ok();
    }
}
