//! # gaia-verify
//!
//! Verification harness for the AVU-GSR solver, attacking the two ways a
//! performance-portable solver can silently go wrong:
//!
//! 1. **Concurrency** — [`schedule`] replays every `aprod2` conflict
//!    strategy under seeded adversarial thread schedules (permuted job
//!    pickup, forced preemption inside the kernels' race windows, barrier
//!    skew, worker starvation) via the `sched-test` hooks in
//!    `gaia_backends::exec`, and checks the results stay bitwise-stable
//!    (owner-computes, replicated) or tolerance-bounded (atomic, CAS,
//!    lock-striped) against the sequential oracle. A deliberately racy
//!    lost-update fixture ([`schedule::explore_broken`]) proves the
//!    harness actually catches write-write races.
//! 2. **Numerics** — [`metamorphic`] checks solver invariants that need no
//!    external oracle (RHS scaling, column-scaling equivariance under the
//!    Jacobi preconditioner, star-preserving row permutation, known-solution
//!    residual convergence, checkpoint/resume identity), and [`trajectory`]
//!    compares per-iteration LSQR scalars (α, β, ρ̄, φ̄, ‖r‖, ‖Aᵀr‖) of every
//!    parallel backend against the sequential reference within a calibrated
//!    ULP budget.
//!
//! Systems under test come from `gaia_sparse::fuzz` — pure functions of a
//! `u64` seed — driven by the committed corpus in `corpus/sparse_seeds.txt`
//! (see [`corpus`]). The `verify` binary runs all layers and writes a JSON
//! artifact under `results/verify/` (see [`report`]).
//!
//! This crate is deliberately **not** part of the tier-1 test set: it pulls
//! the `sched-test` feature into `gaia-backends` and runs adversarial
//! schedules that spin-delay workers. Run it explicitly with
//! `cargo test -p gaia-verify` or `cargo run -p gaia-verify --bin verify`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod corpus;
pub mod metamorphic;
pub mod report;
pub mod schedule;
pub mod service;
pub mod trajectory;
pub mod ulp;
