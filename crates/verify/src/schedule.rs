//! Deterministic schedule exploration over the `aprod2` conflict strategies.
//!
//! Thread-interleaving bugs hide from ordinary tests because the scheduler
//! rarely visits the bad orderings. This module drives the executor pool
//! through **seeded adversarial schedules** (`gaia_backends::exec::sched`,
//! compiled in via the `sched-test` feature): job pickup order is permuted,
//! workers are forcibly preempted at the probe points inside the atomic,
//! CAS, lock-striped, and reduction kernels, section barriers are skewed,
//! and individual worker lanes are starved. Each strategy is replayed under
//! many seeds and compared against the sequential oracle:
//!
//! * `OwnerComputes` and `Replicated` reduce in a fixed order, so their
//!   results must be **bitwise identical** across every schedule;
//! * `Atomic`, `CasLoop`, and `LockStriped` commute updates, so their
//!   results may differ in summation order but must stay within
//!   [`SCHEDULE_TOLERANCE`] of the oracle under *every* schedule.
//!
//! [`explore_broken`] is the harness's own canary: a deliberately racy
//! lost-update kernel that a correct harness **must** flag. CI fails if the
//! canary passes.

use std::sync::atomic::Ordering;

use gaia_backends::exec::sched::{self, ScheduleController};
use gaia_backends::exec::{ExecutorPool, Job};
use gaia_backends::{atomicf64, kernels};
use gaia_backends::{
    check_sections, Aprod2Spec, Aprod2Strategy, Backend, KernelVariant, LaunchPlan, PlanDims,
    PlanError, ReadAccess, ReadSpace, SectionId, SectionModel, SeqBackend, Tuning, WriteAccess,
};
use gaia_sparse::{
    AttitudePattern, Generator, GeneratorConfig, MatrixLayout, Rhs, SparseSystem, SystemLayout,
};
use serde::Serialize;

/// Worst-case |got − oracle| accepted from a reduction-order-nondeterministic
/// strategy on the tiny exploration system. Calibrated far above rounding
/// noise (observed ≲ 1e-13) and far below the smallest lost-update error
/// (one dropped `a·y` term is O(0.01..1)).
pub const SCHEDULE_TOLERANCE: f64 = 1e-10;

/// Preemption-probe tag of the deliberately racy [`explore_broken`] fixture.
pub const BROKEN_PROBE: u32 = 0xBAD;

/// Threads in the exploration pool (jobs outnumber workers so pickup-order
/// permutation actually changes the interleaving).
pub const THREADS: usize = 4;

/// Every real conflict strategy, with the stable name used in reports.
pub fn strategies() -> Vec<(&'static str, Aprod2Strategy)> {
    vec![
        ("owner-computes", Aprod2Strategy::OwnerComputes),
        ("atomic", Aprod2Strategy::Atomic),
        ("casloop", Aprod2Strategy::CasLoop),
        ("replicated", Aprod2Strategy::Replicated),
        ("lock-striped", Aprod2Strategy::LockStriped { stripes: 8 }),
    ]
}

/// Whether `strategy` must be bitwise identical across schedules (fixed
/// reduction order) rather than merely tolerance-bounded.
pub fn expect_bitwise(strategy: Aprod2Strategy) -> bool {
    matches!(
        strategy,
        Aprod2Strategy::OwnerComputes | Aprod2Strategy::Replicated
    )
}

/// The kernel-variant axis the auto-tuner searches, with the stable name
/// used in reports: every non-scalar (interior, layout) point, each run
/// under the contended [`Aprod2Strategy::Atomic`] strategy so the variant
/// atomic interiors actually execute under adversarial preemption.
pub fn variants() -> Vec<(&'static str, KernelVariant, MatrixLayout)> {
    vec![
        ("unrolled", KernelVariant::Unrolled, MatrixLayout::RowMajor),
        ("blocked", KernelVariant::Blocked, MatrixLayout::RowMajor),
        ("ell", KernelVariant::Scalar, MatrixLayout::Ell),
    ]
}

/// Replay a kernel-variant plan under `seeds` adversarial schedules:
/// the atomic strategy with a non-default interior must stay within
/// [`SCHEDULE_TOLERANCE`] of the sequential oracle on every schedule,
/// exactly like the scalar interiors.
pub fn explore_variant(
    name: &str,
    variant: KernelVariant,
    layout: MatrixLayout,
    seeds: &[u64],
) -> ScheduleReport {
    let sys = test_system();
    let y = probe_vector(sys.n_rows());

    let mut want = vec![0.0f64; sys.n_cols()];
    SeqBackend.aprod2(&sys, &y, &mut want);

    let plan = LaunchPlan::new(
        Tuning {
            threads: THREADS,
            chunks_per_thread: 2,
        },
        Aprod2Spec::uniform(Aprod2Strategy::Atomic),
    )
    .with_variant(variant)
    .with_matrix_layout(layout);
    let analysis = plan.analyze(&PlanDims::for_system(&sys));
    let (statically_flagged, write_model_flagged, read_model_flagged) = static_flags(&analysis);

    let pool = ExecutorPool::new(THREADS);
    let mut baseline = vec![0.0f64; sys.n_cols()];
    plan.aprod2(&pool, &sys, &y, &mut baseline);

    let mut failures = 0usize;
    let mut max_abs_error = 0.0f64;
    let mut bitwise_stable = true;
    for &seed in seeds {
        pool.set_schedule(Some(ScheduleController::from_seed(seed)));
        let mut got = vec![0.0f64; sys.n_cols()];
        plan.aprod2(&pool, &sys, &y, &mut got);
        pool.set_schedule(None);

        let err = max_abs_diff(&got, &want);
        max_abs_error = max_abs_error.max(err);
        let failed = !err.is_finite() || err > SCHEDULE_TOLERANCE;
        if failed {
            failures += 1;
        }
        if bits_differ(&got, &baseline) {
            bitwise_stable = false;
        }
        gaia_telemetry::record_verify_schedule(failed);
    }

    ScheduleReport {
        subject: format!("atomic+{name}"),
        schedules: seeds.len(),
        failures,
        max_abs_error,
        expect_bitwise: false,
        bitwise_stable,
        statically_flagged,
        write_model_flagged,
        read_model_flagged,
    }
}

/// Outcome of replaying one subject under a batch of seeded schedules.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleReport {
    /// Strategy name, plus `+streamed` when run under the streamed budget.
    pub subject: String,
    /// Number of adversarial schedules replayed.
    pub schedules: usize,
    /// Schedules whose result left [`SCHEDULE_TOLERANCE`] of the oracle.
    pub failures: usize,
    /// Worst |got − oracle| over all schedules.
    pub max_abs_error: f64,
    /// Whether this subject is required to be bitwise schedule-stable.
    pub expect_bitwise: bool,
    /// Whether every schedule reproduced the unperturbed run bit-for-bit.
    pub bitwise_stable: bool,
    /// Whether the *static* plan checker (`gaia_backends::plan_check`)
    /// already rejected this subject's access model before any schedule
    /// ran. Real strategies must report `false`; the racy canary must
    /// report `true` — the static and dynamic layers cross-check each
    /// other.
    pub statically_flagged: bool,
    /// Whether the write-disjointness layer specifically rejected the
    /// model (colliding / gapped / out-of-bounds write-sets).
    pub write_model_flagged: bool,
    /// Whether the read/write access layer specifically rejected the model
    /// (a job reads what another unsynchronized job writes in the same
    /// wave). Together with `write_model_flagged` and the dynamic
    /// `failures`, the canary must trip all three independent layers.
    pub read_model_flagged: bool,
}

/// Split a static analysis result into (any, write-layer, read-layer)
/// flags for a [`ScheduleReport`].
fn static_flags<T>(result: &Result<T, PlanError>) -> (bool, bool, bool) {
    match result {
        Ok(_) => (false, false, false),
        Err(e) => (true, e.has_write_violation(), e.has_read_violation()),
    }
}

impl ScheduleReport {
    /// True iff the subject met its determinism class: no tolerance
    /// failures, and bitwise stability where required.
    pub fn passed(&self) -> bool {
        self.failures == 0 && (!self.expect_bitwise || self.bitwise_stable)
    }
}

/// The fixed exploration system: the tiny layout with a scan-law attitude,
/// so the attitude section (the contended one) is densely revisited.
fn test_system() -> SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(7)
            .attitude(AttitudePattern::ScanLaw { revolutions: 8 })
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate()
}

/// A deterministic, sign-varying, nowhere-zero probe vector.
fn probe_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * std::f64::consts::FRAC_PI_4).sin() + 0.25)
        .collect()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn bits_differ(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

/// The symbolic access model of the [`explore_broken`] kernel: `lanes`
/// row-interleaved jobs, each plain-*reading* and plain-storing over the
/// whole attitude section (the canary's read → preempt → store window).
/// This is exactly the shape the static checker must reject twice over:
/// once as an illegal strategy/block pairing ([`WriteAccess::PlainShared`]
/// with colliding write-sets), and once as a read/write race (every lane's
/// stale read overlaps every other lane's unsynchronized store) — the
/// canary is flagged by both static layers before it ever runs.
pub fn broken_write_model(n_att: usize, lanes: usize) -> SectionModel {
    SectionModel::new(
        SectionId::Att,
        WriteAccess::PlainShared,
        n_att,
        vec![0..n_att; lanes],
    )
    .with_reads(vec![
        vec![ReadAccess::plain(
            ReadSpace::Section(SectionId::Att),
            0..n_att
        )];
        lanes
    ])
}

/// Replay `strategy` (under the uniform or streamed worker budget) against
/// `seeds` adversarial schedules and compare every run to the sequential
/// oracle and to the unperturbed run.
pub fn explore_strategy(
    name: &str,
    strategy: Aprod2Strategy,
    streamed: bool,
    seeds: &[u64],
) -> ScheduleReport {
    let sys = test_system();
    let y = probe_vector(sys.n_rows());

    let mut want = vec![0.0f64; sys.n_cols()];
    SeqBackend.aprod2(&sys, &y, &mut want);

    let spec = if streamed {
        Aprod2Spec::streamed(strategy)
    } else {
        Aprod2Spec::uniform(strategy)
    };
    let plan = LaunchPlan::new(
        Tuning {
            threads: THREADS,
            chunks_per_thread: 2,
        },
        spec,
    );
    // Cross-check with the static layer: every real strategy's plan must
    // pass the checker on this very system's shape.
    let analysis = plan.analyze(&PlanDims::for_system(&sys));
    let (statically_flagged, write_model_flagged, read_model_flagged) = static_flags(&analysis);

    // A private pool: schedule controllers must never leak into the shared
    // pools other tests use.
    let pool = ExecutorPool::new(THREADS);

    let mut baseline = vec![0.0f64; sys.n_cols()];
    plan.aprod2(&pool, &sys, &y, &mut baseline);

    let mut failures = 0usize;
    let mut max_abs_error = 0.0f64;
    let mut bitwise_stable = true;
    for &seed in seeds {
        pool.set_schedule(Some(ScheduleController::from_seed(seed)));
        let mut got = vec![0.0f64; sys.n_cols()];
        plan.aprod2(&pool, &sys, &y, &mut got);
        pool.set_schedule(None);

        let err = max_abs_diff(&got, &want);
        max_abs_error = max_abs_error.max(err);
        let failed = !err.is_finite() || err > SCHEDULE_TOLERANCE;
        if failed {
            failures += 1;
        }
        if bits_differ(&got, &baseline) {
            bitwise_stable = false;
        }
        gaia_telemetry::record_verify_schedule(failed);
    }

    ScheduleReport {
        subject: format!("{name}{}", if streamed { "+streamed" } else { "" }),
        schedules: seeds.len(),
        failures,
        max_abs_error,
        expect_bitwise: expect_bitwise(strategy),
        bitwise_stable,
        statically_flagged,
        write_model_flagged,
        read_model_flagged,
    }
}

/// The canary: a deliberately racy attitude accumulation with a textbook
/// lost-update window (non-atomic read → preemption probe → blind store on
/// a shared slot). Run under [`ScheduleController::race_window`] — which
/// preempts at *every* probe, parking the stale read for tens of
/// microseconds while sibling lanes write the same slots — the race is
/// exposed with near certainty on every seed. A healthy harness must
/// report `failures > 0`; CI fails if this fixture ever passes.
pub fn explore_broken(seeds: &[u64]) -> ScheduleReport {
    let sys = test_system();
    let n_rows = sys.n_rows();
    let y = probe_vector(n_rows);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let n_att = sys.layout().n_att_cols() as usize;

    let mut want = vec![0.0f64; n_att];
    kernels::aprod2_att(&sys, &y, 0..n_rows, &mut want);

    let pool = ExecutorPool::new(THREADS);
    // Interleaved row ownership (job j takes rows j, j+L, j+2L, …): every
    // concurrently-running lane sweeps the whole attitude block, maximizing
    // write-write collisions on its ~24 shared columns.
    const LANES: usize = 8;

    // The static layers must catch this shape without running anything:
    // unsynchronized full-section writes from every lane (write model) and
    // every lane's stale read of slots its siblings store (read model).
    let analysis = check_sections(&[broken_write_model(n_att, LANES)]);
    let (statically_flagged, write_model_flagged, read_model_flagged) = static_flags(&analysis);

    let mut failures = 0usize;
    let mut max_abs_error = 0.0f64;
    let mut bitwise_stable = true;
    let mut baseline: Option<Vec<f64>> = None;
    for &seed in seeds {
        pool.set_schedule(Some(ScheduleController::race_window(seed)));
        let mut out = vec![0.0f64; n_att];
        {
            let view = atomicf64::as_atomic(&mut out);
            let sys = &sys;
            let y = &y;
            let mut jobs: Vec<Job<'_>> = Vec::with_capacity(LANES);
            for lane in 0..LANES {
                jobs.push(Box::new(move || {
                    let mut row = lane;
                    while row < n_rows {
                        let (vals, off) = sys.att_row(row);
                        let yr = y[row];
                        for (i, &v) in vals.iter().enumerate() {
                            let (axis, k) = (i / 4, i % 4);
                            let slot = &view[axis * dof + off as usize + k];
                            // Lost-update race: the read is stale by the
                            // time the store lands if anyone else updated
                            // the slot during the preemption window.
                            // ORDERING: Relaxed is deliberate — the canary
                            // models a port with *no* synchronization at
                            // all; stronger orderings would not fix the
                            // non-atomic read-modify-write anyway.
                            let cur = f64::from_bits(slot.load(Ordering::Relaxed));
                            sched::preempt_point(BROKEN_PROBE);
                            slot.store((cur + v * yr).to_bits(), Ordering::Relaxed);
                        }
                        row += LANES;
                    }
                }));
            }
            pool.run(jobs);
        }
        pool.set_schedule(None);

        let err = max_abs_diff(&out, &want);
        max_abs_error = max_abs_error.max(err);
        let failed = !err.is_finite() || err > SCHEDULE_TOLERANCE;
        if failed {
            failures += 1;
        }
        match &baseline {
            None => baseline = Some(out),
            Some(b) => {
                if bits_differ(&out, b) {
                    bitwise_stable = false;
                }
            }
        }
        gaia_telemetry::record_verify_schedule(failed);
    }

    ScheduleReport {
        subject: "broken-lost-update".into(),
        schedules: seeds.len(),
        failures,
        max_abs_error,
        expect_bitwise: false,
        bitwise_stable,
        statically_flagged,
        write_model_flagged,
        read_model_flagged,
    }
}
