//! Command-line verification driver.
//!
//! ```text
//! verify [--schedules N] [--seed S] [--out DIR]   full run → JSON artifact
//! verify --canary [--schedules N]                 broken-strategy canary
//! ```
//!
//! * The **full run** replays every `aprod2` conflict strategy under `N`
//!   seeded adversarial schedules (default 200), checks every metamorphic
//!   property for every backend over the committed seed corpus (or the
//!   single `--seed`), compares every backend's LSQR trajectory against
//!   the sequential reference, and writes `results/verify/<name>.json`.
//!   Exit code 0 iff everything passed.
//! * The **canary** runs the deliberately racy lost-update fixture and
//!   exits 0 only if the harness *caught* the race — CI runs this so a
//!   harness that stops detecting races fails the build.

use std::path::PathBuf;
use std::process::ExitCode;

use gaia_verify::metamorphic::{self, BACKENDS, THREADS};
use gaia_verify::report::{VerifyReport, DEFAULT_DIR};
use gaia_verify::{corpus, schedule, trajectory};

const USAGE: &str = "usage: verify [--canary] [--schedules N] [--seed S] [--out DIR]";

struct Args {
    canary: bool,
    seed: Option<u64>,
    schedules: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        canary: false,
        seed: None,
        schedules: 200,
        out: PathBuf::from(DEFAULT_DIR),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--canary" => args.canary = true,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = Some(v.parse().map_err(|e| format!("--seed {v:?}: {e}"))?);
            }
            "--schedules" => {
                let v = value("--schedules")?;
                args.schedules = v.parse().map_err(|e| format!("--schedules {v:?}: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("{e}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.canary {
        let seeds = corpus::schedule_seeds(args.schedules.clamp(4, 16));
        let rep = schedule::explore_broken(&seeds);
        if !rep.write_model_flagged {
            eprintln!(
                "CANARY FAILURE: the static write-model layer did not flag the \
                 racy model as an illegal strategy/block pairing"
            );
            return ExitCode::FAILURE;
        }
        if !rep.read_model_flagged {
            eprintln!(
                "CANARY FAILURE: the static read/write access layer did not \
                 flag the racy model's stale cross-lane reads"
            );
            return ExitCode::FAILURE;
        }
        if !rep.statically_flagged {
            eprintln!("CANARY FAILURE: static layers flagged but the union bit is unset");
            return ExitCode::FAILURE;
        }
        if rep.failures > 0 {
            println!(
                "canary caught by all three layers: write model + read/write \
                 model statically flagged, and {}/{} schedules exposed the \
                 lost-update race (max error {:.3e})",
                rep.failures, rep.schedules, rep.max_abs_error
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "CANARY FAILURE: the deliberately racy fixture survived {} schedules undetected",
            rep.schedules
        );
        return ExitCode::FAILURE;
    }

    let seeds = match args.seed {
        Some(s) => vec![s],
        None => corpus::corpus_seeds(),
    };
    let mut report = VerifyReport::new();
    report.seeds = seeds.clone();
    report.schedules_per_strategy = args.schedules;

    // Layer 1: adversarial schedules over every conflict strategy × budget.
    let sched_seeds = corpus::schedule_seeds(args.schedules);
    for (name, strategy) in schedule::strategies() {
        for streamed in [false, true] {
            let rep = schedule::explore_strategy(name, strategy, streamed, &sched_seeds);
            println!(
                "schedule    {:<26} {:>4} schedules  {}",
                rep.subject,
                rep.schedules,
                if rep.passed() { "ok" } else { "FAILED" }
            );
            report.schedule.push(rep);
        }
    }
    // ... and over every non-scalar kernel variant / matrix layout the
    // auto-tuner can select, under the contended atomic strategy.
    for (name, variant, layout) in schedule::variants() {
        let rep = schedule::explore_variant(name, variant, layout, &sched_seeds);
        println!(
            "schedule    {:<26} {:>4} schedules  {}",
            rep.subject,
            rep.schedules,
            if rep.passed() { "ok" } else { "FAILED" }
        );
        report.schedule.push(rep);
    }

    // Layer 2: metamorphic properties × backends × seeds.
    for backend in BACKENDS {
        let mut failed = 0usize;
        let mut total = 0usize;
        for &seed in &seeds {
            for (_, check) in metamorphic::all_checks() {
                let o = check(seed, backend);
                total += 1;
                if !o.passed {
                    failed += 1;
                    eprintln!(
                        "property    {} / {} / seed {}: {}",
                        o.property, o.backend, o.seed, o.detail
                    );
                }
                report.properties.push(o);
            }
        }
        println!(
            "metamorphic {:<26} {:>4} checks     {}",
            backend,
            total,
            if failed == 0 { "ok" } else { "FAILED" }
        );
    }

    // Layer 3: per-iteration trajectory agreement with the reference.
    for backend in BACKENDS.iter().filter(|b| **b != "seq") {
        let mut worst = 0u64;
        for &seed in &seeds {
            let t = trajectory::compare_with_seq(seed, backend, THREADS);
            worst = worst.max(t.max_ulp);
            if !t.within_budget() {
                eprintln!(
                    "trajectory  {} / seed {}: {} ulp on {} at iteration {}",
                    t.backend, t.seed, t.max_ulp, t.worst_scalar, t.worst_iteration
                );
            }
            report.trajectories.push(t);
        }
        println!("trajectory  {backend:<26} max {worst} ulp");
    }

    let passed = report.passed();
    let name = match args.seed {
        Some(s) => format!("verify-seed-{s}"),
        None => "verify-full".into(),
    };
    match report.write_json(&args.out, &name) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if passed {
        println!("verification passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("verification FAILED");
        ExitCode::FAILURE
    }
}
