//! ULP (units in the last place) distance between `f64` values.
//!
//! Floating-point agreement between backends is a statement about *rounding*,
//! not magnitudes, so tolerances here are expressed as the number of
//! representable doubles between two values. The mapping is the standard
//! lexicographic trick: reinterpret the IEEE-754 bit pattern as a signed
//! integer, flipping the negative half so the integer order matches the
//! numeric order; the ULP distance is then an integer subtraction.

/// Map `x` to an integer whose ordering matches the numeric ordering of
/// finite doubles (negative values are reflected around the sign boundary).
#[inline]
pub fn lexic(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        (0x8000_0000_0000_0000u64 as i64).wrapping_sub(b)
    } else {
        b
    }
}

/// Number of representable doubles between `a` and `b`.
///
/// `0` iff the values compare equal (including `+0 == -0`); `u64::MAX` if
/// either is NaN. Distances across the zero crossing count every denormal
/// in between, so near-zero quantities should be compared with an absolute
/// floor first (see `trajectory::ABS_FLOOR`).
#[inline]
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    lexic(a).abs_diff(lexic(b))
}

/// Maximum [`ulp_distance`] over two equal-length slices.
pub fn max_ulp(a: &[f64], b: &[f64]) -> u64 {
    assert_eq!(a.len(), b.len(), "ulp::max_ulp: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_distance(x, y))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_doubles_are_one_ulp_apart() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance(x, next), 1);
        assert_eq!(ulp_distance(-x, -next), 1);
    }

    #[test]
    fn signed_zeros_are_zero_apart_and_nan_is_infinitely_far() {
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
    }

    #[test]
    fn distance_is_symmetric_and_monotone_across_signs() {
        let pairs = [(1.0, 1.5), (-2.0, 2.0), (1e-300, -1e-300)];
        for (a, b) in pairs {
            assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
            assert!(ulp_distance(a, b) > 0);
        }
        // Crossing zero is farther than staying on one side.
        assert!(ulp_distance(-f64::MIN_POSITIVE, f64::MIN_POSITIVE) > ulp_distance(1.0, 1.0000001));
    }

    #[test]
    fn max_ulp_reports_the_worst_component() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, f64::from_bits(2.0f64.to_bits() + 5), 3.0];
        assert_eq!(max_ulp(&a, &b), 5);
    }
}
