//! Cross-backend LSQR trajectory agreement, measured in ULPs.
//!
//! Final solutions can agree while intermediate iterates quietly diverge —
//! the classic way a subtly wrong reduction slips through solution-level
//! tests. This module runs a fixed number of LSQR iterations on every
//! backend and compares the **per-iteration scalars** (α, β, ρ̄, φ̄, ‖r‖,
//! ‖Aᵀr‖) against the sequential reference. Parallel backends reduce in a
//! different order than the sequential one, so exact equality is not
//! expected even from schedule-deterministic backends; the divergence must
//! instead stay within a calibrated ULP budget.

use gaia_backends::{backend_by_name, SeqBackend};
use gaia_lsqr::lsqr::Lsqr;
use gaia_lsqr::{LsqrConfig, TrajectorySample};
use gaia_sparse::fuzz;
use serde::Serialize;

use crate::ulp;

/// Iterations compared per (backend, seed). Rounding divergence compounds
/// per iteration, so more iterations need a larger budget; 12 exercises
/// several full update cycles while the scalars are still far from the
/// convergence noise floor.
pub const TRAJECTORY_ITERS: usize = 12;

/// Maximum accepted ULP distance between a backend's trajectory scalars
/// and the sequential reference. Calibrated by measurement over the
/// committed corpus: the observed worst case is 111 ULP (β under the
/// replicated reduction at iteration 12, seed 3); the budget leaves
/// ~590× headroom above that, while a genuinely wrong reduction (lost
/// update, wrong chunk boundary) lands many orders of magnitude higher.
/// Re-derive with the ignored `print_trajectory_divergence_calibration`
/// test after solver or kernel changes.
pub const TRAJECTORY_ULP_BUDGET: u64 = 1 << 16;

/// Scalars whose absolute difference is below this floor are treated as
/// equal. It is far below rounding noise at the corpus's O(1–100) scalar
/// magnitudes, so it never masks a real divergence there; it only guards
/// the degenerate near-zero regime (φ̄, ‖Aᵀr‖ decaying at convergence),
/// where ULP distance counts every denormal across the zero crossing
/// while the values are numerically indistinguishable.
pub const ABS_FLOOR: f64 = 1e-14;

/// Worst divergence of one backend's trajectory from the reference.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryDivergence {
    /// Backend under test.
    pub backend: String,
    /// Corpus seed that generated the system.
    pub seed: u64,
    /// Iterations actually compared.
    pub iterations: usize,
    /// Maximum ULP distance over all scalars and iterations.
    pub max_ulp: u64,
    /// Scalar that realized the maximum (`none` if bit-identical).
    pub worst_scalar: String,
    /// Iteration index that realized the maximum.
    pub worst_iteration: usize,
}

impl TrajectoryDivergence {
    /// True iff the divergence stayed within [`TRAJECTORY_ULP_BUDGET`].
    pub fn within_budget(&self) -> bool {
        self.max_ulp <= TRAJECTORY_ULP_BUDGET
    }
}

fn scalars(s: &TrajectorySample) -> [(&'static str, f64); 6] {
    [
        ("alfa", s.alfa),
        ("beta", s.beta),
        ("rhobar", s.rhobar),
        ("phibar", s.phibar),
        ("rnorm", s.rnorm),
        ("arnorm", s.arnorm),
    ]
}

/// Run [`TRAJECTORY_ITERS`] iterations of `backend_name` and the sequential
/// reference on the system of `seed` and report the worst per-scalar ULP
/// divergence.
pub fn compare_with_seq(seed: u64, backend_name: &str, threads: usize) -> TrajectoryDivergence {
    let sys = fuzz::system_from_seed(seed);
    let cfg = LsqrConfig::fixed_iterations(TRAJECTORY_ITERS);
    let reference = Lsqr::new(&sys, &SeqBackend, cfg).trajectory(TRAJECTORY_ITERS);
    let be = backend_by_name(backend_name, threads)
        .unwrap_or_else(|| panic!("unknown backend {backend_name:?}"));
    let got = Lsqr::new(&sys, &be, cfg).trajectory(TRAJECTORY_ITERS);
    assert_eq!(
        reference.len(),
        got.len(),
        "fixed-iteration trajectories must have equal length"
    );

    let mut worst: (u64, &'static str, usize) = (0, "none", 0);
    for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
        for ((label, a), (_, b)) in scalars(r).into_iter().zip(scalars(g)) {
            if (a - b).abs() <= ABS_FLOOR {
                continue;
            }
            let d = ulp::ulp_distance(a, b);
            if d > worst.0 {
                worst = (d, label, i);
            }
        }
    }
    gaia_telemetry::record_verify_ulp(worst.0);
    TrajectoryDivergence {
        backend: backend_name.into(),
        seed,
        iterations: got.len().saturating_sub(1),
        max_ulp: worst.0,
        worst_scalar: worst.1.into(),
        worst_iteration: worst.2,
    }
}
