//! # gaia-telemetry
//!
//! Lightweight observability for the AVU-GSR solver: scoped monotonic
//! timers and atomic counters keyed by *phase* (`aprod1`/`aprod2`) and
//! *block* (astrometric/attitude/instrumental/global), mirroring the
//! per-kernel timing the paper's profiling runs collect with `rocprof`/
//! `nsys` on the GPU ports (§V-B).
//!
//! The whole crate is gated on the `enabled` cargo feature:
//!
//! * **disabled (default)** — every probe ([`kernel_scope`],
//!   [`call_scope`], [`collective_scope`]) is a zero-sized no-op and the
//!   byte/RMW accounting arguments fold away, so instrumented kernels are
//!   bit-identical in cost to un-instrumented ones. No clock is read, no
//!   allocation happens.
//! * **enabled** — scopes read `Instant` on entry and commit elapsed
//!   nanoseconds plus analytic byte/atomic counts to a global registry of
//!   relaxed `AtomicU64`s on drop. The hot path still never allocates;
//!   counts are O(1) per *call*, never per element.
//!
//! [`snapshot`] freezes the registry into the serializable
//! [`TelemetrySnapshot`]; [`report::RunReport`] pairs a snapshot with
//! solver convergence history and [`report::write_report`] writes the JSON
//! artifact under `results/telemetry/`. [`kernel_table`] renders the
//! ASCII per-kernel breakdown the bench binaries print.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use serde::{Deserialize, Serialize};

pub mod report;

/// Which sparse product a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `out += A x` (row-major product).
    Aprod1,
    /// `out += Aᵀ y` (column/scatter product).
    Aprod2,
}

impl Phase {
    /// Both phases, in registry order.
    pub const ALL: [Phase; 2] = [Phase::Aprod1, Phase::Aprod2];

    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Aprod1 => "aprod1",
            Phase::Aprod2 => "aprod2",
        }
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Phase::Aprod1 => 0,
            Phase::Aprod2 => 1,
        }
    }
}

/// Which parameter block of the Gaia system a kernel touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// Astrometric (5 parameters per star, block-diagonal).
    Astro,
    /// Attitude (shared across rows).
    Att,
    /// Instrumental (shared across rows).
    Instr,
    /// Global (single shared slot).
    Glob,
}

impl Block {
    /// All blocks, in registry order.
    pub const ALL: [Block; 4] = [Block::Astro, Block::Att, Block::Instr, Block::Glob];

    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Block::Astro => "astro",
            Block::Att => "att",
            Block::Instr => "instr",
            Block::Glob => "glob",
        }
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Block::Astro => 0,
            Block::Att => 1,
            Block::Instr => 2,
            Block::Glob => 3,
        }
    }
}

/// One accumulated cell of the snapshot: totals for a (phase, block)
/// kernel, a whole-call phase, or the collective channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCell {
    /// Phase name (`aprod1`/`aprod2`), or a channel label.
    pub phase: String,
    /// Block name (`astro`/`att`/`instr`/`glob`), or `"*"` for whole-call
    /// and collective cells.
    pub block: String,
    /// Number of recorded scopes.
    pub calls: u64,
    /// Total wall time inside the scopes.
    pub seconds: f64,
    /// Analytic estimate of bytes touched (coefficients + operands +
    /// outputs, each counted once per traversal).
    pub bytes: u64,
    /// Atomic read-modify-write (or CAS-retry-loop entry) count.
    pub atomic_rmws: u64,
}

/// Fault, breakdown, and recovery accounting of a resilient solve — the
/// robustness analogue of the per-kernel cells. Written by the resilient
/// supervisor in `gaia-lsqr::resilient` and the chaos bench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceCell {
    /// Injected (or real) rank panics observed.
    pub rank_panics: u64,
    /// Corrupted allreduce payloads (bit-flips) observed.
    pub bit_flips: u64,
    /// Bounded collective delays (stragglers) observed.
    pub straggles: u64,
    /// Collective timeouts detected.
    pub timeouts: u64,
    /// Solves stopped by the numerical health guards.
    pub breakdowns: u64,
    /// Retry attempts launched by the supervisor.
    pub retries: u64,
    /// Retries that resumed from a periodic checkpoint (vs fresh).
    pub checkpoint_restores: u64,
    /// Rank-count degradations (re-shard over fewer ranks).
    pub degradations: u64,
    /// Wall-clock spent in failed attempts + backoff — the recovery
    /// overhead a chaos run pays on top of the clean solve time.
    pub recovery_seconds: f64,
}

impl ResilienceCell {
    /// True when nothing fault- or recovery-related was recorded.
    pub fn is_empty(&self) -> bool {
        *self == ResilienceCell::default()
    }

    /// Total injected faults observed.
    pub fn faults(&self) -> u64 {
        self.rank_panics + self.bit_flips + self.straggles + self.timeouts
    }
}

/// Executor-pool launch accounting — recorded at the single choke point
/// every parallel backend now launches through (`gaia-backends`'s
/// `ExecutorPool`), instead of per-backend scaffolding. The spawn-vs-reuse
/// split is the CPU mirror of the paper's kernel-launch overhead axis: a
/// legacy spawn-per-call backend pays `jobs` thread spawns per solve, a
/// pooled one pays `workers_spawned` once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolCell {
    /// `run()` calls that dispatched jobs to pool workers.
    pub launches: u64,
    /// `run()` calls served inline on the caller (serial pool or a
    /// single-job launch) without touching the queue.
    pub inline_launches: u64,
    /// Total jobs executed (worker-run and caller-run).
    pub jobs: u64,
    /// OS worker threads spawned (pool constructions × pool size).
    pub workers_spawned: u64,
    /// Launches that reused already-parked workers (every launch after a
    /// pool's first).
    pub reused_launches: u64,
    /// Total time workers spent parked waiting for work.
    pub wait_seconds: f64,
}

impl PoolCell {
    /// True when no pool activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == PoolCell::default()
    }
}

/// Static-analysis accounting — how many launch plans the symbolic
/// checker (`gaia-backends`'s `LaunchPlan::analyze`) proved sound, how
/// many sections and violations it saw, and what the source lint engine
/// (`gaia-analyze`) scanned. The static mirror of [`VerifyCell`]: that
/// cell counts what the *dynamic* harness replayed, this one counts what
/// was proven before anything ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AnalyzeCell {
    /// Launch plans run through the symbolic soundness checker.
    pub plans_checked: u64,
    /// Output sections whose write-sets were verified (disjointness,
    /// cover, synchronization legality).
    pub sections_checked: u64,
    /// Plan violations detected (unsound plans rejected before launch).
    pub plan_violations: u64,
    /// Source files scanned by the lint engine.
    pub lint_files: u64,
    /// Unsuppressed lint diagnostics emitted.
    pub lint_diagnostics: u64,
    /// Justified `gaia-analyze: allow(...)` suppressions honored.
    pub lint_suppressions: u64,
    /// Functions whose bodies the dataflow checkers scanned (absent in
    /// pre-v2 artifacts, hence the serde default).
    #[serde(default)]
    pub dataflow_functions: u64,
    /// Atomic operation sites classified by the protocol checker.
    #[serde(default)]
    pub dataflow_atomic_sites: u64,
    /// Mutex/RwLock acquisition sites resolved by the lock-order checker.
    #[serde(default)]
    pub dataflow_lock_sites: u64,
}

impl AnalyzeCell {
    /// True when no static-analysis activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == AnalyzeCell::default()
    }
}

/// Perf-gate accounting — what the noise-aware regression gate
/// (`gaia-bench --bin gate`) measured and decided. One gate run records
/// how many grid cells it timed (and with how many repeats), how many it
/// could compare against the committed baseline, and the comparison
/// verdicts; `measure_seconds` is the wall-clock spent inside the timed
/// kernel sections, so run reports show what the gate itself cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GateCell {
    /// Grid cells (backend × layout) timed by the gate run.
    pub cells_measured: u64,
    /// Total timing repeats executed across all cells (median-of-K).
    pub repeats: u64,
    /// Cells that had a baseline counterpart and were compared.
    pub cells_compared: u64,
    /// Metrics whose ratio exceeded the noise-aware band (gate failures).
    pub regressions: u64,
    /// Metrics faster than the band's lower edge (reported, not failing).
    pub improvements: u64,
    /// Measured cells with no baseline counterpart (new grid entries).
    pub new_cells: u64,
    /// Wall-clock spent inside the gate's timed kernel sections.
    pub measure_seconds: f64,
}

impl GateCell {
    /// True when no gate activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == GateCell::default()
    }
}

/// Auto-tuning accounting — what the launch-profile search (`gaia-bench
/// --bin tune`) explored and what the `tuned` backend loaded back. The
/// search half records configurations measured and the wall-clock spent
/// inside timed sections; the load half records how many persisted
/// profiles were accepted, rejected, or substituted by the default plan at
/// solve time (`fallbacks`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TuneCell {
    /// Launch configurations the search measured.
    pub configs_explored: u64,
    /// Total timing repeats executed across configurations.
    pub measurements: u64,
    /// Wall-clock spent inside the tuner's timed kernel sections.
    pub measure_seconds: f64,
    /// Winning profiles persisted to disk.
    pub profiles_persisted: u64,
    /// Persisted profiles loaded and validated successfully.
    pub profiles_loaded: u64,
    /// Persisted profiles rejected (bad schema, field, or unsound plan).
    pub profiles_rejected: u64,
    /// `tuned`-backend resolutions that found no matching profile and ran
    /// the default plan instead.
    pub fallbacks: u64,
}

impl TuneCell {
    /// True when no tuning activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == TuneCell::default()
    }
}

/// Per-tenant usage accounting inside a [`ServeCell`]: how many requests
/// a tenant ran to completion and how much solver wall-clock it consumed.
/// The fairness ledger of the serving layer — the overload bench asserts
/// quota enforcement from these rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TenantUsage {
    /// Tenant identifier (as passed in the solve request).
    pub tenant: String,
    /// Requests that reached a terminal outcome for this tenant.
    pub requests: u64,
    /// Solver wall-clock consumed by this tenant's requests.
    pub seconds: f64,
}

/// Serving-layer accounting — what the long-running solve service
/// (`gaia-serve`) admitted, shed, retried, and resolved. The multi-tenant
/// analogue of [`ResilienceCell`]: that cell counts faults inside one
/// supervised solve, this one counts request outcomes across concurrent
/// tenants sharing the executor pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServeCell {
    /// Requests submitted to the service (admitted + shed).
    pub submitted: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Admitted requests that reached a terminal outcome.
    pub completed: u64,
    /// Requests that converged at full quality.
    pub converged: u64,
    /// Requests that converged under degraded resources (fewer ranks or
    /// a shrunken thread share) — the graceful-degradation path.
    pub degraded: u64,
    /// Requests shed at admission (queue full, quota, open breaker, or
    /// shutdown).
    pub shed: u64,
    /// Requests that hit their deadline (in-queue or mid-solve).
    pub timed_out: u64,
    /// Retry attempts launched by the serving layer on behalf of faulted
    /// requests.
    pub retried: u64,
    /// Requests fast-failed by an open per-tenant circuit breaker.
    pub broken_circuit: u64,
    /// Requests that exhausted retries and resolved as faulted.
    pub faulted: u64,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth: u64,
    /// Per-tenant usage rows, merged by tenant name.
    pub tenants: Vec<TenantUsage>,
}

impl ServeCell {
    /// True when no serving activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == ServeCell::default()
    }

    /// Fold another cell into this one: counters add, the queue
    /// high-water mark takes the max, tenant rows merge by name.
    pub fn merge(&mut self, delta: &ServeCell) {
        self.submitted += delta.submitted;
        self.admitted += delta.admitted;
        self.completed += delta.completed;
        self.converged += delta.converged;
        self.degraded += delta.degraded;
        self.shed += delta.shed;
        self.timed_out += delta.timed_out;
        self.retried += delta.retried;
        self.broken_circuit += delta.broken_circuit;
        self.faulted += delta.faulted;
        self.max_queue_depth = self.max_queue_depth.max(delta.max_queue_depth);
        for row in &delta.tenants {
            match self.tenants.iter_mut().find(|t| t.tenant == row.tenant) {
                Some(t) => {
                    t.requests += row.requests;
                    t.seconds += row.seconds;
                }
                None => self.tenants.push(row.clone()),
            }
        }
    }
}

/// Out-of-core tile accounting — what the tiled solve path
/// (`gaia-sparse`'s `TiledSystem` driven by `gaia-lsqr`'s `TiledOperator`)
/// loaded, hit, and evicted while streaming the matrix through its
/// capacity-budgeted LRU cache. The memory-capacity analogue of the
/// per-kernel cells: those count FLOP-side traffic, this one counts the
/// spill traffic paid to stay under a resident-bytes budget (the paper's
/// T4-vs-H100 capacity gating, §V-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TileCell {
    /// Tile loads (cache misses that read a tile file).
    pub loads: u64,
    /// Accesses served from already-resident tiles.
    pub hits: u64,
    /// Tiles evicted to stay under the capacity budget.
    pub evictions: u64,
    /// Total bytes loaded from the spill directory.
    pub loaded_bytes: u64,
    /// Total resident bytes released by evictions.
    pub evicted_bytes: u64,
    /// Bytes written to the spill directory (tile generation/spill).
    pub spilled_bytes: u64,
    /// High-water mark of resident tile bytes (compared against the
    /// configured budget by the capacity harness).
    pub peak_resident_bytes: u64,
}

impl TileCell {
    /// True when no tile activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == TileCell::default()
    }

    /// Fraction of accesses served without touching disk.
    pub fn hit_rate(&self) -> f64 {
        let total = self.loads + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Verification accounting — schedule-exploration and metamorphic-suite
/// counters plus the worst cross-backend trajectory divergence observed,
/// in ULPs. Written by `gaia-verify`; the divergence cell is what the
/// `results/verify/*.json` artifacts summarize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VerifyCell {
    /// Seeded adverse schedules replayed by the exploration driver.
    pub schedules: u64,
    /// Schedules whose result deviated beyond the subject's contract
    /// (bitwise stability or the tolerance bound).
    pub schedule_failures: u64,
    /// Metamorphic property checks executed.
    pub properties: u64,
    /// Metamorphic property checks that failed.
    pub property_failures: u64,
    /// Largest per-iteration ULP distance between any backend's LSQR
    /// trajectory coefficients (α/β/ρ̄) and the sequential reference.
    pub max_trajectory_ulp: u64,
}

impl VerifyCell {
    /// True when no verification activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == VerifyCell::default()
    }
}

/// Frozen registry state: everything recorded since the last [`reset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Whether the `enabled` feature was compiled in; when `false` all
    /// cells are empty and absent.
    pub enabled: bool,
    /// Per-(phase, block) kernel cells, zero-call cells omitted.
    pub kernels: Vec<KernelCell>,
    /// Whole-call per-phase cells (recorded by `InstrumentedBackend`).
    pub calls: Vec<KernelCell>,
    /// Collective (allreduce) channel, recorded by the distributed solver.
    pub collective: KernelCell,
    /// Fault/recovery accounting (absent in pre-resilience artifacts,
    /// hence the serde default).
    #[serde(default)]
    pub resilience: ResilienceCell,
    /// Executor-pool launch accounting (absent in pre-executor artifacts,
    /// hence the serde default).
    #[serde(default)]
    pub pool: PoolCell,
    /// Verification accounting (absent in pre-verify artifacts, hence the
    /// serde default).
    #[serde(default)]
    pub verify: VerifyCell,
    /// Static-analysis accounting (absent in pre-analyze artifacts, hence
    /// the serde default).
    #[serde(default)]
    pub analyze: AnalyzeCell,
    /// Perf-gate accounting (absent in pre-gate artifacts, hence the
    /// serde default).
    #[serde(default)]
    pub gate: GateCell,
    /// Serving-layer accounting (absent in pre-serve artifacts, hence the
    /// serde default).
    #[serde(default)]
    pub serve: ServeCell,
    /// Auto-tuning accounting (absent in pre-tune artifacts, hence the
    /// serde default).
    #[serde(default)]
    pub tune: TuneCell,
    /// Out-of-core tile accounting (absent in pre-tiling artifacts, hence
    /// the serde default).
    #[serde(default)]
    pub tile: TileCell,
}

impl TelemetrySnapshot {
    /// An empty snapshot (what [`snapshot`] returns when disabled).
    pub fn empty(enabled: bool) -> Self {
        TelemetrySnapshot {
            enabled,
            kernels: Vec::new(),
            calls: Vec::new(),
            collective: KernelCell {
                phase: "collective".into(),
                block: "*".into(),
                calls: 0,
                seconds: 0.0,
                bytes: 0,
                atomic_rmws: 0,
            },
            resilience: ResilienceCell::default(),
            pool: PoolCell::default(),
            verify: VerifyCell::default(),
            analyze: AnalyzeCell::default(),
            gate: GateCell::default(),
            serve: ServeCell::default(),
            tune: TuneCell::default(),
            tile: TileCell::default(),
        }
    }

    /// Total seconds across the per-kernel cells of one phase.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.kernels
            .iter()
            .filter(|c| c.phase == phase.as_str())
            .map(|c| c.seconds)
            .sum()
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Block, Phase};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    // ORDERING: every counter in this registry is an independent,
    // monotonically increasing accumulator. No reader infers cross-counter
    // invariants from a snapshot (cells are advisory telemetry, not a
    // synchronization protocol), so Relaxed is the weakest correct ordering
    // for every load, store, fetch_add, and fetch_max below.

    pub struct Stats {
        pub calls: AtomicU64,
        pub nanos: AtomicU64,
        pub bytes: AtomicU64,
        pub atomic_rmws: AtomicU64,
    }

    impl Stats {
        const fn new() -> Self {
            Stats {
                calls: AtomicU64::new(0),
                nanos: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                atomic_rmws: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.calls.store(0, Ordering::Relaxed);
            self.nanos.store(0, Ordering::Relaxed);
            self.bytes.store(0, Ordering::Relaxed);
            self.atomic_rmws.store(0, Ordering::Relaxed);
        }

        fn record(&self, nanos: u64, bytes: u64, rmws: u64) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.nanos.fetch_add(nanos, Ordering::Relaxed);
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
            self.atomic_rmws.fetch_add(rmws, Ordering::Relaxed);
        }

        pub fn cell(&self, phase: &str, block: &str) -> super::KernelCell {
            super::KernelCell {
                phase: phase.into(),
                block: block.into(),
                calls: self.calls.load(Ordering::Relaxed),
                seconds: self.nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                bytes: self.bytes.load(Ordering::Relaxed),
                atomic_rmws: self.atomic_rmws.load(Ordering::Relaxed),
            }
        }
    }

    // `const` is deliberate: these are array-repeat initializers for the
    // static registry below, never read as values themselves.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: Stats = Stats::new();
    #[allow(clippy::declare_interior_mutable_const)]
    const ROW: [Stats; 4] = [ZERO; 4];

    /// Atomic mirror of [`super::ResilienceCell`]; seconds kept as nanos.
    pub struct Resilience {
        pub rank_panics: AtomicU64,
        pub bit_flips: AtomicU64,
        pub straggles: AtomicU64,
        pub timeouts: AtomicU64,
        pub breakdowns: AtomicU64,
        pub retries: AtomicU64,
        pub checkpoint_restores: AtomicU64,
        pub degradations: AtomicU64,
        pub recovery_nanos: AtomicU64,
    }

    impl Resilience {
        const fn new() -> Self {
            Resilience {
                rank_panics: AtomicU64::new(0),
                bit_flips: AtomicU64::new(0),
                straggles: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                breakdowns: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                checkpoint_restores: AtomicU64::new(0),
                degradations: AtomicU64::new(0),
                recovery_nanos: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.rank_panics.store(0, Ordering::Relaxed);
            self.bit_flips.store(0, Ordering::Relaxed);
            self.straggles.store(0, Ordering::Relaxed);
            self.timeouts.store(0, Ordering::Relaxed);
            self.breakdowns.store(0, Ordering::Relaxed);
            self.retries.store(0, Ordering::Relaxed);
            self.checkpoint_restores.store(0, Ordering::Relaxed);
            self.degradations.store(0, Ordering::Relaxed);
            self.recovery_nanos.store(0, Ordering::Relaxed);
        }

        pub fn merge(&self, delta: &super::ResilienceCell) {
            self.rank_panics
                .fetch_add(delta.rank_panics, Ordering::Relaxed);
            self.bit_flips.fetch_add(delta.bit_flips, Ordering::Relaxed);
            self.straggles.fetch_add(delta.straggles, Ordering::Relaxed);
            self.timeouts.fetch_add(delta.timeouts, Ordering::Relaxed);
            self.breakdowns
                .fetch_add(delta.breakdowns, Ordering::Relaxed);
            self.retries.fetch_add(delta.retries, Ordering::Relaxed);
            self.checkpoint_restores
                .fetch_add(delta.checkpoint_restores, Ordering::Relaxed);
            self.degradations
                .fetch_add(delta.degradations, Ordering::Relaxed);
            self.recovery_nanos
                .fetch_add((delta.recovery_seconds * 1e9) as u64, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::ResilienceCell {
            super::ResilienceCell {
                rank_panics: self.rank_panics.load(Ordering::Relaxed),
                bit_flips: self.bit_flips.load(Ordering::Relaxed),
                straggles: self.straggles.load(Ordering::Relaxed),
                timeouts: self.timeouts.load(Ordering::Relaxed),
                breakdowns: self.breakdowns.load(Ordering::Relaxed),
                retries: self.retries.load(Ordering::Relaxed),
                checkpoint_restores: self.checkpoint_restores.load(Ordering::Relaxed),
                degradations: self.degradations.load(Ordering::Relaxed),
                recovery_seconds: self.recovery_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            }
        }
    }

    /// Atomic mirror of [`super::PoolCell`]; seconds kept as nanos.
    pub struct Pool {
        pub launches: AtomicU64,
        pub inline_launches: AtomicU64,
        pub jobs: AtomicU64,
        pub workers_spawned: AtomicU64,
        pub reused_launches: AtomicU64,
        pub wait_nanos: AtomicU64,
    }

    impl Pool {
        const fn new() -> Self {
            Pool {
                launches: AtomicU64::new(0),
                inline_launches: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                workers_spawned: AtomicU64::new(0),
                reused_launches: AtomicU64::new(0),
                wait_nanos: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.launches.store(0, Ordering::Relaxed);
            self.inline_launches.store(0, Ordering::Relaxed);
            self.jobs.store(0, Ordering::Relaxed);
            self.workers_spawned.store(0, Ordering::Relaxed);
            self.reused_launches.store(0, Ordering::Relaxed);
            self.wait_nanos.store(0, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::PoolCell {
            super::PoolCell {
                launches: self.launches.load(Ordering::Relaxed),
                inline_launches: self.inline_launches.load(Ordering::Relaxed),
                jobs: self.jobs.load(Ordering::Relaxed),
                workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
                reused_launches: self.reused_launches.load(Ordering::Relaxed),
                wait_seconds: self.wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            }
        }
    }

    /// Atomic mirror of [`super::VerifyCell`].
    pub struct Verify {
        pub schedules: AtomicU64,
        pub schedule_failures: AtomicU64,
        pub properties: AtomicU64,
        pub property_failures: AtomicU64,
        pub max_trajectory_ulp: AtomicU64,
    }

    impl Verify {
        const fn new() -> Self {
            Verify {
                schedules: AtomicU64::new(0),
                schedule_failures: AtomicU64::new(0),
                properties: AtomicU64::new(0),
                property_failures: AtomicU64::new(0),
                max_trajectory_ulp: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.schedules.store(0, Ordering::Relaxed);
            self.schedule_failures.store(0, Ordering::Relaxed);
            self.properties.store(0, Ordering::Relaxed);
            self.property_failures.store(0, Ordering::Relaxed);
            self.max_trajectory_ulp.store(0, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::VerifyCell {
            super::VerifyCell {
                schedules: self.schedules.load(Ordering::Relaxed),
                schedule_failures: self.schedule_failures.load(Ordering::Relaxed),
                properties: self.properties.load(Ordering::Relaxed),
                property_failures: self.property_failures.load(Ordering::Relaxed),
                max_trajectory_ulp: self.max_trajectory_ulp.load(Ordering::Relaxed),
            }
        }
    }

    /// Atomic mirror of [`super::AnalyzeCell`].
    pub struct Analyze {
        pub plans_checked: AtomicU64,
        pub sections_checked: AtomicU64,
        pub plan_violations: AtomicU64,
        pub lint_files: AtomicU64,
        pub lint_diagnostics: AtomicU64,
        pub lint_suppressions: AtomicU64,
        pub dataflow_functions: AtomicU64,
        pub dataflow_atomic_sites: AtomicU64,
        pub dataflow_lock_sites: AtomicU64,
    }

    impl Analyze {
        const fn new() -> Self {
            Analyze {
                plans_checked: AtomicU64::new(0),
                sections_checked: AtomicU64::new(0),
                plan_violations: AtomicU64::new(0),
                lint_files: AtomicU64::new(0),
                lint_diagnostics: AtomicU64::new(0),
                lint_suppressions: AtomicU64::new(0),
                dataflow_functions: AtomicU64::new(0),
                dataflow_atomic_sites: AtomicU64::new(0),
                dataflow_lock_sites: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.plans_checked.store(0, Ordering::Relaxed);
            self.sections_checked.store(0, Ordering::Relaxed);
            self.plan_violations.store(0, Ordering::Relaxed);
            self.lint_files.store(0, Ordering::Relaxed);
            self.lint_diagnostics.store(0, Ordering::Relaxed);
            self.lint_suppressions.store(0, Ordering::Relaxed);
            self.dataflow_functions.store(0, Ordering::Relaxed);
            self.dataflow_atomic_sites.store(0, Ordering::Relaxed);
            self.dataflow_lock_sites.store(0, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::AnalyzeCell {
            super::AnalyzeCell {
                plans_checked: self.plans_checked.load(Ordering::Relaxed),
                sections_checked: self.sections_checked.load(Ordering::Relaxed),
                plan_violations: self.plan_violations.load(Ordering::Relaxed),
                lint_files: self.lint_files.load(Ordering::Relaxed),
                lint_diagnostics: self.lint_diagnostics.load(Ordering::Relaxed),
                lint_suppressions: self.lint_suppressions.load(Ordering::Relaxed),
                dataflow_functions: self.dataflow_functions.load(Ordering::Relaxed),
                dataflow_atomic_sites: self.dataflow_atomic_sites.load(Ordering::Relaxed),
                dataflow_lock_sites: self.dataflow_lock_sites.load(Ordering::Relaxed),
            }
        }
    }

    /// Atomic mirror of [`super::GateCell`]; seconds kept as nanos.
    pub struct Gate {
        pub cells_measured: AtomicU64,
        pub repeats: AtomicU64,
        pub cells_compared: AtomicU64,
        pub regressions: AtomicU64,
        pub improvements: AtomicU64,
        pub new_cells: AtomicU64,
        pub measure_nanos: AtomicU64,
    }

    impl Gate {
        const fn new() -> Self {
            Gate {
                cells_measured: AtomicU64::new(0),
                repeats: AtomicU64::new(0),
                cells_compared: AtomicU64::new(0),
                regressions: AtomicU64::new(0),
                improvements: AtomicU64::new(0),
                new_cells: AtomicU64::new(0),
                measure_nanos: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.cells_measured.store(0, Ordering::Relaxed);
            self.repeats.store(0, Ordering::Relaxed);
            self.cells_compared.store(0, Ordering::Relaxed);
            self.regressions.store(0, Ordering::Relaxed);
            self.improvements.store(0, Ordering::Relaxed);
            self.new_cells.store(0, Ordering::Relaxed);
            self.measure_nanos.store(0, Ordering::Relaxed);
        }

        pub fn merge(&self, delta: &super::GateCell) {
            self.cells_measured
                .fetch_add(delta.cells_measured, Ordering::Relaxed);
            self.repeats.fetch_add(delta.repeats, Ordering::Relaxed);
            self.cells_compared
                .fetch_add(delta.cells_compared, Ordering::Relaxed);
            self.regressions
                .fetch_add(delta.regressions, Ordering::Relaxed);
            self.improvements
                .fetch_add(delta.improvements, Ordering::Relaxed);
            self.new_cells.fetch_add(delta.new_cells, Ordering::Relaxed);
            self.measure_nanos
                .fetch_add((delta.measure_seconds * 1e9) as u64, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::GateCell {
            super::GateCell {
                cells_measured: self.cells_measured.load(Ordering::Relaxed),
                repeats: self.repeats.load(Ordering::Relaxed),
                cells_compared: self.cells_compared.load(Ordering::Relaxed),
                regressions: self.regressions.load(Ordering::Relaxed),
                improvements: self.improvements.load(Ordering::Relaxed),
                new_cells: self.new_cells.load(Ordering::Relaxed),
                measure_seconds: self.measure_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            }
        }
    }

    /// Atomic mirror of [`super::TuneCell`]; seconds kept as nanos.
    pub struct Tune {
        pub configs_explored: AtomicU64,
        pub measurements: AtomicU64,
        pub measure_nanos: AtomicU64,
        pub profiles_persisted: AtomicU64,
        pub profiles_loaded: AtomicU64,
        pub profiles_rejected: AtomicU64,
        pub fallbacks: AtomicU64,
    }

    impl Tune {
        const fn new() -> Self {
            Tune {
                configs_explored: AtomicU64::new(0),
                measurements: AtomicU64::new(0),
                measure_nanos: AtomicU64::new(0),
                profiles_persisted: AtomicU64::new(0),
                profiles_loaded: AtomicU64::new(0),
                profiles_rejected: AtomicU64::new(0),
                fallbacks: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.configs_explored.store(0, Ordering::Relaxed);
            self.measurements.store(0, Ordering::Relaxed);
            self.measure_nanos.store(0, Ordering::Relaxed);
            self.profiles_persisted.store(0, Ordering::Relaxed);
            self.profiles_loaded.store(0, Ordering::Relaxed);
            self.profiles_rejected.store(0, Ordering::Relaxed);
            self.fallbacks.store(0, Ordering::Relaxed);
        }

        pub fn merge(&self, delta: &super::TuneCell) {
            self.configs_explored
                .fetch_add(delta.configs_explored, Ordering::Relaxed);
            self.measurements
                .fetch_add(delta.measurements, Ordering::Relaxed);
            self.measure_nanos
                .fetch_add((delta.measure_seconds * 1e9) as u64, Ordering::Relaxed);
            self.profiles_persisted
                .fetch_add(delta.profiles_persisted, Ordering::Relaxed);
            self.profiles_loaded
                .fetch_add(delta.profiles_loaded, Ordering::Relaxed);
            self.profiles_rejected
                .fetch_add(delta.profiles_rejected, Ordering::Relaxed);
            self.fallbacks.fetch_add(delta.fallbacks, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::TuneCell {
            super::TuneCell {
                configs_explored: self.configs_explored.load(Ordering::Relaxed),
                measurements: self.measurements.load(Ordering::Relaxed),
                measure_seconds: self.measure_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                profiles_persisted: self.profiles_persisted.load(Ordering::Relaxed),
                profiles_loaded: self.profiles_loaded.load(Ordering::Relaxed),
                profiles_rejected: self.profiles_rejected.load(Ordering::Relaxed),
                fallbacks: self.fallbacks.load(Ordering::Relaxed),
            }
        }
    }

    /// Atomic mirror of [`super::TileCell`]. `peak_resident_bytes` merges
    /// by `fetch_max` (it is a high-water mark, not an accumulator).
    pub struct Tile {
        pub loads: AtomicU64,
        pub hits: AtomicU64,
        pub evictions: AtomicU64,
        pub loaded_bytes: AtomicU64,
        pub evicted_bytes: AtomicU64,
        pub spilled_bytes: AtomicU64,
        pub peak_resident_bytes: AtomicU64,
    }

    impl Tile {
        const fn new() -> Self {
            Tile {
                loads: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                loaded_bytes: AtomicU64::new(0),
                evicted_bytes: AtomicU64::new(0),
                spilled_bytes: AtomicU64::new(0),
                peak_resident_bytes: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.loads.store(0, Ordering::Relaxed);
            self.hits.store(0, Ordering::Relaxed);
            self.evictions.store(0, Ordering::Relaxed);
            self.loaded_bytes.store(0, Ordering::Relaxed);
            self.evicted_bytes.store(0, Ordering::Relaxed);
            self.spilled_bytes.store(0, Ordering::Relaxed);
            self.peak_resident_bytes.store(0, Ordering::Relaxed);
        }

        pub fn merge(&self, delta: &super::TileCell) {
            self.loads.fetch_add(delta.loads, Ordering::Relaxed);
            self.hits.fetch_add(delta.hits, Ordering::Relaxed);
            self.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
            self.loaded_bytes
                .fetch_add(delta.loaded_bytes, Ordering::Relaxed);
            self.evicted_bytes
                .fetch_add(delta.evicted_bytes, Ordering::Relaxed);
            self.spilled_bytes
                .fetch_add(delta.spilled_bytes, Ordering::Relaxed);
            self.peak_resident_bytes
                .fetch_max(delta.peak_resident_bytes, Ordering::Relaxed);
        }

        pub fn cell(&self) -> super::TileCell {
            super::TileCell {
                loads: self.loads.load(Ordering::Relaxed),
                hits: self.hits.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
                loaded_bytes: self.loaded_bytes.load(Ordering::Relaxed),
                evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
                spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
                peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            }
        }
    }

    /// Mirror of [`super::ServeCell`]. The cell carries a `Vec` of
    /// per-tenant rows, so unlike the other mirrors it cannot be a bundle
    /// of atomics; a `Mutex<Option<..>>` keeps the static initializer
    /// `const` (`Mutex::new(None)`) and the merge path is far off any hot
    /// loop — the service records once per terminal request outcome.
    pub struct Serve {
        inner: Mutex<Option<super::ServeCell>>,
    }

    impl Serve {
        const fn new() -> Self {
            Serve {
                inner: Mutex::new(None),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, Option<super::ServeCell>> {
            // A poisoned registry mutex only means a panic mid-merge of
            // advisory counters; keep serving the data rather than
            // propagating the panic into every later recorder.
            self.inner.lock().unwrap_or_else(|p| p.into_inner())
        }

        fn reset(&self) {
            *self.lock() = None;
        }

        pub fn merge(&self, delta: &super::ServeCell) {
            self.lock()
                .get_or_insert_with(super::ServeCell::default)
                .merge(delta);
        }

        pub fn cell(&self) -> super::ServeCell {
            self.lock().clone().unwrap_or_default()
        }
    }

    pub struct Registry {
        pub kernels: [[Stats; 4]; 2],
        pub calls: [Stats; 2],
        pub collective: Stats,
        pub resilience: Resilience,
        pub pool: Pool,
        pub verify: Verify,
        pub analyze: Analyze,
        pub gate: Gate,
        pub serve: Serve,
        pub tune: Tune,
        pub tile: Tile,
    }

    pub static REGISTRY: Registry = Registry {
        kernels: [ROW; 2],
        calls: [ZERO; 2],
        collective: ZERO,
        resilience: Resilience::new(),
        pool: Pool::new(),
        verify: Verify::new(),
        analyze: Analyze::new(),
        gate: Gate::new(),
        serve: Serve::new(),
        tune: Tune::new(),
        tile: Tile::new(),
    };

    pub fn reset() {
        for phase in &REGISTRY.kernels {
            for cell in phase {
                cell.reset();
            }
        }
        for cell in &REGISTRY.calls {
            cell.reset();
        }
        REGISTRY.collective.reset();
        REGISTRY.resilience.reset();
        REGISTRY.pool.reset();
        REGISTRY.verify.reset();
        REGISTRY.analyze.reset();
        REGISTRY.gate.reset();
        REGISTRY.serve.reset();
        REGISTRY.tune.reset();
        REGISTRY.tile.reset();
    }

    pub fn record_gate(delta: &super::GateCell) {
        REGISTRY.gate.merge(delta);
    }

    pub fn record_serve(delta: &super::ServeCell) {
        REGISTRY.serve.merge(delta);
    }

    pub fn record_tune(delta: &super::TuneCell) {
        REGISTRY.tune.merge(delta);
    }

    pub fn record_tile(delta: &super::TileCell) {
        REGISTRY.tile.merge(delta);
    }

    pub fn record_tile_spill(bytes: u64) {
        REGISTRY
            .tile
            .spilled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn record_tune_load(loaded: u64, rejected: u64) {
        let t = &REGISTRY.tune;
        t.profiles_loaded.fetch_add(loaded, Ordering::Relaxed);
        t.profiles_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    pub fn record_tune_fallback() {
        REGISTRY.tune.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_analyze_plan(sections: u64, violations: u64) {
        let a = &REGISTRY.analyze;
        a.plans_checked.fetch_add(1, Ordering::Relaxed);
        a.sections_checked.fetch_add(sections, Ordering::Relaxed);
        a.plan_violations.fetch_add(violations, Ordering::Relaxed);
    }

    pub fn record_analyze_lint(files: u64, diagnostics: u64, suppressions: u64) {
        let a = &REGISTRY.analyze;
        a.lint_files.fetch_add(files, Ordering::Relaxed);
        a.lint_diagnostics.fetch_add(diagnostics, Ordering::Relaxed);
        a.lint_suppressions
            .fetch_add(suppressions, Ordering::Relaxed);
    }

    pub fn record_analyze_dataflow(functions: u64, atomic_sites: u64, lock_sites: u64) {
        let a = &REGISTRY.analyze;
        a.dataflow_functions.fetch_add(functions, Ordering::Relaxed);
        a.dataflow_atomic_sites
            .fetch_add(atomic_sites, Ordering::Relaxed);
        a.dataflow_lock_sites
            .fetch_add(lock_sites, Ordering::Relaxed);
    }

    pub fn record_verify_schedule(failed: bool) {
        let v = &REGISTRY.verify;
        v.schedules.fetch_add(1, Ordering::Relaxed);
        if failed {
            v.schedule_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_verify_property(failed: bool) {
        let v = &REGISTRY.verify;
        v.properties.fetch_add(1, Ordering::Relaxed);
        if failed {
            v.property_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_verify_ulp(ulp: u64) {
        REGISTRY
            .verify
            .max_trajectory_ulp
            .fetch_max(ulp, Ordering::Relaxed);
    }

    pub fn record_pool_spawn(workers: u64) {
        REGISTRY
            .pool
            .workers_spawned
            .fetch_add(workers, Ordering::Relaxed);
    }

    pub fn record_pool_launch(jobs: u64, reused: bool, inline: bool) {
        let p = &REGISTRY.pool;
        if inline {
            p.inline_launches.fetch_add(1, Ordering::Relaxed);
        } else {
            p.launches.fetch_add(1, Ordering::Relaxed);
        }
        p.jobs.fetch_add(jobs, Ordering::Relaxed);
        if reused {
            p.reused_launches.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_pool_wait_nanos(nanos: u64) {
        REGISTRY.pool.wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn record_resilience(delta: &super::ResilienceCell) {
        REGISTRY.resilience.merge(delta);
    }

    /// RAII probe: times from construction to drop and commits the total
    /// into one registry cell.
    pub struct Scope {
        start: Instant,
        stats: &'static Stats,
        bytes: u64,
        rmws: u64,
    }

    impl Scope {
        fn over(stats: &'static Stats) -> Scope {
            Scope {
                start: Instant::now(),
                stats,
                bytes: 0,
                rmws: 0,
            }
        }

        /// Attribute `bytes` of estimated memory traffic to this scope.
        pub fn add_bytes(&mut self, bytes: u64) {
            self.bytes += bytes;
        }

        /// Attribute `rmws` atomic read-modify-writes to this scope.
        pub fn add_rmws(&mut self, rmws: u64) {
            self.rmws += rmws;
        }
    }

    impl Drop for Scope {
        fn drop(&mut self) {
            self.stats.record(
                self.start.elapsed().as_nanos() as u64,
                self.bytes,
                self.rmws,
            );
        }
    }

    pub fn kernel_scope(phase: Phase, block: Block) -> Scope {
        Scope::over(&REGISTRY.kernels[phase.index()][block.index()])
    }

    pub fn call_scope(phase: Phase) -> Scope {
        Scope::over(&REGISTRY.calls[phase.index()])
    }

    pub fn collective_scope() -> Scope {
        Scope::over(&REGISTRY.collective)
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Block, Phase};

    /// No-op probe: zero-sized, no clock read, nothing recorded.
    pub struct Scope;

    impl Scope {
        /// Attribute bytes of estimated memory traffic (no-op).
        #[inline(always)]
        pub fn add_bytes(&mut self, _bytes: u64) {}

        /// Attribute atomic read-modify-writes (no-op).
        #[inline(always)]
        pub fn add_rmws(&mut self, _rmws: u64) {}
    }

    #[inline(always)]
    pub fn kernel_scope(_phase: Phase, _block: Block) -> Scope {
        Scope
    }

    #[inline(always)]
    pub fn call_scope(_phase: Phase) -> Scope {
        Scope
    }

    #[inline(always)]
    pub fn collective_scope() -> Scope {
        Scope
    }

    pub fn reset() {}

    #[inline(always)]
    pub fn record_resilience(_delta: &super::ResilienceCell) {}

    #[inline(always)]
    pub fn record_pool_spawn(_workers: u64) {}

    #[inline(always)]
    pub fn record_pool_launch(_jobs: u64, _reused: bool, _inline: bool) {}

    #[inline(always)]
    pub fn record_pool_wait_nanos(_nanos: u64) {}

    #[inline(always)]
    pub fn record_verify_schedule(_failed: bool) {}

    #[inline(always)]
    pub fn record_verify_property(_failed: bool) {}

    #[inline(always)]
    pub fn record_verify_ulp(_ulp: u64) {}

    #[inline(always)]
    pub fn record_analyze_plan(_sections: u64, _violations: u64) {}

    #[inline(always)]
    pub fn record_analyze_lint(_files: u64, _diagnostics: u64, _suppressions: u64) {}

    #[inline(always)]
    pub fn record_analyze_dataflow(_functions: u64, _atomic_sites: u64, _lock_sites: u64) {}

    #[inline(always)]
    pub fn record_gate(_delta: &super::GateCell) {}

    #[inline(always)]
    pub fn record_serve(_delta: &super::ServeCell) {}

    #[inline(always)]
    pub fn record_tune(_delta: &super::TuneCell) {}

    #[inline(always)]
    pub fn record_tune_load(_loaded: u64, _rejected: u64) {}

    #[inline(always)]
    pub fn record_tune_fallback() {}

    #[inline(always)]
    pub fn record_tile(_delta: &super::TileCell) {}

    #[inline(always)]
    pub fn record_tile_spill(_bytes: u64) {}
}

/// RAII timing probe returned by [`kernel_scope`], [`call_scope`], and
/// [`collective_scope`]. With the `enabled` feature off this is a
/// zero-sized type whose methods compile to nothing.
pub use imp::Scope;

/// Whether recording is compiled in (`enabled` cargo feature).
pub fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Open a timing scope over one (phase, block) kernel invocation. Commit
/// happens when the returned [`Scope`] drops.
#[inline]
pub fn kernel_scope(phase: Phase, block: Block) -> Scope {
    imp::kernel_scope(phase, block)
}

/// Open a timing scope over one whole `aprod1`/`aprod2` backend call
/// (used by `InstrumentedBackend`).
#[inline]
pub fn call_scope(phase: Phase) -> Scope {
    imp::call_scope(phase)
}

/// Open a timing scope over one collective (allreduce) operation.
#[inline]
pub fn collective_scope() -> Scope {
    imp::collective_scope()
}

/// Zero every counter (start of a measured run).
pub fn reset() {
    imp::reset()
}

/// Merge fault/recovery counts into the registry's resilience cell (no-op
/// when telemetry is compiled out). The supervisor calls this once per
/// recovery event with the delta it just observed.
#[inline]
pub fn record_resilience(delta: &ResilienceCell) {
    imp::record_resilience(delta)
}

/// Record OS worker threads spawned by an executor pool (no-op when
/// telemetry is compiled out).
#[inline]
pub fn record_pool_spawn(workers: u64) {
    imp::record_pool_spawn(workers)
}

/// Record one executor-pool launch of `jobs` jobs. `reused` marks a launch
/// on already-spawned workers; `inline` marks the serial fast path that
/// never touched the queue. No-op when telemetry is compiled out.
#[inline]
pub fn record_pool_launch(jobs: u64, reused: bool, inline: bool) {
    imp::record_pool_launch(jobs, reused, inline)
}

/// Record time a pool worker spent parked waiting for work (no-op when
/// telemetry is compiled out).
#[inline]
pub fn record_pool_wait_nanos(nanos: u64) {
    imp::record_pool_wait_nanos(nanos)
}

/// Record one replayed adverse schedule (no-op when telemetry is compiled
/// out). `failed` marks a result outside the subject's contract.
#[inline]
pub fn record_verify_schedule(failed: bool) {
    imp::record_verify_schedule(failed)
}

/// Record one metamorphic property check (no-op when telemetry is
/// compiled out).
#[inline]
pub fn record_verify_property(failed: bool) {
    imp::record_verify_property(failed)
}

/// Fold a cross-backend trajectory divergence (in ULPs) into the running
/// maximum (no-op when telemetry is compiled out).
#[inline]
pub fn record_verify_ulp(ulp: u64) {
    imp::record_verify_ulp(ulp)
}

/// Record one static launch-plan soundness check: `sections` write-set
/// models examined, `violations` found (no-op when telemetry is compiled
/// out).
#[inline]
pub fn record_analyze_plan(sections: u64, violations: u64) {
    imp::record_analyze_plan(sections, violations)
}

/// Record one source-lint pass: `files` scanned, `diagnostics` emitted,
/// `suppressions` honored (no-op when telemetry is compiled out).
#[inline]
pub fn record_analyze_lint(files: u64, diagnostics: u64, suppressions: u64) {
    imp::record_analyze_lint(files, diagnostics, suppressions)
}

/// Record one concurrency-dataflow pass: `functions` scanned,
/// `atomic_sites` classified by the protocol checker, `lock_sites`
/// resolved by the lock-order checker (no-op when telemetry is compiled
/// out).
#[inline]
pub fn record_analyze_dataflow(functions: u64, atomic_sites: u64, lock_sites: u64) {
    imp::record_analyze_dataflow(functions, atomic_sites, lock_sites)
}

/// Merge perf-gate counts into the registry's gate cell (no-op when
/// telemetry is compiled out). The gate calls this once per run with the
/// totals it just measured and compared.
#[inline]
pub fn record_gate(delta: &GateCell) {
    imp::record_gate(delta)
}

/// Merge serving-layer counts into the registry's serve cell (no-op when
/// telemetry is compiled out). The solve service calls this as requests
/// reach terminal outcomes — typically once per drained batch.
#[inline]
pub fn record_serve(delta: &ServeCell) {
    imp::record_serve(delta)
}

/// Merge auto-tuning counts into the registry's tune cell (no-op when
/// telemetry is compiled out). The tuner calls this once per run with the
/// totals its search just measured and persisted.
#[inline]
pub fn record_tune(delta: &TuneCell) {
    imp::record_tune(delta)
}

/// Record one profile-directory load: `loaded` profiles accepted,
/// `rejected` files skipped (no-op when telemetry is compiled out).
#[inline]
pub fn record_tune_load(loaded: u64, rejected: u64) {
    imp::record_tune_load(loaded, rejected)
}

/// Record one `tuned`-backend resolution that found no matching profile
/// and fell back to the default plan (no-op when telemetry is compiled
/// out).
#[inline]
pub fn record_tune_fallback() {
    imp::record_tune_fallback()
}

/// Merge tile-cache counts into the registry's tile cell (no-op when
/// telemetry is compiled out). Counters accumulate except
/// `peak_resident_bytes`, which folds in as a running maximum. The tiled
/// LSQR operator calls this once per cache access with the delta the
/// access just cost.
#[inline]
pub fn record_tile(delta: &TileCell) {
    imp::record_tile(delta)
}

/// Record bytes written to a tile spill directory (no-op when telemetry
/// is compiled out).
#[inline]
pub fn record_tile_spill(bytes: u64) {
    imp::record_tile_spill(bytes)
}

/// Freeze the registry into a serializable snapshot. Disabled builds
/// return [`TelemetrySnapshot::empty`] with `enabled: false`.
pub fn snapshot() -> TelemetrySnapshot {
    #[cfg(feature = "enabled")]
    {
        let mut snap = TelemetrySnapshot::empty(true);
        for phase in Phase::ALL {
            for block in Block::ALL {
                let cell = imp::REGISTRY.kernels[phase.index()][block.index()]
                    .cell(phase.as_str(), block.as_str());
                if cell.calls > 0 {
                    snap.kernels.push(cell);
                }
            }
            let call = imp::REGISTRY.calls[phase.index()].cell(phase.as_str(), "*");
            if call.calls > 0 {
                snap.calls.push(call);
            }
        }
        snap.collective = imp::REGISTRY.collective.cell("collective", "*");
        snap.resilience = imp::REGISTRY.resilience.cell();
        snap.pool = imp::REGISTRY.pool.cell();
        snap.verify = imp::REGISTRY.verify.cell();
        snap.analyze = imp::REGISTRY.analyze.cell();
        snap.gate = imp::REGISTRY.gate.cell();
        snap.serve = imp::REGISTRY.serve.cell();
        snap.tune = imp::REGISTRY.tune.cell();
        snap.tile = imp::REGISTRY.tile.cell();
        snap
    }
    #[cfg(not(feature = "enabled"))]
    {
        TelemetrySnapshot::empty(false)
    }
}

/// Render the ASCII per-kernel breakdown table for a snapshot.
///
/// One row per non-empty kernel cell, then the whole-call and collective
/// totals. Times in seconds and mean microseconds, traffic in MiB,
/// atomics in millions.
pub fn kernel_table(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
        "kernel", "calls", "total s", "mean µs", "MiB", "Matomic"
    ));
    let mut row = |label: &str, c: &KernelCell| {
        let mean_us = if c.calls > 0 {
            c.seconds * 1e6 / c.calls as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<14} {:>8} {:>12.6} {:>10.2} {:>10.2} {:>10.3}\n",
            label,
            c.calls,
            c.seconds,
            mean_us,
            c.bytes as f64 / (1024.0 * 1024.0),
            c.atomic_rmws as f64 / 1e6,
        ));
    };
    for c in &snap.kernels {
        row(&format!("{}/{}", c.phase, c.block), c);
    }
    for c in &snap.calls {
        row(&format!("{} (call)", c.phase), c);
    }
    if snap.collective.calls > 0 {
        let collective = snap.collective.clone();
        row("collective", &collective);
    }
    if snap.kernels.is_empty() && snap.calls.is_empty() && snap.collective.calls == 0 {
        out.push_str(if snap.enabled {
            "(nothing recorded)\n"
        } else {
            "(telemetry disabled; rebuild with the `telemetry` feature)\n"
        });
    }
    if !snap.pool.is_empty() {
        let p = &snap.pool;
        out.push_str(&format!(
            "pool: {} launch(es) ({} inline, {} reused workers), {} job(s), \
             {} worker(s) spawned, {:.6} s worker wait\n",
            p.launches + p.inline_launches,
            p.inline_launches,
            p.reused_launches,
            p.jobs,
            p.workers_spawned,
            p.wait_seconds,
        ));
    }
    if !snap.resilience.is_empty() {
        let r = &snap.resilience;
        out.push_str(&format!(
            "resilience: {} fault(s) (panics {}, flips {}, straggles {}, \
             timeouts {}), {} breakdown(s), {} retr{}, {} restore(s), \
             {} degradation(s), {:.3} s recovering\n",
            r.faults(),
            r.rank_panics,
            r.bit_flips,
            r.straggles,
            r.timeouts,
            r.breakdowns,
            r.retries,
            if r.retries == 1 { "y" } else { "ies" },
            r.checkpoint_restores,
            r.degradations,
            r.recovery_seconds,
        ));
    }
    if !snap.verify.is_empty() {
        let v = &snap.verify;
        out.push_str(&format!(
            "verify: {} schedule(s) ({} failed), {} propert{} ({} failed), \
             max trajectory divergence {} ulp\n",
            v.schedules,
            v.schedule_failures,
            v.properties,
            if v.properties == 1 { "y" } else { "ies" },
            v.property_failures,
            v.max_trajectory_ulp,
        ));
    }
    if !snap.analyze.is_empty() {
        let a = &snap.analyze;
        out.push_str(&format!(
            "analyze: {} plan(s) checked ({} section(s), {} violation(s)), \
             {} file(s) linted ({} diagnostic(s), {} suppression(s)), \
             dataflow over {} fn(s) ({} atomic site(s), {} lock site(s))\n",
            a.plans_checked,
            a.sections_checked,
            a.plan_violations,
            a.lint_files,
            a.lint_diagnostics,
            a.lint_suppressions,
            a.dataflow_functions,
            a.dataflow_atomic_sites,
            a.dataflow_lock_sites,
        ));
    }
    if !snap.tile.is_empty() {
        let t = &snap.tile;
        out.push_str(&format!(
            "tile: {} load(s), {} hit(s) ({:.1}% hit rate), {} eviction(s), \
             {:.2} MiB loaded, {:.2} MiB evicted, {:.2} MiB spilled, \
             peak resident {:.2} MiB\n",
            t.loads,
            t.hits,
            t.hit_rate() * 100.0,
            t.evictions,
            t.loaded_bytes as f64 / (1024.0 * 1024.0),
            t.evicted_bytes as f64 / (1024.0 * 1024.0),
            t.spilled_bytes as f64 / (1024.0 * 1024.0),
            t.peak_resident_bytes as f64 / (1024.0 * 1024.0),
        ));
    }
    if !snap.gate.is_empty() {
        let g = &snap.gate;
        out.push_str(&format!(
            "gate: {} cell(s) measured ({} repeat(s), {:.3} s timing), \
             {} compared, {} regression(s), {} improvement(s), {} new\n",
            g.cells_measured,
            g.repeats,
            g.measure_seconds,
            g.cells_compared,
            g.regressions,
            g.improvements,
            g.new_cells,
        ));
    }
    if !snap.serve.is_empty() {
        let s = &snap.serve;
        out.push_str(&format!(
            "serve: {} request(s) ({} admitted, {} shed), {} completed \
             ({} converged, {} degraded, {} timed out, {} faulted), \
             {} retr{}, {} circuit-broken, queue depth ≤ {}, {} tenant(s)\n",
            s.submitted,
            s.admitted,
            s.shed,
            s.completed,
            s.converged,
            s.degraded,
            s.timed_out,
            s.faulted,
            s.retried,
            if s.retried == 1 { "y" } else { "ies" },
            s.broken_circuit,
            s.max_queue_depth,
            s.tenants.len(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_block_names_are_stable() {
        assert_eq!(Phase::Aprod1.as_str(), "aprod1");
        assert_eq!(Phase::Aprod2.as_str(), "aprod2");
        let names: Vec<&str> = Block::ALL.iter().map(|b| b.as_str()).collect();
        assert_eq!(names, ["astro", "att", "instr", "glob"]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn scopes_accumulate_into_the_registry() {
        reset();
        {
            let mut s = kernel_scope(Phase::Aprod2, Block::Att);
            s.add_bytes(1024);
            s.add_rmws(12);
        }
        {
            let mut s = kernel_scope(Phase::Aprod2, Block::Att);
            s.add_bytes(1024);
            s.add_rmws(12);
        }
        let _ = call_scope(Phase::Aprod2);
        let _ = collective_scope();
        let snap = snapshot();
        assert!(snap.enabled);
        let att = snap
            .kernels
            .iter()
            .find(|c| c.phase == "aprod2" && c.block == "att")
            .expect("att cell recorded");
        assert_eq!(att.calls, 2);
        assert_eq!(att.bytes, 2048);
        assert_eq!(att.atomic_rmws, 24);
        assert!(att.seconds >= 0.0);
        assert_eq!(snap.calls.len(), 1);
        assert_eq!(snap.collective.calls, 1);
        assert!(snap.phase_seconds(Phase::Aprod2) >= att.seconds);
        reset();
        assert!(snapshot().kernels.is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_probes_record_nothing() {
        {
            let mut s = kernel_scope(Phase::Aprod1, Block::Astro);
            s.add_bytes(u64::MAX);
            s.add_rmws(u64::MAX);
        }
        assert_eq!(std::mem::size_of::<Scope>(), 0);
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.kernels.is_empty());
        assert!(!is_enabled());
    }

    #[test]
    fn table_renders_every_cell() {
        let mut snap = TelemetrySnapshot::empty(true);
        snap.kernels.push(KernelCell {
            phase: "aprod1".into(),
            block: "astro".into(),
            calls: 4,
            seconds: 0.25,
            bytes: 1024 * 1024,
            atomic_rmws: 0,
        });
        snap.collective = KernelCell {
            phase: "collective".into(),
            block: "*".into(),
            calls: 3,
            seconds: 0.001,
            bytes: 0,
            atomic_rmws: 0,
        };
        let table = kernel_table(&snap);
        assert!(table.contains("aprod1/astro"));
        assert!(table.contains("collective"));
        let empty = kernel_table(&TelemetrySnapshot::empty(false));
        assert!(empty.contains("telemetry disabled"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn resilience_deltas_accumulate_and_reset() {
        reset();
        record_resilience(&ResilienceCell {
            rank_panics: 1,
            bit_flips: 2,
            recovery_seconds: 0.5,
            ..Default::default()
        });
        record_resilience(&ResilienceCell {
            retries: 3,
            checkpoint_restores: 2,
            degradations: 1,
            recovery_seconds: 1.0,
            ..Default::default()
        });
        let snap = snapshot();
        assert_eq!(snap.resilience.rank_panics, 1);
        assert_eq!(snap.resilience.bit_flips, 2);
        assert_eq!(snap.resilience.retries, 3);
        assert_eq!(snap.resilience.checkpoint_restores, 2);
        assert_eq!(snap.resilience.faults(), 3);
        assert!((snap.resilience.recovery_seconds - 1.5).abs() < 1e-6);
        let table = kernel_table(&snap);
        assert!(table.contains("resilience:"), "{table}");
        reset();
        assert!(snapshot().resilience.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn verify_counters_accumulate_and_reset() {
        reset();
        record_verify_schedule(false);
        record_verify_schedule(true);
        record_verify_schedule(false);
        record_verify_property(false);
        record_verify_property(true);
        record_verify_ulp(3);
        record_verify_ulp(17);
        record_verify_ulp(5);
        let snap = snapshot();
        assert_eq!(snap.verify.schedules, 3);
        assert_eq!(snap.verify.schedule_failures, 1);
        assert_eq!(snap.verify.properties, 2);
        assert_eq!(snap.verify.property_failures, 1);
        assert_eq!(snap.verify.max_trajectory_ulp, 17);
        let table = kernel_table(&snap);
        assert!(table.contains("verify:"), "{table}");
        reset();
        assert!(snapshot().verify.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn analyze_counters_accumulate_and_reset() {
        reset();
        record_analyze_plan(6, 0);
        record_analyze_plan(4, 2);
        record_analyze_lint(31, 3, 5);
        record_analyze_dataflow(120, 14, 9);
        record_analyze_dataflow(1, 1, 1);
        let snap = snapshot();
        assert_eq!(snap.analyze.plans_checked, 2);
        assert_eq!(snap.analyze.sections_checked, 10);
        assert_eq!(snap.analyze.plan_violations, 2);
        assert_eq!(snap.analyze.lint_files, 31);
        assert_eq!(snap.analyze.lint_diagnostics, 3);
        assert_eq!(snap.analyze.lint_suppressions, 5);
        assert_eq!(snap.analyze.dataflow_functions, 121);
        assert_eq!(snap.analyze.dataflow_atomic_sites, 15);
        assert_eq!(snap.analyze.dataflow_lock_sites, 10);
        let table = kernel_table(&snap);
        assert!(table.contains("analyze:"), "{table}");
        assert!(table.contains("dataflow over"), "{table}");
        reset();
        assert!(snapshot().analyze.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn gate_counters_accumulate_and_reset() {
        reset();
        record_gate(&GateCell {
            cells_measured: 15,
            repeats: 105,
            measure_seconds: 1.25,
            ..Default::default()
        });
        record_gate(&GateCell {
            cells_compared: 15,
            regressions: 2,
            improvements: 1,
            new_cells: 3,
            ..Default::default()
        });
        let snap = snapshot();
        assert_eq!(snap.gate.cells_measured, 15);
        assert_eq!(snap.gate.repeats, 105);
        assert_eq!(snap.gate.cells_compared, 15);
        assert_eq!(snap.gate.regressions, 2);
        assert_eq!(snap.gate.improvements, 1);
        assert_eq!(snap.gate.new_cells, 3);
        assert!((snap.gate.measure_seconds - 1.25).abs() < 1e-6);
        let table = kernel_table(&snap);
        assert!(table.contains("gate:"), "{table}");
        reset();
        assert!(snapshot().gate.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn serve_deltas_accumulate_merge_tenants_and_reset() {
        reset();
        record_serve(&ServeCell {
            submitted: 4,
            admitted: 3,
            shed: 1,
            completed: 3,
            converged: 2,
            degraded: 1,
            max_queue_depth: 5,
            tenants: vec![TenantUsage {
                tenant: "dr4".into(),
                requests: 3,
                seconds: 0.5,
            }],
            ..Default::default()
        });
        record_serve(&ServeCell {
            submitted: 2,
            admitted: 2,
            completed: 2,
            timed_out: 1,
            faulted: 1,
            retried: 2,
            broken_circuit: 1,
            max_queue_depth: 3,
            tenants: vec![
                TenantUsage {
                    tenant: "dr4".into(),
                    requests: 1,
                    seconds: 0.25,
                },
                TenantUsage {
                    tenant: "dr5".into(),
                    requests: 1,
                    seconds: 0.125,
                },
            ],
            ..Default::default()
        });
        let snap = snapshot();
        assert_eq!(snap.serve.submitted, 6);
        assert_eq!(snap.serve.admitted, 5);
        assert_eq!(snap.serve.shed, 1);
        assert_eq!(snap.serve.completed, 5);
        assert_eq!(snap.serve.timed_out, 1);
        assert_eq!(snap.serve.retried, 2);
        assert_eq!(snap.serve.broken_circuit, 1);
        assert_eq!(snap.serve.max_queue_depth, 5, "high-water mark is a max");
        assert_eq!(snap.serve.tenants.len(), 2, "tenant rows merge by name");
        let dr4 = snap
            .serve
            .tenants
            .iter()
            .find(|t| t.tenant == "dr4")
            .expect("dr4 row");
        assert_eq!(dr4.requests, 4);
        assert!((dr4.seconds - 0.75).abs() < 1e-9);
        let table = kernel_table(&snap);
        assert!(table.contains("serve:"), "{table}");
        reset();
        assert!(snapshot().serve.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn tile_counters_accumulate_peak_is_a_max_and_reset() {
        reset();
        record_tile(&TileCell {
            loads: 3,
            hits: 1,
            evictions: 2,
            loaded_bytes: 300,
            evicted_bytes: 200,
            peak_resident_bytes: 150,
            ..Default::default()
        });
        record_tile(&TileCell {
            loads: 1,
            hits: 7,
            peak_resident_bytes: 120,
            ..Default::default()
        });
        record_tile_spill(4096);
        let snap = snapshot();
        assert_eq!(snap.tile.loads, 4);
        assert_eq!(snap.tile.hits, 8);
        assert_eq!(snap.tile.evictions, 2);
        assert_eq!(snap.tile.loaded_bytes, 300);
        assert_eq!(snap.tile.evicted_bytes, 200);
        assert_eq!(snap.tile.spilled_bytes, 4096);
        assert_eq!(
            snap.tile.peak_resident_bytes, 150,
            "peak is a high-water mark, not a sum"
        );
        assert!((snap.tile.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
        let table = kernel_table(&snap);
        assert!(table.contains("tile:"), "{table}");
        reset();
        assert!(snapshot().tile.is_empty());
    }

    #[test]
    fn pre_resilience_snapshots_still_deserialize() {
        // Artifacts written before the resilience cell existed lack the
        // field; serde's default must fill it in.
        let old = r#"{
            "enabled": true,
            "kernels": [],
            "calls": [],
            "collective": {
                "phase": "collective", "block": "*",
                "calls": 0, "seconds": 0.0, "bytes": 0, "atomic_rmws": 0
            }
        }"#;
        let back: TelemetrySnapshot = serde_json::from_str(old).unwrap();
        assert!(back.resilience.is_empty());
        assert!(back.enabled);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = TelemetrySnapshot::empty(true);
        snap.kernels.push(KernelCell {
            phase: "aprod2".into(),
            block: "instr".into(),
            calls: 7,
            seconds: 1.5,
            bytes: 42,
            atomic_rmws: 99,
        });
        let json = serde_json::to_string_pretty(&snap).expect("serialize");
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
