//! Machine-readable run reports: one JSON artifact per measured solve,
//! pairing the solver's convergence history with the per-kernel telemetry
//! snapshot. Artifacts land under `results/telemetry/` — anchored at the
//! workspace root (see [`results_root`]) rather than the CWD, so running
//! a bin from a crate subdirectory cannot scatter artifacts — and
//! external plotting can consume them the same way it consumes the
//! `results/*.json` figures.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::TelemetrySnapshot;

/// One solver iteration's timing and residual diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationSample {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Residual norm `‖b − A x‖` after the iteration.
    pub rnorm: f64,
    /// Optimality measure `‖Aᵀ r‖` after the iteration.
    pub arnorm: f64,
    /// Wall time of the iteration (max across ranks for distributed runs).
    pub seconds: f64,
}

/// The complete perf record of one measured solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Artifact name (also the JSON filename stem).
    pub run: String,
    /// Backend registry name (e.g. `atomic-t4`).
    pub backend: String,
    /// `lsqr`, `lsmr`, or `lsqr-distributed`.
    pub solver: String,
    /// System rows.
    pub n_rows: u64,
    /// System columns.
    pub n_cols: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Stop reason (Debug form of `StopReason`).
    pub stop: String,
    /// Final residual norm.
    pub rnorm: f64,
    /// Final `‖Aᵀ r‖`.
    pub arnorm: f64,
    /// Sum of per-iteration wall times.
    pub total_seconds: f64,
    /// Per-iteration samples, in order.
    pub per_iteration: Vec<IterationSample>,
    /// Per-kernel breakdown captured at the end of the run.
    pub telemetry: TelemetrySnapshot,
}

impl RunReport {
    /// Mean seconds per iteration (0 when no iterations ran).
    pub fn mean_iteration_seconds(&self) -> f64 {
        if self.per_iteration.is_empty() {
            0.0
        } else {
            self.total_seconds / self.per_iteration.len() as f64
        }
    }
}

/// Subdirectory of the results root the JSON artifacts are written to.
pub const TELEMETRY_DIR: &str = "telemetry";

/// The workspace root: the nearest ancestor of `start` whose `Cargo.toml`
/// declares `[workspace]`. Artifact paths are anchored here so running a
/// bin from a crate subdirectory does not scatter `results/` copies
/// around the tree.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// [`workspace_root_from`] starting at the process working directory.
pub fn workspace_root() -> Option<PathBuf> {
    workspace_root_from(&std::env::current_dir().ok()?)
}

/// Resolve the artifact root: an explicit override wins, otherwise
/// `<workspace root>/results`, otherwise plain `results` under `start`
/// (no workspace found — e.g. an installed binary run elsewhere).
pub fn resolve_results_root(override_dir: Option<PathBuf>, start: &Path) -> PathBuf {
    if let Some(dir) = override_dir {
        return dir;
    }
    match workspace_root_from(start) {
        Some(root) => root.join("results"),
        None => start.join("results"),
    }
}

/// The directory every `results/` artifact is anchored at: the
/// `GAIA_RESULTS_DIR` environment variable when set, else
/// `<workspace root>/results` regardless of the current directory.
pub fn results_root() -> PathBuf {
    let override_dir = std::env::var_os("GAIA_RESULTS_DIR").map(PathBuf::from);
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    resolve_results_root(override_dir, &start)
}

/// The path `write_report` would use for a run name.
pub fn report_path(run: &str) -> PathBuf {
    let stem: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    results_root()
        .join(TELEMETRY_DIR)
        .join(format!("{stem}.json"))
}

/// Serialize `report` to `results/telemetry/{run}.json` (directory created
/// on demand) and return the path written.
pub fn write_report(report: &RunReport) -> io::Result<PathBuf> {
    let path = report_path(&report.run);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelCell;

    fn sample_report() -> RunReport {
        RunReport {
            run: "unit-test".into(),
            backend: "seq".into(),
            solver: "lsqr".into(),
            n_rows: 100,
            n_cols: 20,
            iterations: 2,
            stop: "ResidualSmall".into(),
            rnorm: 1e-9,
            arnorm: 1e-12,
            total_seconds: 0.5,
            per_iteration: vec![
                IterationSample {
                    iteration: 1,
                    rnorm: 1e-3,
                    arnorm: 1e-4,
                    seconds: 0.3,
                },
                IterationSample {
                    iteration: 2,
                    rnorm: 1e-9,
                    arnorm: 1e-12,
                    seconds: 0.2,
                },
            ],
            telemetry: {
                let mut t = TelemetrySnapshot::empty(true);
                t.kernels.push(KernelCell {
                    phase: "aprod1".into(),
                    block: "att".into(),
                    calls: 2,
                    seconds: 0.1,
                    bytes: 640,
                    atomic_rmws: 0,
                });
                t
            },
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: RunReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        assert!((back.mean_iteration_seconds() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_path_sanitizes_names() {
        let p = report_path("profile atomic-t4/x");
        assert_eq!(
            p.file_name().and_then(|n| n.to_str()),
            Some("profile_atomic-t4_x.json")
        );
        assert!(
            p.parent().is_some_and(|d| d.ends_with("results/telemetry")),
            "{}",
            p.display()
        );
    }

    #[test]
    fn workspace_root_is_found_from_a_crate_subdir() {
        // Unit tests run with CWD at the crate dir; the anchor must still
        // be the workspace root two levels up.
        let root = workspace_root().expect("inside the workspace");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").join("telemetry").exists());
        let here = std::env::current_dir().unwrap();
        assert_eq!(workspace_root_from(&here), Some(root));
    }

    #[test]
    fn results_root_resolution_prefers_override_then_workspace() {
        let tmp = std::env::temp_dir().join("gaia-telemetry-results-root-test");
        let nested = tmp.join("ws").join("crates").join("x");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(tmp.join("ws").join("Cargo.toml"), "[workspace]\n").unwrap();

        // Explicit override wins unconditionally.
        let forced = resolve_results_root(Some(PathBuf::from("/tmp/forced")), &nested);
        assert_eq!(forced, PathBuf::from("/tmp/forced"));

        // Otherwise the nearest `[workspace]` manifest anchors the root.
        let anchored = resolve_results_root(None, &nested);
        assert_eq!(anchored, tmp.join("ws").join("results"));

        // With no workspace above, fall back to `start/results`.
        let orphan = std::env::temp_dir();
        assert_eq!(resolve_results_root(None, &orphan), orphan.join("results"));

        let _ = std::fs::remove_dir_all(&tmp);
    }
}
