//! Request and outcome types of the solve service.
//!
//! Every request submitted to [`crate::SolveService`] resolves to exactly
//! one [`Outcome`] — the service-level contract the `gaia-verify`
//! invariant checker enforces over the event log. Outcomes are *typed*,
//! not stringly: load shedding, deadline expiry, circuit breaking, and
//! fault exhaustion are distinct variants a caller can match on, the way
//! the production pipeline distinguishes "resubmit later" from "shrink
//! the job" from "page an operator".

use std::sync::Arc;
use std::time::Duration;

use gaia_lsqr::{LsqrConfig, Solution};
use gaia_mpi_sim::FaultPlan;
use gaia_sparse::SparseSystem;
use serde::{Deserialize, Serialize};

/// One solve request: a tenant asking the service to run one system on
/// one backend under a deadline.
#[derive(Clone)]
pub struct SolveRequest {
    /// Tenant identity — the unit of fair-share scheduling, quotas, and
    /// circuit breaking (a CINECA allocation in production terms).
    pub tenant: String,
    /// The system to solve. `Arc` so many queued requests can share one
    /// generated system without copying the matrix.
    pub system: Arc<SparseSystem>,
    /// Solver configuration.
    pub config: LsqrConfig,
    /// Backend registry name (`seq`, `chunked-t4`, ...). Thread-suffix-
    /// free names inherit the service's (possibly degraded) share.
    pub backend: String,
    /// Requested rank count for the distributed launch.
    pub ranks: usize,
    /// Relative deadline, armed at admission; `None` means no deadline.
    /// Enforced both in-queue (expired requests are never launched) and
    /// mid-solve (cooperative cancellation at iteration boundaries).
    pub deadline: Option<Duration>,
    /// Scripted fault schedule for chaos runs; `None` runs fault-free.
    pub faults: Option<Arc<FaultPlan>>,
}

impl SolveRequest {
    /// A fault-free request with no deadline on the `seq` backend.
    pub fn new(tenant: impl Into<String>, system: Arc<SparseSystem>) -> Self {
        SolveRequest {
            tenant: tenant.into(),
            system,
            config: LsqrConfig::new(),
            backend: "seq".into(),
            ranks: 1,
            deadline: None,
            faults: None,
        }
    }
}

/// Why a request was refused at admission instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The bounded admission queue is full — global backpressure.
    QueueFull,
    /// The tenant already holds its full quota of queued work.
    TenantQuotaExceeded,
    /// The tenant's circuit breaker is open (recent repeated failures);
    /// fast-fail until the cooldown probe succeeds.
    CircuitOpen,
    /// The service is shutting down and no longer admits work.
    Shutdown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShedReason::QueueFull => "queue full",
            ShedReason::TenantQuotaExceeded => "tenant quota exceeded",
            ShedReason::CircuitOpen => "circuit open",
            ShedReason::Shutdown => "shutting down",
        };
        f.write_str(s)
    }
}

/// What a completed solve delivered.
#[derive(Debug, Clone)]
pub struct SolveSummary {
    /// The solution itself (converged, or converged-under-degradation).
    pub solution: Solution,
    /// Rank count of the successful launch.
    pub ranks: usize,
    /// Thread share the launch actually received.
    pub threads: usize,
    /// Supervisor attempts consumed (1 = clean first launch).
    pub attempts: usize,
    /// Service-level retries consumed (0 = first execution succeeded).
    pub retries: u32,
}

/// The single terminal outcome of one submitted request.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Converged at full quality with the requested resources.
    Converged(SolveSummary),
    /// Converged, but under degraded resources — fewer ranks or a
    /// shrunken thread share (overload response), or a supervisor
    /// rank-count degradation (fault response).
    Degraded(SolveSummary),
    /// The deadline expired — in-queue, or mid-solve via cooperative
    /// cancellation at an iteration boundary. Deliberately carries **no**
    /// partial [`Solution`]: a half-converged `x` is indistinguishable
    /// from a converged one at the type level and has caused real
    /// pipelines to publish garbage. The iteration count records how far
    /// the solve got (0 = never launched); the last periodic checkpoint,
    /// if any, remains loadable for resubmission.
    DeadlineExceeded {
        /// Iterations completed before cancellation (0 = shed in queue).
        iterations: usize,
    },
    /// Refused at admission; never entered the queue.
    Shed(ShedReason),
    /// All retries exhausted without a recoverable state.
    Faulted(String),
}

impl Outcome {
    /// The variant tag, for event logs and aggregation.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            Outcome::Converged(_) => OutcomeKind::Converged,
            Outcome::Degraded(_) => OutcomeKind::Degraded,
            Outcome::DeadlineExceeded { .. } => OutcomeKind::DeadlineExceeded,
            Outcome::Shed(_) => OutcomeKind::Shed,
            Outcome::Faulted(_) => OutcomeKind::Faulted,
        }
    }

    /// The solve summary, when one exists (converged or degraded).
    pub fn summary(&self) -> Option<&SolveSummary> {
        match self {
            Outcome::Converged(s) | Outcome::Degraded(s) => Some(s),
            _ => None,
        }
    }
}

/// Serializable tag of an [`Outcome`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Full-quality convergence.
    Converged,
    /// Convergence under degraded resources.
    Degraded,
    /// Deadline expired (in-queue or mid-solve).
    DeadlineExceeded,
    /// Refused at admission.
    Shed,
    /// Retries exhausted.
    Faulted,
}

impl std::fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OutcomeKind::Converged => "converged",
            OutcomeKind::Degraded => "degraded",
            OutcomeKind::DeadlineExceeded => "deadline-exceeded",
            OutcomeKind::Shed => "shed",
            OutcomeKind::Faulted => "faulted",
        };
        f.write_str(s)
    }
}

/// One entry of the service's append-only event log — the audit trail
/// the `gaia-verify` service invariants replay. Request ids are unique
/// per service instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// A request arrived at `submit`.
    Submitted {
        /// Service-assigned request id.
        id: u64,
        /// Tenant that submitted it.
        tenant: String,
    },
    /// The request entered the admission queue.
    Admitted {
        /// Request id.
        id: u64,
    },
    /// The request was refused at admission.
    Shed {
        /// Request id.
        id: u64,
        /// Typed refusal reason.
        reason: ShedReason,
    },
    /// A worker began executing the request.
    Started {
        /// Request id.
        id: u64,
        /// Thread share granted (after any degradation).
        threads: usize,
        /// Rank count granted (after any degradation).
        ranks: usize,
    },
    /// A service-level retry was launched for the request.
    Retried {
        /// Request id.
        id: u64,
        /// 1-based retry index.
        attempt: u32,
    },
    /// The request reached its terminal outcome.
    Finished {
        /// Request id.
        id: u64,
        /// Which outcome variant it resolved to.
        kind: OutcomeKind,
    },
}

impl ServiceEvent {
    /// The request id this event concerns.
    pub fn id(&self) -> u64 {
        match self {
            ServiceEvent::Submitted { id, .. }
            | ServiceEvent::Admitted { id }
            | ServiceEvent::Shed { id, .. }
            | ServiceEvent::Started { id, .. }
            | ServiceEvent::Retried { id, .. }
            | ServiceEvent::Finished { id, .. } => *id,
        }
    }
}
