//! # gaia-serve
//!
//! A long-running, in-process solve service: concurrent tenants submit
//! solve requests (distinct systems, sizes, backends) against the shared
//! executor pool, and each request runs under the resilient supervisor —
//! so one tenant's fault schedule, panic, or numerical breakdown never
//! takes down the service or another tenant's solves.
//!
//! The production AVU-GSR pipeline runs as recurring campaigns across
//! CINECA allocations, where many reductions with different sizes and
//! deadlines share one machine budget. This crate reproduces that
//! operational layer in miniature:
//!
//! * **Bounded admission** ([`queue::AdmissionQueue`]): a global queue
//!   bound provides backpressure; rejections are typed
//!   ([`ShedReason`]) so callers know *why* they were shed.
//! * **Fair-share scheduling**: one lane per tenant, round-robin pops,
//!   and a per-tenant quota — a saturating tenant cannot starve others.
//! * **Deadlines** ([`gaia_lsqr::CancellationToken`]): enforced in-queue
//!   (expired work is never launched) and mid-solve (cooperative
//!   cancellation at iteration boundaries, sharing the health-guard hook
//!   point). A cancelled solve yields [`Outcome::DeadlineExceeded`] —
//!   never a partial solution — while its last checkpoint stays
//!   loadable.
//! * **Retries** with capped full-jitter exponential backoff
//!   ([`gaia_lsqr::jittered_backoff`]), a layer above the supervisor's
//!   own per-solve recovery.
//! * **Circuit breaking** ([`breaker::CircuitBreaker`]): a tenant whose
//!   requests keep faulting fast-fails until a cooldown probe succeeds.
//! * **Graceful degradation** ([`scheduler::share_for`]): under queue
//!   pressure, launches first shrink their thread share, then collapse
//!   to one rank, before admission finally sheds — quality degrades
//!   before work is dropped.
//!
//! The service appends every lifecycle transition to an event log
//! ([`ServiceEvent`]); `gaia-verify` replays that log to prove the
//! service-level invariant: **every submitted request resolves to
//! exactly one typed [`Outcome`]** — admitted XOR shed, finished exactly
//! once if admitted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breaker;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod service;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use queue::AdmissionQueue;
pub use request::{Outcome, OutcomeKind, ServiceEvent, ShedReason, SolveRequest, SolveSummary};
pub use scheduler::{share_for, DegradeConfig, ResourceShare};
pub use service::{RetryConfig, ServiceConfig, SolveService, Ticket};
