//! Pressure-based graceful degradation.
//!
//! Under overload the service sheds *quality* before it sheds *work*:
//! as the admission queue fills, new launches get a shrunken thread
//! share, then a single rank, before the queue bound finally rejects
//! submissions outright. That ordering mirrors the production CINECA
//! workflow, where a campaign squeezed for node-hours runs smaller
//! per-job allocations rather than dropping solves from the schedule.
//!
//! The decision is a pure function of queue pressure (depth / capacity)
//! so it is trivially unit-testable and the overload bench can assert
//! the exact thresholds.

/// Degradation tuning.
#[derive(Debug, Clone, Copy)]
pub struct DegradeConfig {
    /// Thread share of an unpressured launch.
    pub full_threads: usize,
    /// Thread floor a degraded launch never goes below.
    pub min_threads: usize,
    /// Queue pressure (depth / capacity) at which the thread share is
    /// halved.
    pub shrink_pressure: f64,
    /// Queue pressure at which launches also collapse to one rank.
    pub rank_floor_pressure: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            full_threads: 2,
            min_threads: 1,
            shrink_pressure: 0.5,
            rank_floor_pressure: 0.75,
        }
    }
}

/// Resources granted to one launch after the degradation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceShare {
    /// Thread budget handed to the backend.
    pub threads: usize,
    /// Rank count handed to the distributed solve.
    pub ranks: usize,
    /// True when either axis was reduced below the request — a
    /// convergent solve under this share reports
    /// [`crate::Outcome::Degraded`], not `Converged`.
    pub degraded: bool,
}

/// Decide the resource share for a launch of `requested_ranks` given the
/// current queue `depth` out of `capacity`.
pub fn share_for(
    cfg: &DegradeConfig,
    requested_ranks: usize,
    depth: usize,
    capacity: usize,
) -> ResourceShare {
    let requested_ranks = requested_ranks.max(1);
    let pressure = depth as f64 / capacity.max(1) as f64;
    if pressure >= cfg.rank_floor_pressure {
        ResourceShare {
            threads: cfg.min_threads.max(1),
            ranks: 1,
            degraded: cfg.min_threads < cfg.full_threads || requested_ranks > 1,
        }
    } else if pressure >= cfg.shrink_pressure {
        let threads = (cfg.full_threads / 2).max(cfg.min_threads).max(1);
        ResourceShare {
            threads,
            ranks: requested_ranks,
            degraded: threads < cfg.full_threads,
        }
    } else {
        ResourceShare {
            threads: cfg.full_threads.max(1),
            ranks: requested_ranks,
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradeConfig {
        DegradeConfig {
            full_threads: 4,
            min_threads: 1,
            shrink_pressure: 0.5,
            rank_floor_pressure: 0.75,
        }
    }

    #[test]
    fn unpressured_launches_get_the_full_share() {
        let s = share_for(&cfg(), 3, 2, 16);
        assert_eq!(
            s,
            ResourceShare {
                threads: 4,
                ranks: 3,
                degraded: false
            }
        );
    }

    #[test]
    fn moderate_pressure_halves_threads_but_keeps_ranks() {
        let s = share_for(&cfg(), 3, 8, 16);
        assert_eq!(
            s,
            ResourceShare {
                threads: 2,
                ranks: 3,
                degraded: true
            }
        );
    }

    #[test]
    fn heavy_pressure_collapses_to_one_rank_at_the_thread_floor() {
        let s = share_for(&cfg(), 3, 12, 16);
        assert_eq!(
            s,
            ResourceShare {
                threads: 1,
                ranks: 1,
                degraded: true
            }
        );
    }

    #[test]
    fn degradation_order_is_threads_then_ranks_then_never_below_floors() {
        // Sweep pressure upward: thread share is monotonically
        // non-increasing, rank collapse happens only after the shrink.
        let c = cfg();
        let mut last_threads = usize::MAX;
        for depth in 0..=16 {
            let s = share_for(&c, 2, depth, 16);
            assert!(s.threads <= last_threads);
            assert!(s.threads >= c.min_threads);
            assert!(s.ranks >= 1);
            if s.ranks < 2 {
                assert!(s.threads <= c.full_threads / 2, "ranks collapse last");
            }
            last_threads = s.threads;
        }
    }
}
