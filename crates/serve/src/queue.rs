//! Bounded, fair-share admission queue.
//!
//! One lane per tenant — created on first push, dropped when drained,
//! so lane count tracks tenants *currently queued*, not every tenant
//! name ever seen — round-robin service across the lanes, a global
//! capacity bound (backpressure), and a per-tenant quota (one noisy
//! tenant cannot occupy the whole queue). Rejections are *typed*
//! ([`ShedReason`]) so callers can distinguish "the service is full"
//! from "you specifically are over quota".
//!
//! The queue is the only blocking hand-off in the service: workers park
//! on the condvar until work arrives or the queue closes. Closing stops
//! admission (further pushes shed with [`ShedReason::Shutdown`]) but
//! lets workers drain what was already admitted — the invariant "every
//! admitted request terminates with exactly one outcome" depends on
//! close-then-drain, never close-then-drop.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use crate::request::ShedReason;

struct Lane<T> {
    tenant: String,
    items: VecDeque<T>,
}

struct State<T> {
    lanes: Vec<Lane<T>>,
    /// Round-robin cursor into `lanes` for the next pop.
    cursor: usize,
    len: usize,
    max_depth: u64,
    closed: bool,
}

/// A bounded multi-tenant queue with round-robin fair-share pops.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    work_ready: Condvar,
    capacity: usize,
    tenant_quota: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items total and
    /// `tenant_quota` items per tenant at any moment.
    pub fn new(capacity: usize, tenant_quota: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                max_depth: 0,
                closed: false,
            }),
            work_ready: Condvar::new(),
            capacity: capacity.max(1),
            tenant_quota: tenant_quota.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A poisoned queue mutex means a panic while holding the lock;
        // the lane structure is updated atomically under it, so the
        // state is still coherent — keep serving rather than cascading.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to admit `item` under `tenant`'s lane. On rejection the item
    /// is handed back alongside the typed reason so the caller can
    /// resolve its ticket.
    pub fn try_push(&self, tenant: &str, item: T) -> Result<(), (ShedReason, T)> {
        self.try_push_then(tenant, item, || {})
    }

    /// [`try_push`](Self::try_push), running `on_admit` under the queue
    /// lock once admission is decided but *before* the item becomes
    /// poppable. The service logs its `Admitted` event here so no worker
    /// can observe (and log `Started` for) a request whose admission is
    /// not yet in the event log.
    pub fn try_push_then(
        &self,
        tenant: &str,
        item: T,
        on_admit: impl FnOnce(),
    ) -> Result<(), (ShedReason, T)> {
        let mut st = self.lock();
        if st.closed {
            return Err((ShedReason::Shutdown, item));
        }
        if st.len >= self.capacity {
            return Err((ShedReason::QueueFull, item));
        }
        let lane_len = st
            .lanes
            .iter()
            .find(|l| l.tenant == tenant)
            .map_or(0, |l| l.items.len());
        if lane_len >= self.tenant_quota {
            return Err((ShedReason::TenantQuotaExceeded, item));
        }
        match st.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => lane.items.push_back(item),
            None => st.lanes.push(Lane {
                tenant: tenant.to_string(),
                items: VecDeque::from([item]),
            }),
        }
        st.len += 1;
        st.max_depth = st.max_depth.max(st.len as u64);
        on_admit();
        drop(st);
        self.work_ready.notify_one();
        Ok(())
    }

    /// Pop the next item fair-share: round-robin across non-empty tenant
    /// lanes, so a tenant with a deep backlog cannot starve the others.
    /// Blocks while the queue is open and empty; returns `None` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if st.len > 0 {
                let n = st.lanes.len();
                for step in 0..n {
                    let i = (st.cursor + step) % n;
                    if let Some(item) = st.lanes[i].items.pop_front() {
                        if st.lanes[i].items.is_empty() {
                            // Drop the drained lane so a long-lived
                            // service with many distinct tenants doesn't
                            // grow (and linearly scan) lanes forever.
                            // The lane after `i` shifts into slot `i`,
                            // so the cursor stays at `i` to keep the
                            // round-robin order intact.
                            st.lanes.remove(i);
                            st.cursor = if st.lanes.is_empty() {
                                0
                            } else {
                                i % st.lanes.len()
                            };
                        } else {
                            st.cursor = (i + 1) % n;
                        }
                        st.len -= 1;
                        return Some(item);
                    }
                }
            }
            if st.closed {
                return None;
            }
            st = self
                .work_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop admission; wakes every parked worker. Already-admitted items
    /// remain poppable (close-then-drain).
    pub fn close(&self) {
        self.lock().closed = true;
        self.work_ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().len
    }

    /// High-water mark of [`depth`](Self::depth) since construction.
    pub fn max_depth(&self) -> u64 {
        self.lock().max_depth
    }

    /// Total capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_tenants_fairly() {
        let q: AdmissionQueue<&str> = AdmissionQueue::new(16, 8);
        for item in ["a1", "a2", "a3"] {
            q.try_push("a", item).unwrap();
        }
        q.try_push("b", "b1").unwrap();
        // Fair share: b's single item is served second, not fourth.
        let order: Vec<&str> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["a1", "b1", "a2", "a3"]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.max_depth(), 4);
    }

    #[test]
    fn capacity_and_quota_shed_with_typed_reasons() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(3, 2);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        let (reason, item) = q.try_push("a", 3).unwrap_err();
        assert_eq!(reason, ShedReason::TenantQuotaExceeded);
        assert_eq!(item, 3);
        q.try_push("b", 4).unwrap();
        let (reason, _) = q.try_push("c", 5).unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);
    }

    #[test]
    fn drained_lanes_are_dropped_and_fairness_survives_removal() {
        let q: AdmissionQueue<String> = AdmissionQueue::new(4, 4);
        // Many distinct tenant names over time must not accumulate lanes.
        for round in 0..100 {
            let tenant = format!("tenant-{round}");
            q.try_push(&tenant, format!("{round}")).unwrap();
            assert_eq!(q.pop().unwrap(), format!("{round}"));
        }
        assert_eq!(q.lock().lanes.len(), 0, "drained lanes linger");

        // Round-robin stays fair across a lane removal mid-rotation.
        q.try_push("a", "a1".into()).unwrap();
        q.try_push("b", "b1".into()).unwrap();
        q.try_push("c", "c1".into()).unwrap();
        q.try_push("c", "c2".into()).unwrap();
        let order: Vec<String> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["a1", "b1", "c1", "c2"]);
        assert_eq!(q.lock().lanes.len(), 0);
    }

    #[test]
    fn close_stops_admission_but_drains_admitted_items() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4, 4);
        q.try_push("a", 1).unwrap();
        q.close();
        let (reason, _) = q.try_push("a", 2).unwrap_err();
        assert_eq!(reason, ShedReason::Shutdown);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_work_arrives() {
        use std::sync::Arc;
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(4, 4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push("a", 7).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));
    }
}
