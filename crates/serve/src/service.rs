//! The solve service: worker threads draining the admission queue.
//!
//! Each worker pops fair-share, decides a resource share from current
//! queue pressure, and runs the request under the resilient supervisor
//! with the request's deadline threaded in as a cooperative cancellation
//! token. Panics are contained by two `catch_unwind` boundaries: one
//! around the solve itself (a panicking tenant becomes a retryable
//! failure) and a last-resort one around the whole execute path (a bug
//! in telemetry or event logging still resolves the ticket `Faulted`
//! instead of killing the worker), so no request can take down a worker,
//! let alone the service.
//!
//! This file is the service's only thread-spawn site, and is allowlisted
//! as such in `gaia-analyze` alongside the executor pool: every other
//! crate must launch through [`gaia_backends::ExecutorPool`], and every
//! serve module but this one must stay spawn-free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gaia_backends::registry::backend_by_name;
use gaia_backends::{Backend, SeqBackend};
use gaia_lsqr::resilient::{RecoveryPolicy, ResilienceOptions};
use gaia_lsqr::{jittered_backoff, solve_resilient, CancellationToken, StopReason};
use gaia_telemetry::{ServeCell, TenantUsage};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::queue::AdmissionQueue;
use crate::request::{Outcome, OutcomeKind, ServiceEvent, ShedReason, SolveRequest, SolveSummary};
use crate::scheduler::{share_for, DegradeConfig};

/// Service-level retry tuning (a layer above the supervisor's own
/// per-solve retries): how often a *terminally failed* request is
/// re-executed, with capped full-jitter backoff between executions.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Re-executions after the first (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff before the first retry.
    pub backoff: Duration,
    /// Ceiling the exponential backoff never exceeds.
    pub backoff_cap: Duration,
    /// Seed decorrelating the jitter across services; each request
    /// additionally folds its id in, so concurrent retries spread out.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 2,
            backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5E47E,
        }
    }
}

/// Full service tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (concurrent solves).
    pub workers: usize,
    /// Admission queue capacity (global backpressure bound).
    pub queue_capacity: usize,
    /// Max queued requests per tenant (fair-share quota).
    pub tenant_quota: usize,
    /// Overload degradation thresholds.
    pub degrade: DegradeConfig,
    /// Per-tenant circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Service-level retry tuning.
    pub retry: RetryConfig,
    /// Supervisor policy for each solve (per-solve retries, checkpoint
    /// cadence, rank degradation).
    pub supervisor: RecoveryPolicy,
    /// Collective timeout handed to each distributed launch.
    pub collective_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            tenant_quota: 8,
            degrade: DegradeConfig::default(),
            breaker: BreakerConfig::default(),
            retry: RetryConfig::default(),
            supervisor: RecoveryPolicy {
                backoff: Duration::ZERO,
                ..RecoveryPolicy::default()
            },
            collective_timeout: Some(Duration::from_secs(5)),
        }
    }
}

struct TicketInner {
    slot: Mutex<Option<Outcome>>,
    done: Condvar,
}

/// A handle to one submitted request's eventual [`Outcome`].
#[derive(Clone)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    fn new() -> Self {
        Ticket(Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }))
    }

    fn resolve(&self, outcome: Outcome) {
        let mut slot = self.0.slot.lock().unwrap_or_else(PoisonError::into_inner);
        // First resolution wins; the service only resolves once per
        // request, so a second write would be a logic bug upstream.
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.0.done.notify_all();
    }

    /// Block until the request resolves and return its outcome.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.0.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.clone() {
                return outcome;
            }
            slot = self
                .0
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The outcome, if already resolved (non-blocking).
    pub fn try_outcome(&self) -> Option<Outcome> {
        self.0
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

struct Work {
    id: u64,
    request: SolveRequest,
    ticket: Ticket,
    token: CancellationToken,
}

struct Inner {
    cfg: ServiceConfig,
    queue: AdmissionQueue<Work>,
    breaker: CircuitBreaker,
    events: Mutex<Vec<ServiceEvent>>,
    // ORDERING: `next_id` is a pure id dispenser — `Relaxed` fetch_add is
    // enough for uniqueness, and every cross-thread hand-off (queue items,
    // tickets, the event log) synchronizes through mutexes, not atomics.
    next_id: AtomicU64,
}

impl Inner {
    fn log(&self, event: ServiceEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    fn finished_logged(&self, id: u64) -> bool {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .any(|e| matches!(e, ServiceEvent::Finished { id: fid, .. } if *fid == id))
    }

    /// [`execute`](Self::execute) with a last-resort panic boundary: a
    /// panic anywhere in the execute path outside `solve_resilient`'s own
    /// `catch_unwind` (telemetry, event logging, the backend registry)
    /// must not kill the worker thread — that would silently shrink
    /// capacity and leave the in-flight ticket unresolved, blocking its
    /// `wait()` forever. The recovery resolves the ticket `Faulted` and
    /// logs `Finished` exactly once, preserving the audit invariant.
    fn execute_contained(&self, work: Work) {
        let id = work.id;
        let tenant = work.request.tenant.clone();
        let ticket = work.ticket.clone();
        if catch_unwind(AssertUnwindSafe(|| self.execute(work))).is_err() {
            if ticket.try_outcome().is_some() {
                // `finish` completed; the panic struck after resolution.
                return;
            }
            // The panic may have landed between `finish`'s Finished log
            // and the ticket resolution — log only if it didn't.
            if !self.finished_logged(id) {
                self.log(ServiceEvent::Finished {
                    id,
                    kind: OutcomeKind::Faulted,
                });
            }
            // No breaker record here: `execute` may already have recorded
            // one before the panic, and a service-side panic is not a
            // tenant-health signal — but a half-open probe slot must not
            // stay reserved for a verdict that will never come.
            self.breaker.probe_aborted(&tenant);
            ticket.resolve(Outcome::Faulted(
                "service panicked outside the solve path".to_string(),
            ));
        }
    }

    fn finish(&self, id: u64, tenant: &str, outcome: Outcome, ticket: &Ticket, wall: Duration) {
        let kind = outcome.kind();
        self.log(ServiceEvent::Finished { id, kind });
        let mut delta = ServeCell {
            completed: 1,
            ..ServeCell::default()
        };
        match kind {
            OutcomeKind::Converged => delta.converged = 1,
            OutcomeKind::Degraded => delta.degraded = 1,
            OutcomeKind::DeadlineExceeded => delta.timed_out = 1,
            OutcomeKind::Faulted => delta.faulted = 1,
            // Shed requests resolve at submit and never reach a worker.
            OutcomeKind::Shed => {}
        }
        delta.tenants = vec![TenantUsage {
            tenant: tenant.to_string(),
            requests: 1,
            seconds: wall.as_secs_f64(),
        }];
        gaia_telemetry::record_serve(&delta);
        ticket.resolve(outcome);
    }

    /// Run one admitted request to its terminal outcome.
    fn execute(&self, work: Work) {
        let Work {
            id,
            request,
            ticket,
            token,
        } = work;
        // gaia-analyze: allow(timing): per-tenant wall-time accounting
        // is this service's fairness ledger, not a kernel measurement.
        let start = Instant::now();

        // Deadline enforcement in-queue: a request whose deadline struck
        // while waiting is never launched.
        if token.is_cancelled() {
            self.breaker.probe_aborted(&request.tenant);
            self.finish(
                id,
                &request.tenant,
                Outcome::DeadlineExceeded { iterations: 0 },
                &ticket,
                start.elapsed(),
            );
            return;
        }

        let share = share_for(
            &self.cfg.degrade,
            request.ranks,
            self.queue.depth(),
            self.queue.capacity(),
        );
        self.log(ServiceEvent::Started {
            id,
            threads: share.threads,
            ranks: share.ranks,
        });

        if backend_by_name(&request.backend, share.threads).is_none() {
            let outcome = Outcome::Faulted(format!("unknown backend '{}'", request.backend));
            self.breaker.record_failure(&request.tenant);
            self.finish(id, &request.tenant, outcome, &ticket, start.elapsed());
            return;
        }

        let mut retries_used: u32 = 0;
        // Iterations the most recent attempt completed, so a deadline
        // firing *between* retries still reports how far the solve got
        // (the Outcome::DeadlineExceeded contract: 0 = never launched).
        let mut last_iterations: usize = 0;
        let outcome = loop {
            if token.is_cancelled() {
                break Outcome::DeadlineExceeded {
                    iterations: last_iterations,
                };
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                solve_resilient(
                    &request.system,
                    share.ranks,
                    &request.config,
                    |_| {
                        backend_by_name(&request.backend, share.threads)
                            .unwrap_or_else(|| Box::new(SeqBackend) as Box<dyn Backend>)
                    },
                    &ResilienceOptions {
                        // Fold the request id into the supervisor's
                        // jitter seed (mirroring the service-level retry
                        // seeding below) so concurrent tenants' in-solve
                        // retry pauses decorrelate too.
                        policy: RecoveryPolicy {
                            jitter_seed: self.cfg.supervisor.jitter_seed ^ id,
                            ..self.cfg.supervisor
                        },
                        faults: request.faults.clone(),
                        collective_timeout: self.cfg.collective_timeout,
                        cancel: Some(token.clone()),
                        ..Default::default()
                    },
                )
            }));
            let failure = match attempt {
                Ok(Ok(report)) => {
                    if report.solution.stop == StopReason::Cancelled {
                        break Outcome::DeadlineExceeded {
                            iterations: report.solution.iterations,
                        };
                    }
                    if report.solution.stop.converged() {
                        let degraded = share.degraded
                            || report.final_ranks < share.ranks
                            || report.telemetry.degradations > 0;
                        let summary = SolveSummary {
                            ranks: report.final_ranks,
                            threads: share.threads,
                            attempts: report.attempts.len(),
                            retries: retries_used,
                            solution: report.solution,
                        };
                        break if degraded {
                            Outcome::Degraded(summary)
                        } else {
                            Outcome::Converged(summary)
                        };
                    }
                    last_iterations = report.solution.iterations;
                    format!(
                        "solve stopped without converging: {:?}",
                        report.solution.stop
                    )
                }
                Ok(Err(unrecoverable)) => unrecoverable.to_string(),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    format!("solve panicked: {msg}")
                }
            };
            if retries_used >= self.cfg.retry.max_retries {
                break Outcome::Faulted(failure);
            }
            retries_used += 1;
            self.log(ServiceEvent::Retried {
                id,
                attempt: retries_used,
            });
            gaia_telemetry::record_serve(&ServeCell {
                retried: 1,
                ..ServeCell::default()
            });
            let pause = jittered_backoff(
                self.cfg.retry.backoff,
                self.cfg.retry.backoff_cap,
                retries_used - 1,
                self.cfg.retry.jitter_seed ^ id,
            );
            // Never sleep past the deadline: cap the pause at the time
            // remaining so an expiring request resolves promptly.
            let pause = token.remaining().map_or(pause, |left| pause.min(left));
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        };

        match outcome.kind() {
            OutcomeKind::Converged | OutcomeKind::Degraded => {
                self.breaker.record_success(&request.tenant)
            }
            OutcomeKind::Faulted => self.breaker.record_failure(&request.tenant),
            // A deadline says nothing about the tenant's health — but if
            // this request was the half-open probe, the slot must be
            // released (back to open) or the tenant would wait out the
            // breaker's stale-probe timeout before the next probe.
            OutcomeKind::DeadlineExceeded => self.breaker.probe_aborted(&request.tenant),
            OutcomeKind::Shed => {}
        }
        self.finish(id, &request.tenant, outcome, &ticket, start.elapsed());
    }
}

/// A long-running in-process solve service over worker threads.
///
/// See the crate docs for the full contract; in short: `submit` never
/// blocks and always yields a [`Ticket`] that resolves to exactly one
/// [`Outcome`], and no request — however hostile — can crash the service
/// or another tenant's requests.
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl SolveService {
    /// Start the service with `cfg.workers` worker threads.
    pub fn start(cfg: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(cfg.queue_capacity, cfg.tenant_quota),
            breaker: CircuitBreaker::new(cfg.breaker),
            events: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gaia-serve-{i}"))
                    .spawn(move || {
                        while let Some(work) = inner.queue.pop() {
                            inner.execute_contained(work);
                        }
                    })
                    .unwrap_or_else(|e| panic!("spawn serve worker: {e}"))
            })
            .collect();
        SolveService { inner, workers }
    }

    /// Submit a request. Never blocks: an inadmissible request resolves
    /// its ticket immediately with [`Outcome::Shed`]. Returns the
    /// service-assigned request id and the outcome ticket.
    pub fn submit(&self, request: SolveRequest) -> (u64, Ticket) {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let ticket = Ticket::new();
        self.inner.log(ServiceEvent::Submitted {
            id,
            tenant: request.tenant.clone(),
        });
        let mut delta = ServeCell {
            submitted: 1,
            ..ServeCell::default()
        };

        if !self.inner.breaker.admit(&request.tenant) {
            let reason = ShedReason::CircuitOpen;
            self.inner.log(ServiceEvent::Shed { id, reason });
            delta.shed = 1;
            delta.broken_circuit = 1;
            gaia_telemetry::record_serve(&delta);
            ticket.resolve(Outcome::Shed(reason));
            return (id, ticket);
        }

        let token = match request.deadline {
            Some(d) => CancellationToken::with_timeout(d),
            None => CancellationToken::new(),
        };
        let tenant = request.tenant.clone();
        let work = Work {
            id,
            request,
            ticket: ticket.clone(),
            token,
        };
        // `Admitted` is logged under the queue lock, before the item is
        // poppable — otherwise a fast worker's `Started` could precede
        // it in the log and the verify audit would flag phantom starts.
        let admitted = self.inner.queue.try_push_then(&tenant, work, || {
            self.inner.log(ServiceEvent::Admitted { id })
        });
        match admitted {
            Ok(()) => {
                delta.admitted = 1;
                delta.max_queue_depth = self.inner.queue.max_depth();
                gaia_telemetry::record_serve(&delta);
            }
            Err((reason, work)) => {
                // A queue-shed request records no breaker outcome; if it
                // was the tenant's half-open probe, release the slot so
                // the breaker doesn't wait on a verdict that never comes.
                self.inner.breaker.probe_aborted(&tenant);
                self.inner.log(ServiceEvent::Shed { id, reason });
                delta.shed = 1;
                gaia_telemetry::record_serve(&delta);
                work.ticket.resolve(Outcome::Shed(reason));
            }
        }
        (id, ticket)
    }

    /// Items currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// A snapshot of the event log so far.
    pub fn events(&self) -> Vec<ServiceEvent> {
        self.inner
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Graceful shutdown: stop admission, drain every admitted request
    /// to its outcome, join the workers, and return the full event log.
    pub fn shutdown(mut self) -> Vec<ServiceEvent> {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            // Workers survive per-request panics (`execute_contained`),
            // so joining is for resource hygiene, not outcomes.
            let _ = handle.join();
        }
        self.events()
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
