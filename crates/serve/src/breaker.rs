//! Per-tenant circuit breaker.
//!
//! A tenant whose requests keep faulting (bad backend choice, a fault
//! schedule that exhausts every retry, a poisoned system) gets its
//! circuit *opened*: further submissions fast-fail with
//! [`crate::ShedReason::CircuitOpen`] instead of burning worker time,
//! until a cooldown elapses and a single *probe* request is let through
//! (half-open). A successful probe closes the circuit; a failed one
//! re-opens it for another cooldown.
//!
//! State is per tenant — one tenant melting down never trips another's
//! breaker. That is the service-level mirror of the supervisor's
//! per-solve isolation.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the circuit.
    pub failure_threshold: u32,
    /// How long an open circuit fast-fails before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Fast-failing until the cooldown deadline.
    Open { until: Instant },
    /// One probe in flight; its outcome decides open vs closed. The
    /// arming time bounds how long the slot stays reserved: a probe
    /// that never reports back (shed in-queue, deadline-expired — paths
    /// that deliberately record no health signal) would otherwise hold
    /// the tenant in half-open forever, fast-failing every later
    /// submission with no probe ever admitted again.
    HalfOpen { since: Instant },
}

/// Per-tenant circuit breakers keyed by tenant name.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    tenants: Mutex<HashMap<String, State>>,
}

impl CircuitBreaker {
    /// A breaker bank with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, State>> {
        // Poison only means a panic mid-update of advisory breaker
        // state; the map is always structurally valid.
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether `tenant` may submit right now. An open circuit past its
    /// cooldown transitions to half-open and admits exactly one probe.
    pub fn admit(&self, tenant: &str) -> bool {
        // gaia-analyze: allow(timing): cooldown expiry needs the real
        // clock; this is admission control flow, not a measurement.
        self.admit_at(tenant, Instant::now())
    }

    fn admit_at(&self, tenant: &str, now: Instant) -> bool {
        let mut map = self.lock();
        let state = map
            .entry(tenant.to_string())
            .or_insert(State::Closed { failures: 0 });
        match *state {
            State::Closed { .. } => true,
            State::Open { until } if now >= until => {
                *state = State::HalfOpen { since: now };
                true
            }
            State::Open { .. } => false,
            // A probe slot older than one cooldown is presumed lost
            // (its request resolved via a path with no health signal);
            // re-arm and admit a fresh probe so the tenant can recover.
            State::HalfOpen { since } if now >= since + self.cfg.cooldown => {
                *state = State::HalfOpen { since: now };
                true
            }
            State::HalfOpen { .. } => false,
        }
    }

    /// Release a half-open probe slot whose request resolved without a
    /// health verdict (shed at the admission queue, deadline expired):
    /// the circuit re-opens for another cooldown so a future probe is
    /// admitted promptly instead of waiting out the stale-slot timeout.
    /// No-op unless the tenant is half-open.
    pub fn probe_aborted(&self, tenant: &str) {
        // gaia-analyze: allow(timing): cooldown re-arming needs the real
        // clock; this is admission control flow, not a measurement.
        self.probe_aborted_at(tenant, Instant::now());
    }

    fn probe_aborted_at(&self, tenant: &str, now: Instant) {
        let mut map = self.lock();
        if let Some(state @ State::HalfOpen { .. }) = map.get_mut(tenant) {
            *state = State::Open {
                until: now + self.cfg.cooldown,
            };
        }
    }

    /// Record a successful terminal outcome: closes the circuit and
    /// zeroes the failure streak.
    pub fn record_success(&self, tenant: &str) {
        self.lock()
            .insert(tenant.to_string(), State::Closed { failures: 0 });
    }

    /// Record a terminal failure: extends the streak, opening the
    /// circuit at the threshold; a failed half-open probe re-opens it.
    pub fn record_failure(&self, tenant: &str) {
        // gaia-analyze: allow(timing): cooldown arming needs the real
        // clock; this is admission control flow, not a measurement.
        self.record_failure_at(tenant, Instant::now());
    }

    fn record_failure_at(&self, tenant: &str, now: Instant) {
        let mut map = self.lock();
        let state = map
            .entry(tenant.to_string())
            .or_insert(State::Closed { failures: 0 });
        *state = match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold {
                    State::Open {
                        until: now + self.cfg.cooldown,
                    }
                } else {
                    State::Closed { failures }
                }
            }
            State::HalfOpen { .. } | State::Open { .. } => State::Open {
                until: now + self.cfg.cooldown,
            },
        };
    }

    /// Whether `tenant`'s circuit is currently open (fast-failing).
    pub fn is_open(&self, tenant: &str) -> bool {
        matches!(self.lock().get(tenant), Some(State::Open { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(10),
        })
    }

    #[test]
    fn opens_at_the_failure_threshold_and_fast_fails() {
        let b = breaker();
        let t0 = Instant::now();
        assert!(b.admit_at("a", t0));
        b.record_failure_at("a", t0);
        assert!(b.admit_at("a", t0), "one failure is below the threshold");
        b.record_failure_at("a", t0);
        assert!(!b.admit_at("a", t0), "threshold reached: open");
        assert!(b.is_open("a"));
        // Isolation: tenant b is untouched.
        assert!(b.admit_at("b", t0));
    }

    #[test]
    fn cooldown_admits_one_probe_then_success_closes() {
        let b = breaker();
        let t0 = Instant::now();
        b.record_failure_at("a", t0);
        b.record_failure_at("a", t0);
        let later = t0 + Duration::from_secs(11);
        assert!(b.admit_at("a", later), "cooldown elapsed: probe admitted");
        assert!(!b.admit_at("a", later), "only one probe at a time");
        b.record_success("a");
        assert!(
            b.admit_at("a", later),
            "successful probe closed the circuit"
        );
    }

    #[test]
    fn lost_probe_does_not_lock_the_tenant_out_forever() {
        // A probe that never reports back (shed in-queue, deadline) used
        // to leave the tenant half-open permanently: every admit refused,
        // no path back to open or closed.
        let b = breaker();
        let t0 = Instant::now();
        b.record_failure_at("a", t0);
        b.record_failure_at("a", t0);
        let probe_time = t0 + Duration::from_secs(11);
        assert!(b.admit_at("a", probe_time), "probe admitted");
        // The probe is lost: no record_success/record_failure ever comes.
        assert!(
            !b.admit_at("a", probe_time + Duration::from_secs(5)),
            "slot still reserved within one cooldown"
        );
        let stale = probe_time + Duration::from_secs(11);
        assert!(
            b.admit_at("a", stale),
            "stale probe slot re-arms: a fresh probe is admitted"
        );
        b.record_success("a");
        assert!(b.admit_at("a", stale), "fresh probe can close the circuit");
    }

    #[test]
    fn aborted_probe_reopens_promptly() {
        let b = breaker();
        let t0 = Instant::now();
        b.record_failure_at("a", t0);
        b.record_failure_at("a", t0);
        let probe_time = t0 + Duration::from_secs(11);
        assert!(b.admit_at("a", probe_time));
        // The probe resolves with no health verdict (e.g. queue-shed).
        b.probe_aborted_at("a", probe_time);
        assert!(b.is_open("a"), "aborted probe re-opens the circuit");
        assert!(!b.admit_at("a", probe_time + Duration::from_secs(5)));
        assert!(
            b.admit_at("a", probe_time + Duration::from_secs(11)),
            "next cooldown admits another probe"
        );
        // Aborting when not half-open is a no-op.
        b.probe_aborted_at("b", probe_time);
        assert!(b.admit_at("b", probe_time));
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let b = breaker();
        let t0 = Instant::now();
        b.record_failure_at("a", t0);
        b.record_failure_at("a", t0);
        let probe_time = t0 + Duration::from_secs(11);
        assert!(b.admit_at("a", probe_time));
        b.record_failure_at("a", probe_time);
        assert!(!b.admit_at("a", probe_time + Duration::from_secs(5)));
        assert!(b.admit_at("a", probe_time + Duration::from_secs(11)));
    }
}
