//! Service-level integration tests: tenant isolation, deadline
//! semantics, circuit breaking, load shedding, and invariant-grade
//! event logs.

use std::sync::Arc;
use std::time::Duration;

use gaia_lsqr::LsqrConfig;
use gaia_mpi_sim::{FaultKind, FaultPlan};
use gaia_serve::{
    Outcome, OutcomeKind, ServiceConfig, ServiceEvent, ShedReason, SolveRequest, SolveService,
};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout};

fn system(seed: u64) -> Arc<SparseSystem> {
    Arc::new(
        Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate(),
    )
}

/// A config with zero tolerances so the only stops left are machine
/// precision (dozens of iterations away) — paired with the `small()`
/// layout (several ms per iteration) deadline cancellation is guaranteed
/// to strike mid-solve, not before launch and not after convergence.
fn endless_config() -> LsqrConfig {
    let mut cfg = LsqrConfig::new();
    cfg.atol = 0.0;
    cfg.btol = 0.0;
    cfg.conlim = 1e300;
    cfg.max_iters = 2_000_000;
    cfg
}

fn slow_system(seed: u64) -> Arc<SparseSystem> {
    Arc::new(
        Generator::new(
            GeneratorConfig::new(SystemLayout::small())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate(),
    )
}

#[test]
fn concurrent_tenants_with_distinct_backends_all_converge() {
    let service = SolveService::start(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let backends = ["seq", "chunked-t2", "atomic-t2", "striped-t2", "casloop-t2"];
    let tickets: Vec<_> = backends
        .iter()
        .enumerate()
        .map(|(i, backend)| {
            let mut req = SolveRequest::new(format!("tenant-{i}"), system(40 + i as u64));
            req.backend = backend.to_string();
            req.ranks = 1 + i % 3;
            service.submit(req)
        })
        .collect();
    for (i, (_, ticket)) in tickets.iter().enumerate() {
        let outcome = ticket.wait();
        let summary = outcome
            .summary()
            .unwrap_or_else(|| panic!("tenant {i} should converge, got {:?}", outcome.kind()));
        assert!(summary.solution.stop.converged());
    }
    let events = service.shutdown();
    let finished = events
        .iter()
        .filter(|e| matches!(e, ServiceEvent::Finished { .. }))
        .count();
    assert_eq!(finished, backends.len());
}

#[test]
fn deadline_exceeded_mid_solve_never_yields_a_partial_solution_across_backends() {
    // Satellite: across three backends, a solve cancelled mid-iteration
    // resolves to DeadlineExceeded carrying NO Solution — the partial
    // iterate is unreachable through the outcome type.
    for backend in ["seq", "chunked-t2", "atomic-t2"] {
        let service = SolveService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut req = SolveRequest::new("deadline", slow_system(7));
        req.backend = backend.to_string();
        req.config = endless_config();
        req.deadline = Some(Duration::from_millis(40));
        let (_, ticket) = service.submit(req);
        match ticket.wait() {
            Outcome::DeadlineExceeded { iterations } => {
                assert!(
                    iterations > 0,
                    "{backend}: the deadline should strike mid-solve, not in-queue"
                );
            }
            other => panic!(
                "{backend}: expected DeadlineExceeded, got {:?}",
                other.kind()
            ),
        }
        // Type-level guarantee: no summary (hence no Solution) exists.
        let (_, t2) = {
            let mut r = SolveRequest::new("deadline", slow_system(7));
            r.backend = backend.to_string();
            r.config = endless_config();
            r.deadline = Some(Duration::from_millis(40));
            service.submit(r)
        };
        assert!(t2.wait().summary().is_none());
        service.shutdown();
    }
}

#[test]
fn expired_deadline_in_queue_resolves_without_launching() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // A zero deadline is already expired when a worker picks it up.
    let mut blocker = SolveRequest::new("slow", system(11));
    blocker.config = endless_config();
    blocker.deadline = Some(Duration::from_millis(80));
    let (_, slow) = service.submit(blocker);
    let mut req = SolveRequest::new("queued", system(12));
    req.deadline = Some(Duration::ZERO);
    let (id, ticket) = service.submit(req);
    assert!(matches!(
        ticket.wait(),
        Outcome::DeadlineExceeded { iterations: 0 }
    ));
    let _ = slow.wait();
    let events = service.shutdown();
    // The expired request was admitted but never Started.
    assert!(events.contains(&ServiceEvent::Admitted { id }));
    assert!(!events
        .iter()
        .any(|e| matches!(e, ServiceEvent::Started { id: sid, .. } if *sid == id)));
}

#[test]
fn faulting_tenant_trips_its_breaker_without_touching_others() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        retry: gaia_serve::RetryConfig {
            max_retries: 0,
            ..Default::default()
        },
        breaker: gaia_serve::BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
        },
        ..ServiceConfig::default()
    });
    // Two guaranteed faults: an unknown backend is a terminal failure.
    for _ in 0..2 {
        let mut req = SolveRequest::new("hostile", system(21));
        req.backend = "no-such-backend".into();
        let (_, t) = service.submit(req);
        assert_eq!(t.wait().kind(), OutcomeKind::Faulted);
    }
    // Third submission fast-fails on the open circuit.
    let (_, t) = service.submit(SolveRequest::new("hostile", system(22)));
    assert!(matches!(t.wait(), Outcome::Shed(ShedReason::CircuitOpen)));
    // A well-behaved tenant is unaffected.
    let (_, t) = service.submit(SolveRequest::new("polite", system(23)));
    assert_eq!(t.wait().kind(), OutcomeKind::Converged);
    service.shutdown();
}

#[test]
fn lost_breaker_probe_does_not_permanently_lock_out_a_tenant() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        retry: gaia_serve::RetryConfig {
            max_retries: 0,
            ..Default::default()
        },
        breaker: gaia_serve::BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(40),
        },
        ..ServiceConfig::default()
    });
    // Trip the breaker with two terminal faults.
    for _ in 0..2 {
        let mut req = SolveRequest::new("flaky", system(80));
        req.backend = "no-such-backend".into();
        let (_, t) = service.submit(req);
        assert_eq!(t.wait().kind(), OutcomeKind::Faulted);
    }
    let (_, t) = service.submit(SolveRequest::new("flaky", system(81)));
    assert!(matches!(t.wait(), Outcome::Shed(ShedReason::CircuitOpen)));
    // After the cooldown the half-open probe is admitted — but it
    // carries an already-expired deadline, so it resolves
    // DeadlineExceeded and no breaker verdict ever arrives for it.
    std::thread::sleep(Duration::from_millis(60));
    let mut probe = SolveRequest::new("flaky", system(82));
    probe.deadline = Some(Duration::ZERO);
    let (_, t) = service.submit(probe);
    assert_eq!(t.wait().kind(), OutcomeKind::DeadlineExceeded);
    // The lost probe must not leave the tenant half-open forever: the
    // slot reverts to open, and after another cooldown a fresh probe is
    // admitted and closes the circuit.
    std::thread::sleep(Duration::from_millis(60));
    let (_, t) = service.submit(SolveRequest::new("flaky", system(83)));
    assert_eq!(
        t.wait().kind(),
        OutcomeKind::Converged,
        "tenant must be able to recover after a lost probe"
    );
    service.shutdown();
}

#[test]
fn scripted_rank_panic_is_contained_and_recovered() {
    let plan = Arc::new(FaultPlan::scripted(31).with_event(0, 1, 2, FaultKind::RankPanic));
    let service = SolveService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut chaotic = SolveRequest::new("chaotic", system(31));
    chaotic.ranks = 2;
    chaotic.faults = Some(plan);
    let (_, chaos_ticket) = service.submit(chaotic);
    let (_, calm_ticket) = service.submit(SolveRequest::new("calm", system(32)));
    // The supervisor recovers the panicked rank; both tenants converge.
    let chaos_outcome = chaos_ticket.wait();
    assert!(
        chaos_outcome.summary().is_some(),
        "supervisor should recover the scripted panic, got {:?}",
        chaos_outcome.kind()
    );
    assert_eq!(calm_ticket.wait().kind(), OutcomeKind::Converged);
    service.shutdown();
}

#[test]
fn overload_sheds_with_queue_full_and_every_admitted_request_resolves() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        tenant_quota: 2,
        ..ServiceConfig::default()
    });
    let mut outcomes = Vec::new();
    for i in 0..6 {
        let mut req = SolveRequest::new("flood", system(50 + i));
        if i == 0 {
            req.config = endless_config();
            req.deadline = Some(Duration::from_millis(60));
        }
        outcomes.push(service.submit(req).1);
    }
    let kinds: Vec<_> = outcomes.into_iter().map(|t| t.wait().kind()).collect();
    assert!(
        kinds.contains(&OutcomeKind::Shed),
        "a 2-deep queue under 6 submissions must shed: {kinds:?}"
    );
    let events = service.shutdown();
    // Every submitted id has exactly one of Admitted/Shed, and every
    // admitted id exactly one Finished.
    for id in 0..6u64 {
        let admitted = events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::Admitted { id: x } if *x == id))
            .count();
        let shed = events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::Shed { id: x, .. } if *x == id))
            .count();
        assert_eq!(admitted + shed, 1, "id {id}: admitted XOR shed");
        let finished = events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::Finished { id: x, .. } if *x == id))
            .count();
        // Admitted requests finish exactly once; shed requests resolved
        // their ticket at submit and never reach a worker.
        assert_eq!(finished, admitted, "id {id}: exactly one terminal outcome");
    }
}

#[test]
fn shutdown_drains_admitted_requests_before_returning() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..4)
        .map(|i| service.submit(SolveRequest::new("drain", system(70 + i))).1)
        .collect();
    let events = service.shutdown();
    for t in &tickets {
        assert!(
            t.try_outcome().is_some(),
            "shutdown must drain every admitted request"
        );
    }
    let finished = events
        .iter()
        .filter(|e| matches!(e, ServiceEvent::Finished { .. }))
        .count();
    assert_eq!(finished, 4);
}
