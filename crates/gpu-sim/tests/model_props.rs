//! Model-level property tests: monotonicity, boundedness, and internal
//! consistency of the performance simulator across its whole input space.

use gaia_gpu_sim::scaling::{weak_scaling, ClusterSpec};
use gaia_gpu_sim::{
    all_frameworks, all_platforms, framework_by_name, iteration_time,
    occupancy::occupancy_efficiency, platform_by_name, SimConfig,
};
use gaia_sparse::SystemLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn iteration_time_is_monotone_in_problem_size(
        gb1 in 1.0f64..5.0,
        factor in 1.1f64..3.0,
    ) {
        let gb2 = gb1 * factor;
        for fw in all_frameworks() {
            for p in all_platforms() {
                let t1 = iteration_time(&SystemLayout::from_gb(gb1), &fw, &p, &SimConfig::default());
                let t2 = iteration_time(&SystemLayout::from_gb(gb2), &fw, &p, &SimConfig::default());
                if let (Some(a), Some(b)) = (t1, t2) {
                    prop_assert!(
                        b.seconds > a.seconds,
                        "{} on {}: {} GB {}s vs {} GB {}s",
                        fw.name, p.name, gb1, a.seconds, gb2, b.seconds
                    );
                }
            }
        }
    }

    #[test]
    fn tuned_tpb_is_never_slower_than_any_other(tpb_idx in 0usize..6) {
        let tpb = [32u32, 64, 128, 256, 512, 1024][tpb_idx];
        let layout = SystemLayout::from_gb(5.0);
        let cuda = framework_by_name("CUDA").unwrap();
        for p in all_platforms().iter().filter(|p| p.name != "MI250X") {
            let tuned = iteration_time(&layout, &cuda, p, &SimConfig { tpb_override: Some(p.opt_tpb) }).unwrap();
            let other = iteration_time(&layout, &cuda, p, &SimConfig { tpb_override: Some(tpb) }).unwrap();
            prop_assert!(tuned.seconds <= other.seconds + 1e-15, "{} tpb {tpb}", p.name);
        }
    }

    #[test]
    fn occupancy_is_bounded_and_peaks_at_optimum(tpb_idx in 0usize..6) {
        let tpb = [32u32, 64, 128, 256, 512, 1024][tpb_idx];
        for p in all_platforms() {
            let e = occupancy_efficiency(&p, tpb);
            prop_assert!(e > 0.0 && e <= 1.0);
            prop_assert!(e <= occupancy_efficiency(&p, p.opt_tpb));
        }
    }

    #[test]
    fn weak_scaling_efficiency_is_in_unit_interval(
        gb in 2.0f64..10.0,
        n_idx in 1usize..6,
    ) {
        let n = [1u32, 2, 4, 8, 32, 128][n_idx];
        let fw = framework_by_name("CUDA").unwrap();
        let p = platform_by_name("A100").unwrap();
        let pts = weak_scaling(&fw, &p, &ClusterSpec::leonardo(), gb, &[1, n]).unwrap();
        for pt in pts {
            prop_assert!(pt.efficiency > 0.0 && pt.efficiency <= 1.0 + 1e-12);
            prop_assert!(pt.iteration_seconds >= pt.compute_seconds);
        }
    }
}

#[test]
fn every_supported_cell_has_a_full_breakdown() {
    let layout = SystemLayout::from_gb(10.0);
    for fw in all_frameworks() {
        for p in all_platforms() {
            let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) else {
                continue;
            };
            assert!(b.seconds > 0.0);
            assert!(b.effective_bw_gbs > 0.0 && b.effective_bw_gbs < p.bw_gbs * 1.2);
            assert!(b.memory_ratio > 0.0 && b.memory_ratio <= 1.0);
            assert_eq!(b.kernels.len(), 9);
            assert!(b.kernels.iter().all(|k| k.seconds >= 0.0));
        }
    }
}

#[test]
fn streams_help_or_are_neutral_never_hurt() {
    // Turning streams off for a stream-enabled framework must not make it
    // faster.
    let layout = SystemLayout::from_gb(10.0);
    for p in all_platforms() {
        let hip = framework_by_name("HIP").unwrap();
        let mut serial = hip.clone();
        serial.streams = false;
        let (Some(with), Some(without)) = (
            iteration_time(&layout, &hip, &p, &SimConfig::default()),
            iteration_time(&layout, &serial, &p, &SimConfig::default()),
        ) else {
            continue;
        };
        assert!(
            with.seconds <= without.seconds + 1e-15,
            "{}: streams slowed HIP down",
            p.name
        );
    }
}

#[test]
fn cas_codegen_always_costs_relative_to_rmw() {
    use gaia_gpu_sim::AtomicCodegen;
    let layout = SystemLayout::from_gb(10.0);
    for p in all_platforms() {
        // Non-overlapped framework: every unit of CAS excess lands on the
        // critical path, so the cost must be strictly visible.
        let base = framework_by_name("OMP+V").unwrap();
        let mut cas = base.clone();
        cas.atomics_nvidia = AtomicCodegen::CasLoop;
        cas.atomics_amd = AtomicCodegen::CasLoop;
        let (Some(fast), Some(slow)) = (
            iteration_time(&layout, &base, &p, &SimConfig::default()),
            iteration_time(&layout, &cas, &p, &SimConfig::default()),
        ) else {
            continue;
        };
        assert!(slow.seconds > fast.seconds, "{}", p.name);

        // Stream-overlapped frameworks may *hide* a moderate CAS excess
        // under the bandwidth bound (that is the §IV point of streams),
        // but can never get faster from it.
        let streamed = framework_by_name("SYCL+ACPP").unwrap();
        let mut streamed_cas = streamed.clone();
        streamed_cas.atomics_nvidia = AtomicCodegen::CasLoop;
        streamed_cas.atomics_amd = AtomicCodegen::CasLoop;
        let (Some(f2), Some(s2)) = (
            iteration_time(&layout, &streamed, &p, &SimConfig::default()),
            iteration_time(&layout, &streamed_cas, &p, &SimConfig::default()),
        ) else {
            continue;
        };
        assert!(s2.seconds >= f2.seconds - 1e-15, "{}", p.name);
    }
}

#[test]
fn pressure_only_engages_near_capacity() {
    use gaia_gpu_sim::model::pressure_factor;
    let hip = framework_by_name("HIP").unwrap();
    // Plenty of headroom: factor 1.
    assert_eq!(pressure_factor(&hip, 10_000_000_000, 96_000_000_000), 1.0);
    // Within the 2 GB margin: factor < 1, decreasing as spare shrinks.
    let f1 = pressure_factor(&hip, 31_000_000_000, 32_000_000_000);
    let f2 = pressure_factor(&hip, 31_500_000_000, 32_000_000_000);
    assert!(f1 < 1.0 && f2 < f1, "{f1} {f2}");
    // Never collapses to zero.
    assert!(pressure_factor(&hip, 32_000_000_000, 32_000_000_000) >= 0.05);
}
