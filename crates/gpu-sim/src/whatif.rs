//! Forward projection to next-generation platforms.
//!
//! §VI motivates performance portability as the way "to lower the time to
//! solutions on new supercomputers": the value of a portable port is
//! realized when the *next* machine arrives. This module defines
//! plausible next-generation platform descriptions (from public
//! datasheets of parts newer than the paper's testbed) and re-runs the
//! portability analysis over the extended set, quantifying the §VI
//! argument: the frameworks with high `P` today keep it when the platform
//! set grows, while the single-vendor port's `P` stays zero on any mixed
//! set.

use crate::platform::{PlatformSpec, Vendor};

/// NVIDIA H200-class part: Hopper refresh with 141 GB HBM3e at 4.8 TB/s.
/// Same SM architecture as the H100 → identical tuning behaviour.
pub fn h200() -> PlatformSpec {
    PlatformSpec {
        name: "H200".into(),
        vendor: Vendor::Nvidia,
        mem_gb: 141.0,
        bw_gbs: 4800.0,
        sm_count: 132,
        fp64_tflops: 34.0,
        launch_us: 3.0,
        opt_tpb: 256,
        occ_falloff: 0.985,
        coalescing: 0.88,
        native_f64_atomics: true,
    }
}

/// AMD MI300A-class APU: 128 GB unified HBM3 at 5.3 TB/s, CDNA3 (native
/// FP64 atomics fixed relative to CDNA2, coalescing behaviour improved
/// but still gather-sensitive).
pub fn mi300a() -> PlatformSpec {
    PlatformSpec {
        name: "MI300A".into(),
        vendor: Vendor::Amd,
        mem_gb: 128.0,
        bw_gbs: 5300.0,
        sm_count: 228,
        fp64_tflops: 61.0,
        launch_us: 6.0,
        opt_tpb: 64,
        occ_falloff: 0.93,
        coalescing: 0.62,
        native_f64_atomics: true,
    }
}

/// The extended platform set: the paper's five plus the two projections.
pub fn extended_platforms() -> Vec<PlatformSpec> {
    let mut v = crate::platforms::all_platforms();
    v.push(h200());
    v.push(mi300a());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::{all_frameworks, FRAMEWORK_NAMES};
    use crate::model::{iteration_time, SimConfig};
    use gaia_sparse::SystemLayout;

    fn pp_over(platforms: &[PlatformSpec], fw_name: &str, gb: f64) -> f64 {
        let layout = SystemLayout::from_gb(gb);
        let mut times = Vec::new();
        for fw in all_frameworks() {
            for p in platforms {
                if let Some(b) = iteration_time(&layout, &fw, p, &SimConfig::default()) {
                    times.push((fw.name.clone(), p.name.clone(), b.seconds));
                }
            }
        }
        let mut inv = 0.0;
        for p in platforms {
            let Some(t) = times
                .iter()
                .find(|(f, pl, _)| f == fw_name && pl == &p.name)
                .map(|(_, _, t)| *t)
            else {
                return 0.0;
            };
            let best = times
                .iter()
                .filter(|(_, pl, _)| pl == &p.name)
                .map(|(_, _, t)| *t)
                .fold(f64::INFINITY, f64::min);
            inv += t / best;
        }
        platforms.len() as f64 / inv
    }

    #[test]
    fn projections_are_faster_than_their_predecessors() {
        let layout = SystemLayout::from_gb(10.0);
        let hip = crate::frameworks::framework_by_name("HIP").unwrap();
        let t_h100 = iteration_time(
            &layout,
            &hip,
            &crate::platforms::platform_by_name("H100").unwrap(),
            &SimConfig::default(),
        )
        .unwrap()
        .seconds;
        let t_h200 = iteration_time(&layout, &hip, &h200(), &SimConfig::default())
            .unwrap()
            .seconds;
        assert!(t_h200 < t_h100);
        let t_mi250 = iteration_time(
            &layout,
            &hip,
            &crate::platforms::platform_by_name("MI250X").unwrap(),
            &SimConfig::default(),
        )
        .unwrap()
        .seconds;
        let t_mi300 = iteration_time(&layout, &hip, &mi300a(), &SimConfig::default())
            .unwrap()
            .seconds;
        assert!(t_mi300 < t_mi250);
    }

    #[test]
    fn portable_frameworks_keep_their_p_on_the_extended_set() {
        // The §VI payoff: HIP and SYCL+ACPP stay above 0.85 when two new
        // platforms join; CUDA stays at 0 on the mixed set.
        let ext = extended_platforms();
        assert!(pp_over(&ext, "HIP", 10.0) > 0.85);
        assert!(pp_over(&ext, "SYCL+ACPP", 10.0) > 0.85);
        assert_eq!(pp_over(&ext, "CUDA", 10.0), 0.0);
        // And the 60 GB problem now has four hosts instead of two.
        let layout = SystemLayout::from_gb(60.0);
        let hosts = ext
            .iter()
            .filter(|p| p.fits(gaia_sparse::footprint::total_device_bytes(&layout)))
            .count();
        assert_eq!(hosts, 4, "H100, MI250X, H200, MI300A");
    }

    #[test]
    fn cas_penalty_disappears_on_cdna3() {
        // MI300A has native FP64 atomics: the §V-B CAS pathology is a
        // CDNA2 artifact, so SYCL+DPC++'s worst platform improves.
        let layout = SystemLayout::from_gb(10.0);
        let dpcpp = crate::frameworks::framework_by_name("SYCL+DPCPP").unwrap();
        // Note: atomic codegen in the model is keyed on the *framework*'s
        // per-vendor behaviour, which encodes the compiler, not the ISA;
        // a CDNA3-aware compiler would emit RMW. Model that by flipping
        // the codegen and comparing.
        let mut fixed = dpcpp.clone();
        fixed.atomics_amd = crate::framework::AtomicCodegen::Rmw;
        let t_cas = iteration_time(&layout, &dpcpp, &mi300a(), &SimConfig::default())
            .unwrap()
            .seconds;
        let t_rmw = iteration_time(&layout, &fixed, &mi300a(), &SimConfig::default())
            .unwrap()
            .seconds;
        assert!(t_rmw < t_cas * 0.85, "{t_rmw} vs {t_cas}");
    }

    #[test]
    fn every_framework_name_is_evaluable_on_the_extended_set() {
        for fw in FRAMEWORK_NAMES {
            let p = pp_over(&extended_platforms(), fw, 10.0);
            assert!((0.0..=1.0 + 1e-12).contains(&p), "{fw}: {p}");
        }
    }
}
