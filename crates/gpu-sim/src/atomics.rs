//! Atomic-update cost model for the colliding `aprod2` blocks.
//!
//! `aprod2`'s attitude, instrumental, and global updates collide across
//! rows (§IV), so their memory traffic is executed through atomic
//! operations. We model this as a multiplier on the colliding traffic:
//!
//! * native FP64 RMW (`atomicAdd`): small overhead — the update retires in
//!   the memory hierarchy (near-bandwidth), slightly worse on AMD where
//!   the "unsafe" FP atomics bypass some coherence checks;
//! * CAS retry loop: each update becomes a load + compare-exchange cycle
//!   that retries under contention — §V-B blames exactly this for the
//!   OMP+LLVM / SYCL+DPC++ slowdowns on MI250X;
//! * a framework-level contention multiplier scales the *excess* cost; the
//!   §IV optimization ("reduce the number of blocks and GPU threads per
//!   block in the regions where atomic operations are performed") is what
//!   keeps it at 1 for the tuned ports, while the production baseline runs
//!   atomics at full occupancy.

use crate::framework::AtomicCodegen;
use crate::platform::{PlatformSpec, Vendor};

/// Baseline excess cost (fraction of the colliding traffic's bandwidth
/// time added) for native RMW atomics per vendor.
pub fn rmw_excess(platform: &PlatformSpec) -> f64 {
    match platform.vendor {
        Vendor::Nvidia => 0.15,
        Vendor::Amd => 0.30,
    }
}

/// Excess cost for CAS-loop codegen per vendor.
pub fn cas_excess(platform: &PlatformSpec) -> f64 {
    match platform.vendor {
        // Rarely emitted on NVIDIA, but when it is, the retry loop costs.
        Vendor::Nvidia => 1.2,
        // CDNA2 CAS loops over HBM are the §V-B pathology.
        Vendor::Amd => 3.4,
    }
}

/// Multiplier applied to the bandwidth time of the *colliding* traffic of
/// an `aprod2` block.
pub fn atomic_multiplier(
    codegen: AtomicCodegen,
    platform: &PlatformSpec,
    contention_mult: f64,
) -> f64 {
    let excess = match codegen {
        AtomicCodegen::Rmw => rmw_excess(platform),
        AtomicCodegen::CasLoop => cas_excess(platform),
    };
    1.0 + excess * contention_mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::platform_by_name;

    #[test]
    fn cas_is_much_worse_than_rmw_on_amd() {
        let mi = platform_by_name("MI250X").unwrap();
        let rmw = atomic_multiplier(AtomicCodegen::Rmw, &mi, 1.0);
        let cas = atomic_multiplier(AtomicCodegen::CasLoop, &mi, 1.0);
        assert!(cas > 2.5 * rmw, "rmw {rmw} cas {cas}");
    }

    #[test]
    fn nvidia_rmw_is_cheap() {
        let h100 = platform_by_name("H100").unwrap();
        let m = atomic_multiplier(AtomicCodegen::Rmw, &h100, 1.0);
        assert!(m < 1.2);
    }

    #[test]
    fn contention_scales_only_the_excess() {
        let h100 = platform_by_name("H100").unwrap();
        let base = atomic_multiplier(AtomicCodegen::Rmw, &h100, 1.0);
        let hot = atomic_multiplier(AtomicCodegen::Rmw, &h100, 5.0);
        assert!((hot - 1.0 - 5.0 * (base - 1.0)).abs() < 1e-12);
    }
}
