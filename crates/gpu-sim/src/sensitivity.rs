//! Calibration sensitivity analysis.
//!
//! The simulator's free constants are fitted to the paper's narrative
//! (DESIGN.md §5). A fit is only trustworthy if the *conclusions* survive
//! perturbing those constants: if HIP's lead at 10 GB vanished when a
//! codegen factor moved by 2 %, the reproduction would be a knife-edge
//! artifact. This module perturbs each calibration dimension by a relative
//! factor and recomputes the `P` ranking, reporting which headline
//! conclusions are stable — the robustness analysis a reviewer would ask
//! for.

use serde::{Deserialize, Serialize};

use gaia_sparse::SystemLayout;

use crate::framework::FrameworkSpec;
use crate::frameworks::all_frameworks;
use crate::model::{iteration_time, SimConfig};
use crate::platforms::all_platforms;

/// A calibration dimension that can be perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    /// Every framework's per-platform codegen factor.
    CodegenEff,
    /// Per-iteration runtime synchronization overheads.
    SyncOverhead,
    /// Capacity-pressure sensitivities.
    PressureSensitivity,
    /// Atomic contention multipliers (excess scaling).
    AtomicContention,
}

/// All perturbable knobs.
pub const KNOBS: [Knob; 4] = [
    Knob::CodegenEff,
    Knob::SyncOverhead,
    Knob::PressureSensitivity,
    Knob::AtomicContention,
];

/// Apply a relative perturbation of `factor` to one knob of a framework
/// (1.0 = unchanged). Codegen factors are clamped to stay positive.
pub fn perturb(fw: &FrameworkSpec, knob: Knob, factor: f64) -> FrameworkSpec {
    let mut out = fw.clone();
    match knob {
        Knob::CodegenEff => {
            for v in out.codegen_eff.values_mut() {
                *v = (*v * factor).max(1e-3);
            }
            out.default_codegen_eff = (out.default_codegen_eff * factor).max(1e-3);
        }
        Knob::SyncOverhead => out.sync_us *= factor,
        Knob::PressureSensitivity => {
            out.pressure_sensitivity = (out.pressure_sensitivity * factor).min(1.0)
        }
        Knob::AtomicContention => out.atomic_contention_mult *= factor,
    }
    out
}

/// Result of checking the headline conclusions under one perturbation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityResult {
    /// Perturbed knob.
    pub knob: Knob,
    /// Relative perturbation applied (e.g. 1.05 = +5 %).
    pub factor: f64,
    /// HIP and SYCL+ACPP remain the top two portable frameworks at 10 GB.
    pub leaders_stable: bool,
    /// OMP+LLVM remains the worst supported framework at 10 GB.
    pub worst_stable: bool,
    /// OMP+V remains the fastest framework on the MI250X.
    pub mi250x_winner_stable: bool,
    /// HIP's P at 10 GB under the perturbation.
    pub hip_pp: f64,
}

fn pp(times: &[(String, String, f64)], fw: &str, platforms: &[String]) -> f64 {
    let mut inv = 0.0;
    for p in platforms {
        let Some(t) = times
            .iter()
            .find(|(f, pl, _)| f == fw && pl == p)
            .map(|(_, _, t)| *t)
        else {
            return 0.0;
        };
        let best = times
            .iter()
            .filter(|(_, pl, _)| pl == p)
            .map(|(_, _, t)| *t)
            .fold(f64::INFINITY, f64::min);
        inv += t / best;
    }
    platforms.len() as f64 / inv
}

/// Evaluate the headline conclusions with `knob` of *every* framework
/// perturbed by `factor` (a uniform miscalibration — the hardest case,
/// since relative errors between frameworks are what the model fits).
pub fn check(knob: Knob, factor: f64) -> SensitivityResult {
    let layout = SystemLayout::from_gb(10.0);
    let mut times = Vec::new();
    for fw in all_frameworks() {
        let fw = perturb(&fw, knob, factor);
        for p in all_platforms() {
            if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                times.push((fw.name.clone(), p.name.clone(), b.seconds));
            }
        }
    }
    let platforms: Vec<String> = all_platforms().into_iter().map(|p| p.name).collect();

    let mut ranking: Vec<(String, f64)> = crate::frameworks::FRAMEWORK_NAMES
        .iter()
        .map(|f| (f.to_string(), pp(&times, f, &platforms)))
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    let top2: Vec<&str> = ranking.iter().take(2).map(|(f, _)| f.as_str()).collect();
    let leaders_stable = top2.contains(&"HIP") && top2.contains(&"SYCL+ACPP");
    let worst = ranking
        .iter()
        .filter(|(_, p)| *p > 0.0)
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(f, _)| f.clone())
        .unwrap_or_default();
    let worst_stable = worst == "OMP+LLVM";

    let mi_winner = times
        .iter()
        .filter(|(_, p, _)| p == "MI250X")
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .map(|(f, _, _)| f.clone())
        .unwrap_or_default();
    let mi250x_winner_stable = mi_winner == "OMP+V";

    let hip_pp = pp(&times, "HIP", &platforms);
    SensitivityResult {
        knob,
        factor,
        leaders_stable,
        worst_stable,
        mi250x_winner_stable,
        hip_pp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unperturbed_baseline_reports_all_stable() {
        for knob in KNOBS {
            let r = check(knob, 1.0);
            assert!(r.leaders_stable, "{knob:?}");
            assert!(r.worst_stable, "{knob:?}");
            assert!(r.mi250x_winner_stable, "{knob:?}");
            assert!(r.hip_pp > 0.9);
        }
    }

    #[test]
    fn conclusions_survive_five_percent_miscalibration() {
        // The headline orderings must not be knife-edge: a uniform ±5 %
        // error in any single knob class leaves them intact.
        for knob in KNOBS {
            for factor in [0.95, 1.05] {
                let r = check(knob, factor);
                assert!(
                    r.leaders_stable && r.worst_stable && r.mi250x_winner_stable,
                    "{knob:?} x{factor}: {r:?}"
                );
            }
        }
    }

    #[test]
    fn extreme_contention_perturbation_does_move_results() {
        // Sanity: the knobs are live — a 5x uniform atomic-contention
        // blow-up measurably shifts HIP's P. (It shifts it *up*: streams
        // hide HIP's own atomic excess while the serial frameworks eat
        // theirs in full, so the platform bests move in HIP's favour —
        // itself a nice corollary of the §IV stream design.)
        let base = check(Knob::AtomicContention, 1.0);
        let hot = check(Knob::AtomicContention, 5.0);
        assert!(
            (hot.hip_pp - base.hip_pp).abs() > 0.005,
            "{} vs {}",
            hot.hip_pp,
            base.hip_pp
        );
        assert!(
            hot.hip_pp > base.hip_pp,
            "streams shield HIP from contention"
        );
    }

    #[test]
    fn perturb_clamps_and_scales_correctly() {
        let fw = crate::frameworks::framework_by_name("HIP").unwrap();
        let p = perturb(&fw, Knob::SyncOverhead, 2.0);
        assert_eq!(p.sync_us, fw.sync_us * 2.0);
        let p2 = perturb(&fw, Knob::PressureSensitivity, 100.0);
        assert!(p2.pressure_sensitivity <= 1.0);
        let p3 = perturb(&fw, Knob::CodegenEff, 1e-9);
        assert!(p3.codegen_eff.values().all(|&v| v >= 1e-3));
    }
}
