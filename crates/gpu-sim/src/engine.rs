//! Stream scheduling of the `aprod2` kernels.
//!
//! §IV: "we execute the kernels in streams, allowing their asynchronous
//! overlap. Since the atomic operations in each submatrix target different
//! subsections of x̃, the asynchronous execution of the kernels does not
//! increase the execution cost of the atomic operations."
//!
//! Overlap cannot beat the memory system: the schedule is bounded below by
//! the bandwidth time of the combined traffic. What overlap *does* hide is
//! the serialization excess of the low-occupancy atomic kernels (which are
//! deliberately launched with few blocks, leaving SMs free for the
//! others). We therefore model the overlapped `aprod2` phase as
//! `max(bandwidth bound, slowest single kernel)`, and the non-overlapped
//! one as the plain sum.

use serde::{Deserialize, Serialize};

/// Timing of a single kernel inside one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Kernel name.
    pub name: String,
    /// Modeled execution time in seconds (excluding launch latency).
    pub seconds: f64,
}

/// Duration of the `aprod2` phase given each kernel's standalone time and
/// the bandwidth-bound lower limit of the combined traffic.
pub fn aprod2_phase_seconds(
    kernels: &[KernelTiming],
    overlapped: bool,
    bandwidth_bound: f64,
) -> f64 {
    let sum: f64 = kernels.iter().map(|k| k.seconds).sum();
    if !overlapped {
        return sum;
    }
    let slowest = kernels.iter().map(|k| k.seconds).fold(0.0, f64::max);
    bandwidth_bound.max(slowest).min(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<KernelTiming> {
        vec![
            KernelTiming {
                name: "aprod2_astro".into(),
                seconds: 0.2,
            },
            KernelTiming {
                name: "aprod2_att".into(),
                seconds: 0.5,
            },
            KernelTiming {
                name: "aprod2_instr".into(),
                seconds: 0.3,
            },
            KernelTiming {
                name: "aprod2_glob".into(),
                seconds: 0.05,
            },
        ]
    }

    #[test]
    fn no_streams_is_the_sum() {
        assert!((aprod2_phase_seconds(&kernels(), false, 0.8) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn streams_never_beat_the_bandwidth_bound() {
        let t = aprod2_phase_seconds(&kernels(), true, 0.8);
        assert!((t - 0.8).abs() < 1e-12);
    }

    #[test]
    fn streams_never_beat_the_slowest_kernel() {
        let t = aprod2_phase_seconds(&kernels(), true, 0.1);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_never_exceeds_serial_execution() {
        let t = aprod2_phase_seconds(&kernels(), true, 100.0);
        assert!((t - 1.05).abs() < 1e-12, "clamped to the serial sum");
    }
}
