//! The five platforms of the study (§V-A).
//!
//! Bandwidth/SM/memory numbers are datasheet values for the exact SKUs the
//! paper lists (T4 16 GB → 15 GB usable, V100S 32 GB PCIe, A100 40 GB SXM
//! on EpiTo, H100 96 GB on Grace-Hopper, MI250X — one GCD, which is what a
//! single-GPU ROCm run sees). `opt_tpb` / `occ_falloff` / `coalescing` are
//! calibration constants; each is annotated with the §V-B observation it
//! encodes.

use crate::platform::{PlatformSpec, Vendor};

/// Names of the five platforms, in the paper's presentation order.
pub const PLATFORM_NAMES: [&str; 5] = ["T4", "V100", "A100", "H100", "MI250X"];

/// All five platform specs.
pub fn all_platforms() -> Vec<PlatformSpec> {
    PLATFORM_NAMES
        .iter()
        .map(|n| platform_by_name(n).expect("registry is self-consistent"))
        .collect()
}

/// Look up a platform by (case-insensitive) name.
pub fn platform_by_name(name: &str) -> Option<PlatformSpec> {
    let spec = match name.to_ascii_uppercase().as_str() {
        // NVIDIA Tesla T4: Turing, 16 GB GDDR6 (15 usable), 320 GB/s,
        // 40 SMs. 1:32 FP64 rate (0.25 TFLOP/s). Oldest, most
        // tuning-sensitive platform: best tpb is 32 (§V-B).
        "T4" => PlatformSpec {
            name: "T4".into(),
            vendor: Vendor::Nvidia,
            mem_gb: 15.0,
            bw_gbs: 320.0,
            sm_count: 40,
            fp64_tflops: 0.25,
            launch_us: 4.0,
            opt_tpb: 32,
            occ_falloff: 0.87,
            coalescing: 0.82,
            native_f64_atomics: true,
        },
        // NVIDIA V100S 32 GB (CascadeLake node): Volta, 1134 GB/s, 80 SMs,
        // 8.2 TFLOP/s FP64. Best tpb 32, slightly flatter curve than T4.
        "V100" => PlatformSpec {
            name: "V100".into(),
            vendor: Vendor::Nvidia,
            mem_gb: 32.0,
            bw_gbs: 1134.0,
            sm_count: 80,
            fp64_tflops: 8.2,
            launch_us: 4.0,
            opt_tpb: 32,
            occ_falloff: 0.905,
            coalescing: 0.84,
            native_f64_atomics: true,
        },
        // NVIDIA A100 40 GB (EpiTo): Ampere, 1555 GB/s, 108 SMs,
        // 9.7 TFLOP/s FP64 (19.5 with tensor cores, unused here).
        // 256 threads per block is already efficient (§V-B).
        "A100" => PlatformSpec {
            name: "A100".into(),
            vendor: Vendor::Nvidia,
            mem_gb: 40.0,
            bw_gbs: 1555.0,
            sm_count: 108,
            fp64_tflops: 9.7,
            launch_us: 4.0,
            opt_tpb: 256,
            occ_falloff: 0.965,
            coalescing: 0.86,
            native_f64_atomics: true,
        },
        // NVIDIA H100 96 GB on GraceHopper: Hopper, HBM3 ≈ 4000 GB/s,
        // 132 SMs, 34 TFLOP/s FP64. Flattest tuning curve — the paper's
        // tuning-oblivious frameworks do best here.
        "H100" => PlatformSpec {
            name: "H100".into(),
            vendor: Vendor::Nvidia,
            mem_gb: 96.0,
            bw_gbs: 4000.0,
            sm_count: 132,
            fp64_tflops: 34.0,
            launch_us: 3.0,
            opt_tpb: 256,
            occ_falloff: 0.985,
            coalescing: 0.88,
            native_f64_atomics: true,
        },
        // AMD MI250X, one GCD (Setonix): CDNA2, 64 GB HBM2e and
        // 1600 GB/s per GCD, 110 CUs, 24 TFLOP/s FP64. The low
        // `coalescing` encodes §V-B: "the lower performance is due to
        // noncoalescent memory accesses by threads", cross-checked with
        // the amd-lab-notes SpMV kernels; best config uses "low numbers
        // of threads and blocks". FP64 atomic RMW only via
        // `-munsafe-fp-atomics`.
        "MI250X" => PlatformSpec {
            name: "MI250X".into(),
            vendor: Vendor::Amd,
            mem_gb: 64.0,
            bw_gbs: 1600.0,
            sm_count: 110,
            fp64_tflops: 24.0,
            launch_us: 8.0,
            opt_tpb: 64,
            occ_falloff: 0.90,
            coalescing: 0.52,
            native_f64_atomics: false,
        },
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::footprint::total_device_bytes;
    use gaia_sparse::SystemLayout;

    #[test]
    fn registry_has_five_platforms() {
        assert_eq!(all_platforms().len(), 5);
        assert!(platform_by_name("h100").is_some(), "case-insensitive");
        assert!(platform_by_name("K80").is_none());
    }

    #[test]
    fn capacity_gating_matches_paper_platform_sets() {
        // §V-B: 10 GB on all devices, 30 GB all except T4, 60 GB only on
        // H100 and MI250X.
        let fits_on = |gb: f64| -> Vec<String> {
            let bytes = total_device_bytes(&SystemLayout::from_gb(gb));
            all_platforms()
                .into_iter()
                .filter(|p| p.fits(bytes))
                .map(|p| p.name)
                .collect()
        };
        assert_eq!(fits_on(10.0), ["T4", "V100", "A100", "H100", "MI250X"]);
        assert_eq!(fits_on(30.0), ["V100", "A100", "H100", "MI250X"]);
        assert_eq!(fits_on(60.0), ["H100", "MI250X"]);
    }

    #[test]
    fn newer_nvidia_platforms_are_flatter_to_tune() {
        let t4 = platform_by_name("T4").unwrap();
        let a100 = platform_by_name("A100").unwrap();
        let h100 = platform_by_name("H100").unwrap();
        assert!(t4.occ_falloff < a100.occ_falloff);
        assert!(a100.occ_falloff < h100.occ_falloff);
    }

    #[test]
    fn only_amd_lacks_native_f64_atomics() {
        for p in all_platforms() {
            assert_eq!(p.native_f64_atomics, p.vendor == Vendor::Nvidia);
        }
    }
}
