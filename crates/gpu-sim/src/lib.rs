//! # gaia-gpu-sim
//!
//! A mechanistic performance simulator for the hardware/framework grid of
//! the paper. Rust has no production CUDA/HIP/SYCL/OpenMP-offload/PSTL
//! story and this reproduction has no GPUs, so the paper's *measurement*
//! campaign is replaced by a first-principles model that encodes exactly
//! the effects the paper discusses, and is calibrated so the published
//! result *shapes* hold (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! * **Roofline**: every `aprod` kernel is memory-bandwidth-bound; kernel
//!   time is `bytes moved / effective bandwidth` ([`workload`], [`model`]).
//! * **Occupancy / kernel tuning**: effective bandwidth depends on the
//!   threads-per-block choice; each platform has an optimum (32 on
//!   T4/V100, 256 on A100/H100, 64 on MI250X — §V-B) and tunable
//!   frameworks (CUDA/HIP/SYCL) find it, while C++ PSTL is pinned to its
//!   runtime default of 256 ([`occupancy`], [`tuner`]).
//! * **Atomic code generation**: the colliding `aprod2` blocks pay an
//!   RMW penalty, or a much larger CAS-loop penalty for the
//!   framework-compiler pairs that cannot emit native FP64 atomics on AMD
//!   (SYCL+DPC++ and OpenMP+clang without `-munsafe-fp-atomics`, §V-B)
//!   ([`atomics`]).
//! * **Streams**: CUDA-style overlap of the four `aprod2` kernels hides
//!   part of the atomic serialization (§IV) ([`engine`]).
//! * **Runtime overhead**: per-kernel launch cost and per-iteration
//!   runtime synchronization (the DPC++ overhead that makes the *older*
//!   T4 its relatively best platform, because long kernels hide it).
//! * **Memory capacity**: problems that do not fit the device are
//!   unsupported — exactly the paper's platform sets per problem size
//!   (10 GB everywhere, 30 GB except T4, 60 GB only H100/MI250X).
//! * **Capacity pressure**: running within ~15 % of the device memory
//!   limit degrades frameworks that rely on automatic memory management.
//!
//! Calibration constants live in [`platforms`] (datasheet numbers) and
//! [`frameworks`] (per-framework codegen factors, each tied to a paper
//! passage). The calibration tests in [`model`] assert the headline
//! shapes: HIP ≈ 0.94 average `P`, SYCL+AdaptiveCpp ≈ 0.93, CUDA ≈ 0.97 on
//! NVIDIA-only, PSTL+vendor ≈ 0.62, OpenMP+LLVM worst at 10 GB.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomics;
pub mod energy;
pub mod engine;
pub mod events;
pub mod framework;
pub mod frameworks;
pub mod model;
pub mod occupancy;
pub mod platform;
pub mod platforms;
pub mod roofline;
pub mod scaling;
pub mod sensitivity;
pub mod timeline;
pub mod tuner;
pub mod whatif;
pub mod workload;

pub use framework::{AtomicCodegen, FrameworkSpec, Toolchain, Tunability};
pub use frameworks::{all_frameworks, framework_by_name, FRAMEWORK_NAMES};
pub use model::{iteration_time, IterationBreakdown, SimConfig};
pub use platform::{PlatformSpec, Vendor};
pub use platforms::{all_platforms, platform_by_name, PLATFORM_NAMES};
