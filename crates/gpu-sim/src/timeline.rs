//! ASCII timeline of one modeled iteration — the simulator's substitute
//! for the `nsys`/`rocprof` traces the paper used to attribute time
//! ("we used code profilers from NVIDIA and AMD to verify that most of
//! the time of this code is spent computing the matrix-by-vector products
//! of aprod1 and aprod2", §V-A).

use std::fmt::Write as _;

use crate::model::IterationBreakdown;

/// Render a Gantt-style view of the iteration: `aprod1` kernels in
/// sequence, the `aprod2` phase (overlapped or serial), and the BLAS tail.
pub fn render(b: &IterationBreakdown, overlapped: bool, width: usize) -> String {
    let total = b.seconds.max(f64::MIN_POSITIVE);
    let cols = |t: f64| ((t / total) * width as f64).round() as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "iteration {:.3} ms  (aprod1 {:.0}%  aprod2 {:.0}%  blas {:.0}%  overhead {:.0}%)",
        1e3 * b.seconds,
        100.0 * b.aprod1_seconds / total,
        100.0 * b.aprod2_seconds / total,
        100.0 * b.blas_seconds / total,
        100.0 * (b.launch_seconds + b.sync_seconds) / total,
    );

    // aprod1 kernels run back-to-back on the default stream.
    let mut cursor = 0usize;
    let mut lane0 = vec![' '; width];
    for k in b.kernels.iter().filter(|k| k.name.starts_with("aprod1")) {
        let len = cols(k.seconds).max(1);
        let ch = k.name.chars().nth(7).unwrap_or('?');
        for slot in lane0.iter_mut().skip(cursor).take(len) {
            *slot = ch;
        }
        cursor += len;
    }
    let _ = writeln!(out, "  stream0 |{}|", lane0.into_iter().collect::<String>());

    // aprod2: one lane per kernel when overlapped, all on stream0 when not.
    let aprod2: Vec<_> = b
        .kernels
        .iter()
        .filter(|k| k.name.starts_with("aprod2"))
        .collect();
    if overlapped {
        for (i, k) in aprod2.iter().enumerate() {
            let mut lane = vec![' '; width];
            let len = cols(k.seconds).max(1);
            for slot in lane.iter_mut().skip(cursor).take(len) {
                *slot = '#';
            }
            let _ = writeln!(
                out,
                "  stream{} |{}| {}",
                i + 1,
                lane.into_iter().collect::<String>(),
                k.name
            );
        }
    } else {
        let mut lane = vec![' '; width];
        let mut c = cursor;
        for k in &aprod2 {
            let len = cols(k.seconds).max(1);
            let ch = k.name.chars().nth(7).unwrap_or('?');
            for slot in lane.iter_mut().skip(c).take(len) {
                *slot = ch;
            }
            c += len;
        }
        let _ = writeln!(
            out,
            "  stream0 |{}| aprod2 (serial)",
            lane.into_iter().collect::<String>()
        );
    }
    out
}

/// Render a fluid-simulated `aprod2` schedule (exact per-kernel intervals
/// from [`crate::events`]) as one lane per kernel: `=` while sharing
/// bandwidth, `#` during the private atomic tail.
pub fn render_fluid(schedule: &crate::events::FluidSchedule, width: usize) -> String {
    let mut out = String::new();
    let total = schedule.makespan.max(f64::MIN_POSITIVE);
    let col = |t: f64| ((t / total) * width as f64).round() as usize;
    let _ = writeln!(
        out,
        "aprod2 fluid schedule, makespan {:.3} ms",
        1e3 * schedule.makespan
    );
    for k in &schedule.kernels {
        let mut lane = vec![' '; width + 1];
        for slot in lane.iter_mut().take(col(k.shared_end)).skip(col(k.start)) {
            *slot = '=';
        }
        for slot in lane.iter_mut().take(col(k.end)).skip(col(k.shared_end)) {
            *slot = '#';
        }
        let _ = writeln!(
            out,
            "  |{}| {} ({:.3} ms)",
            lane[..width].iter().collect::<String>(),
            k.name,
            1e3 * (k.end - k.start)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::framework_by_name;
    use crate::model::{iteration_time, SimConfig};
    use crate::platforms::platform_by_name;
    use gaia_sparse::SystemLayout;

    #[test]
    fn timeline_renders_for_streamed_and_serial_frameworks() {
        let layout = SystemLayout::from_gb(10.0);
        let h100 = platform_by_name("H100").unwrap();
        for (name, overlapped) in [("CUDA", true), ("OMP+V", false)] {
            let fw = framework_by_name(name).unwrap();
            let b = iteration_time(&layout, &fw, &h100, &SimConfig::default()).unwrap();
            let text = render(&b, overlapped, 60);
            assert!(text.contains("iteration"), "{text}");
            assert!(text.contains("stream0"), "{text}");
            if overlapped {
                assert!(text.contains("stream4"), "four aprod2 lanes: {text}");
            } else {
                assert!(text.contains("aprod2 (serial)"), "{text}");
            }
        }
    }

    #[test]
    fn fluid_rendering_shows_shared_and_private_phases() {
        let layout = SystemLayout::from_gb(10.0);
        let fw = framework_by_name("HIP").unwrap();
        let mi = platform_by_name("MI250X").unwrap();
        let sched = crate::model::aprod2_fluid_schedule(&layout, &fw, &mi).unwrap();
        let text = render_fluid(&sched, 60);
        assert!(text.contains("aprod2_att"), "{text}");
        assert!(text.contains('='), "shared phase rendered");
        assert!(text.contains('#'), "atomic tail rendered");
        assert_eq!(text.lines().count(), 5, "header + four kernels");
    }

    #[test]
    fn percentages_sum_to_about_100() {
        let layout = SystemLayout::from_gb(10.0);
        let fw = framework_by_name("HIP").unwrap();
        let mi = platform_by_name("MI250X").unwrap();
        let b = iteration_time(&layout, &fw, &mi, &SimConfig::default()).unwrap();
        let total = b.aprod1_seconds
            + b.aprod2_seconds
            + b.blas_seconds
            + b.launch_seconds
            + b.sync_seconds;
        assert!((total - b.seconds).abs() < 1e-15);
    }
}
