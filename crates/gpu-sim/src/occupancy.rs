//! Threads-per-block → bandwidth-efficiency model.
//!
//! §V-B: with the PSTL default of 256 threads per block, "while this number
//! of threads efficiently optimizes the kernel's execution on H100 and
//! A100, it is less efficient on the weaker T4 and V100, where ... the
//! number of threads that give best performance is 32". We model the
//! efficiency of a threads-per-block choice as a geometric falloff per
//! factor-of-two distance from the platform optimum; the falloff rate is a
//! per-platform constant (newer architectures are flatter).

use crate::platform::PlatformSpec;

/// Clamp range for thread-block sizes (warp/wavefront to CUDA maximum).
pub const TPB_RANGE: [u32; 6] = [32, 64, 128, 256, 512, 1024];

/// Bandwidth efficiency in `(0, 1]` of running the `aprod` kernels with
/// `tpb` threads per block on `platform` (1.0 at the platform optimum).
pub fn occupancy_efficiency(platform: &PlatformSpec, tpb: u32) -> f64 {
    assert!(
        tpb.is_power_of_two() && (32..=1024).contains(&tpb),
        "tpb {tpb}"
    );
    let distance = (f64::from(tpb).log2() - f64::from(platform.opt_tpb).log2()).abs();
    platform.occ_falloff.powf(distance)
}

/// The best tpb over [`TPB_RANGE`] (trivially the platform optimum under
/// this model; the tuner uses the full iteration model instead, which can
/// shift the optimum when atomics dominate).
pub fn best_tpb(platform: &PlatformSpec) -> u32 {
    platform.opt_tpb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::platform_by_name;

    #[test]
    fn optimum_has_unit_efficiency() {
        for name in crate::platforms::PLATFORM_NAMES {
            let p = platform_by_name(name).unwrap();
            assert_eq!(occupancy_efficiency(&p, p.opt_tpb), 1.0);
        }
    }

    #[test]
    fn efficiency_decays_away_from_optimum() {
        let t4 = platform_by_name("T4").unwrap();
        let e32 = occupancy_efficiency(&t4, 32);
        let e256 = occupancy_efficiency(&t4, 256);
        let e1024 = occupancy_efficiency(&t4, 1024);
        assert!(e32 > e256 && e256 > e1024);
        // Three octaves away: falloff³.
        assert!((e256 - t4.occ_falloff.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn pstl_default_hurts_old_platforms_more_than_new() {
        // The §V-B PSTL observation: 256 tpb is near-optimal on A100/H100,
        // costly on T4/V100.
        let loss = |name: &str| {
            let p = platform_by_name(name).unwrap();
            1.0 - occupancy_efficiency(&p, 256)
        };
        assert!(loss("T4") > 0.25);
        assert!(loss("V100") > 0.2);
        assert!(loss("A100") < 1e-12);
        assert!(loss("H100") < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tpb")]
    fn rejects_non_power_of_two() {
        let t4 = platform_by_name("T4").unwrap();
        occupancy_efficiency(&t4, 48);
    }
}
