//! GPU platform description.

use serde::{Deserialize, Serialize};

/// GPU vendor (determines which frameworks can target the platform and
/// which atomic instructions the compilers emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (CUDA-capable).
    Nvidia,
    /// AMD (ROCm).
    Amd,
}

/// One GPU platform of the study (§V-A). All throughput numbers are public
/// datasheet values; the tuning-related fields (`opt_tpb`, `occ_falloff`,
/// `coalescing`) are calibration constants tied to paper observations —
/// see the field docs and `DESIGN.md` §5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Short name used everywhere (`"T4"`, `"V100"`, ...).
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Usable device memory in GB (the paper quotes 15 GB for the T4
    /// because that is what is allocatable, not the 16 GB marketing size).
    pub mem_gb: f64,
    /// Peak memory bandwidth in GB/s.
    pub bw_gbs: f64,
    /// Streaming multiprocessors / compute units.
    pub sm_count: u32,
    /// Peak FP64 throughput in TFLOP/s (unused by the bandwidth-bound
    /// `aprod` kernels but kept for roofline completeness and the SpMV
    /// comparison harness).
    pub fp64_tflops: f64,
    /// Kernel launch latency in microseconds.
    pub launch_us: f64,
    /// Threads-per-block that maximizes effective bandwidth for the
    /// gather/scatter `aprod` kernels on this platform. §V-B: "the number
    /// of threads that give best performance is 32" on T4/V100, while 256
    /// "efficiently optimizes the kernel's execution on H100 and A100";
    /// on MI250X "low numbers of threads and blocks offer the best
    /// performance".
    pub opt_tpb: u32,
    /// Multiplicative bandwidth-efficiency loss per factor-of-two distance
    /// from `opt_tpb` (closer to 1.0 = flatter tuning curve; newer
    /// architectures are less tuning-sensitive).
    pub occ_falloff: f64,
    /// Fraction of peak bandwidth the (partially coalesced) `aprod`
    /// access pattern achieves when perfectly tuned. §V-B attributes the
    /// MI250X shortfall to "noncoalescent memory accesses by threads",
    /// verified against the amd-lab-notes SpMV kernels.
    pub coalescing: f64,
    /// Whether the ISA exposes native FP64 atomic read-modify-write
    /// (NVIDIA: yes; AMD CDNA2: only unsafe FP atomics, i.e. compilers
    /// need `-munsafe-fp-atomics` to use them).
    pub native_f64_atomics: bool,
}

impl PlatformSpec {
    /// Device memory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_gb * 1e9) as u64
    }

    /// Does a working set of `bytes` fit on the device?
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.mem_bytes()
    }

    /// Peak bandwidth in bytes/second.
    pub fn bw_bytes_per_sec(&self) -> f64 {
        self.bw_gbs * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_is_inclusive_at_capacity() {
        let p = PlatformSpec {
            name: "X".into(),
            vendor: Vendor::Nvidia,
            mem_gb: 1.0,
            bw_gbs: 100.0,
            sm_count: 10,
            fp64_tflops: 1.0,
            launch_us: 4.0,
            opt_tpb: 256,
            occ_falloff: 0.95,
            coalescing: 0.8,
            native_f64_atomics: true,
        };
        assert!(p.fits(1_000_000_000));
        assert!(!p.fits(1_000_000_001));
        assert_eq!(p.bw_bytes_per_sec(), 1e11);
    }
}
