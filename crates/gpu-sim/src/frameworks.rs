//! The eight framework+compiler combinations of the study, plus the
//! pre-optimization production CUDA baseline.
//!
//! Every numeric constant here is a calibration value; the doc comment on
//! each framework cites the §V observation it encodes. Toolchain strings
//! reproduce Tables I–III.

use std::collections::BTreeMap;

use crate::framework::{AtomicCodegen, FrameworkSpec, Toolchain, Tunability};
use crate::platform::Vendor;

/// Framework names in the paper's legend order (Fig. 3).
pub const FRAMEWORK_NAMES: [&str; 8] = [
    "CUDA",
    "HIP",
    "OMP+LLVM",
    "OMP+V",
    "PSTL+ACPP",
    "PSTL+V",
    "SYCL+ACPP",
    "SYCL+DPCPP",
];

/// All eight study frameworks (excludes the production baseline; fetch it
/// explicitly with [`framework_by_name`]`("CUDA-production")`).
pub fn all_frameworks() -> Vec<FrameworkSpec> {
    FRAMEWORK_NAMES
        .iter()
        .map(|n| framework_by_name(n).expect("registry is self-consistent"))
        .collect()
}

fn eff(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
    entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Look up a framework by name.
pub fn framework_by_name(name: &str) -> Option<FrameworkSpec> {
    let spec = match name {
        // Optimized CUDA (§IV-a): explicit tuning, pinned memory, async
        // copies, streams. Reference codegen quality on NVIDIA; slightly
        // edged out by HIP on V100/H100 in the paper's measurements
        // ("the fastest time is typically given by CUDA (mostly on T4 and
        // A100) or HIP (mostly on V100 and H100)").
        "CUDA" => FrameworkSpec {
            name: "CUDA".into(),
            targets: vec![Vendor::Nvidia],
            tunability: Tunability::Full,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: true,
            sync_us: 30.0,
            codegen_eff: eff(&[("T4", 1.0), ("V100", 0.985), ("A100", 1.0), ("H100", 0.99)]),
            default_codegen_eff: 1.0,
            pressure_sensitivity: 0.0, // fully explicit cudaMalloc management
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("nvcc (CUDA 11.8-12.3)".into()),
                nvidia_flags: Some("--gencode=arch=compute_XX,code=sm_XX".into()),
                amd_compiler: None,
                amd_flags: None,
            },
        },
        // The production CUDA solver predating the §IV optimizations: no
        // stream overlap, default (oversized) kernel shapes, fine-grain
        // coherence, full-occupancy atomics. §V-B: the optimized version
        // achieves "a speed-up of 2.0x on Leonardo on a 42 GB problem".
        "CUDA-production" => FrameworkSpec {
            name: "CUDA-production".into(),
            targets: vec![Vendor::Nvidia],
            tunability: Tunability::Fixed { tpb: 1024 },
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: false,
            sync_us: 30.0,
            codegen_eff: BTreeMap::new(),
            default_codegen_eff: 1.0,
            pressure_sensitivity: 0.0,
            atomic_contention_mult: 7.0, // atomics at full occupancy collide
            coherence_bw_factor: 0.70,   // fine-grain coherence
            toolchain: Toolchain {
                nvidia_compiler: Some("nvcc (production)".into()),
                nvidia_flags: Some("--gencode=arch=compute_XX,code=sm_XX".into()),
                amd_compiler: None,
                amd_flags: None,
            },
        },
        // HIP (§IV-b): HIPIFY port, re-tuned per platform, coarse-grain
        // coherence forced via hipMemAdvise, `-munsafe-fp-atomics` on AMD
        // (native FP64 RMW). The paper's most portable framework
        // (P ≈ 0.94 average); fastest framework on V100 and H100, and
        // nearly the fastest on MI250X. The moderate pressure sensitivity
        // (hipMallocManaged-style staging) produces its 30 GB dip on the
        // near-full V100, which is what lets SYCL+ACPP overtake it there
        // (0.93 vs 0.88 in the paper).
        "HIP" => FrameworkSpec {
            name: "HIP".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Full,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: true,
            sync_us: 40.0,
            codegen_eff: eff(&[
                ("T4", 0.97),
                ("V100", 0.995),
                ("A100", 0.98),
                ("H100", 1.0),
                ("MI250X", 0.97),
            ]),
            default_codegen_eff: 0.97,
            pressure_sensitivity: 0.45,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("hipcc 5.7.3".into()),
                nvidia_flags: Some("--gpu-architecture=sm_XX".into()),
                amd_compiler: Some("hipcc (rocm-5.7.3)".into()),
                amd_flags: Some("--offload-arch=gfx90a -munsafe-fp-atomics".into()),
            },
        },
        // OpenMP target offload with the base LLVM clang (§V-B): decent on
        // H100 (84 % of CUDA), mediocre on V100/A100, effectively broken
        // on the old sm_75 T4 (this is what drives its P of 0.25 at
        // 10 GB), and CAS-loop atomics on AMD (no RMW support).
        "OMP+LLVM" => FrameworkSpec {
            name: "OMP+LLVM".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Pragma,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::CasLoop,
            streams: false,
            sync_us: 80.0,
            codegen_eff: eff(&[
                ("T4", 0.085),
                ("V100", 0.66),
                ("A100", 0.70),
                ("H100", 0.90),
                ("MI250X", 0.95),
            ]),
            default_codegen_eff: 0.7,
            pressure_sensitivity: 0.12,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("clang++ 17.0.6".into()),
                nvidia_flags: Some(
                    "-fopenmp -fopenmp-targets=nvptx64-nvidia-cuda \
                     -Xopenmp-target=nvptx64-nvidia-cuda -march=sm_XX"
                        .into(),
                ),
                amd_compiler: Some("clang++ 17.0.6".into()),
                amd_flags: Some(
                    "-fopenmp -fopenmp-targets=amdgcn-amd-amdhsa \
                     -Xopenmp-target=amdgcn-amd-amdhsa -march=gfx90a"
                        .into(),
                ),
            },
        },
        // OpenMP with the vendor compilers (nvc++ / amdclang++), kernels
        // tuned "with parameters similar to the ones used by HIP and
        // SYCL". 91 % of CUDA on H100; *the fastest framework on MI250X*
        // (§V-B: "OpenMP code compiled with amdclang++ is the one that
        // achieves the best performance"). The > 1 MI250X factor encodes
        // that observation relative to HIP's hand-tuned kernels, and more
        // than offsets the missing stream overlap.
        "OMP+V" => FrameworkSpec {
            name: "OMP+V".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Pragma,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: false,
            sync_us: 60.0,
            codegen_eff: eff(&[
                ("T4", 0.77),
                ("V100", 0.75),
                ("A100", 0.83),
                ("H100", 0.96),
                ("MI250X", 1.12),
            ]),
            default_codegen_eff: 0.8,
            pressure_sensitivity: 0.15,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("nvc++ 24.3".into()),
                nvidia_flags: Some("-mp=gpu -gpu=ccXX,sm_XX".into()),
                amd_compiler: Some("amdclang++ (rocm-5.7.3)".into()),
                amd_flags: Some("-fopenmp --offload-arch=gfx90a -munsafe-fp-atomics".into()),
            },
        },
        // C++ PSTL via AdaptiveCpp --acpp-stdpar (§IV-e, §V-B): no kernel
        // tuning possible, runtime default of 256 threads per block →
        // strong losses on T4/V100 (optimum 32), near-par on A100/H100
        // (90 % application efficiency), 0.45-0.6 on MI250X.
        "PSTL+ACPP" => FrameworkSpec {
            name: "PSTL+ACPP".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Fixed { tpb: 256 },
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: false,
            sync_us: 120.0,
            codegen_eff: eff(&[
                ("T4", 0.93),
                ("V100", 0.93),
                ("A100", 0.93),
                ("H100", 0.97),
                ("MI250X", 0.78),
            ]),
            default_codegen_eff: 0.9,
            pressure_sensitivity: 0.30,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("acpp 24.06".into()),
                nvidia_flags: Some(
                    "--acpp-platform=cuda --acpp-stdpar --acpp-targets=cuda:sm_XX \
                     --acpp-stdpar-unconditional-offload --acpp-gpu-arch=sm_XX"
                        .into(),
                ),
                amd_compiler: Some("acpp 24.06".into()),
                amd_flags: Some(
                    "--acpp-platform=rocm --acpp-stdpar --acpp-targets=hip:gfx90a \
                     --acpp-stdpar-unconditional-offload --acpp-gpu-arch=gfx90a \
                     -munsafe-fp-atomics"
                        .into(),
                ),
            },
        },
        // C++ PSTL via the vendor toolchains (nvc++ -stdpar / hipstdpar).
        // nvc++ requires system unified shared memory (§V-B), hence the
        // highest capacity-pressure sensitivity; "0.45-0.6" on MI250X.
        "PSTL+V" => FrameworkSpec {
            name: "PSTL+V".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Fixed { tpb: 256 },
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: false,
            sync_us: 100.0,
            codegen_eff: eff(&[
                ("T4", 0.91),
                ("V100", 0.91),
                ("A100", 0.91),
                ("H100", 0.95),
                ("MI250X", 0.70),
            ]),
            default_codegen_eff: 0.88,
            pressure_sensitivity: 0.45,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("nvc++ 24.3".into()),
                nvidia_flags: Some("-stdpar=gpu -gpu=ccXX,sm_XX".into()),
                amd_compiler: Some("clang++ 18 (hipstdpar)".into()),
                amd_flags: Some(
                    "--hipstdpar --hipstdpar-path=$(HIPSTDPAR_ROOT) \
                     --offload-arch=gfx90a -munsafe-fp-atomics"
                        .into(),
                ),
            },
        },
        // SYCL via AdaptiveCpp (§IV-c): USM + NDrange tuning, generic
        // target. Never the fastest, but uniformly close on every
        // platform — "while not being the best on any platform, [it]
        // achieves similar application efficiencies across all the tested
        // hardware" — which is exactly what maximizes the harmonic mean
        // (P ≈ 0.93, the best score at 30 GB).
        "SYCL+ACPP" => FrameworkSpec {
            name: "SYCL+ACPP".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Full,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: true,
            sync_us: 80.0,
            codegen_eff: eff(&[
                ("T4", 0.93),
                ("V100", 0.945),
                ("A100", 0.93),
                ("H100", 0.955),
                ("MI250X", 0.90),
            ]),
            default_codegen_eff: 0.92,
            pressure_sensitivity: 0.08,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("acpp 24.06".into()),
                nvidia_flags: Some(
                    "--acpp-platform=cuda --acpp-targets=cuda:sm_XX --acpp-gpu-arch=sm_XX".into(),
                ),
                amd_compiler: Some("acpp 24.06".into()),
                amd_flags: Some(
                    "--acpp-platform=rocm --acpp-targets=generic --acpp-gpu-arch=gfx90a \
                     -munsafe-fp-atomics"
                        .into(),
                ),
            },
        },
        // SYCL via DPC++ (§V-B): "offers lower performance", attributed to
        // "incorrect compilation or suboptimal parameter tuning" (the
        // AdaptiveCpp tuning was kept). The large per-iteration runtime
        // overhead is hidden by the long kernels of the slow T4 —
        // "surprisingly, T4 is the best platform for SYCL+DPCPP" — and on
        // MI250X the compiler falls back to CAS-loop atomics.
        "SYCL+DPCPP" => FrameworkSpec {
            name: "SYCL+DPCPP".into(),
            targets: vec![Vendor::Nvidia, Vendor::Amd],
            tunability: Tunability::Full,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::CasLoop,
            streams: true,
            sync_us: 1500.0,
            codegen_eff: eff(&[
                ("T4", 0.93),
                ("V100", 0.93),
                ("A100", 0.93),
                ("H100", 0.93),
                ("MI250X", 0.80),
            ]),
            default_codegen_eff: 0.93,
            pressure_sensitivity: 0.20,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("DPC++ 19.0.0".into()),
                nvidia_flags: Some(
                    "-fsycl -fsycl-targets=nvptx64-nvidia-cuda -Xsycl-target-backend \
                     --cuda-gpu-arch=sm_XX"
                        .into(),
                ),
                amd_compiler: Some("DPC++ 18.0.0".into()),
                amd_flags: Some(
                    "-fsycl -fsycl-targets=amdgcn-amd-amdhsa -Xsycl-target-backend \
                     --offload-arch=gfx90a"
                        .into(),
                ),
            },
        },
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::platform_by_name;

    #[test]
    fn registry_has_all_eight_plus_production() {
        assert_eq!(all_frameworks().len(), 8);
        assert!(framework_by_name("CUDA-production").is_some());
        assert!(framework_by_name("Kokkos").is_none());
    }

    #[test]
    fn cuda_targets_nvidia_only() {
        let cuda = framework_by_name("CUDA").unwrap();
        assert!(cuda.supports_vendor(Vendor::Nvidia));
        assert!(!cuda.supports_vendor(Vendor::Amd));
        for name in FRAMEWORK_NAMES.iter().filter(|n| **n != "CUDA") {
            assert!(
                framework_by_name(name)
                    .unwrap()
                    .supports_vendor(Vendor::Amd),
                "{name} should target AMD"
            );
        }
    }

    #[test]
    fn cas_loop_frameworks_match_paper_narrative() {
        // §V-B: on MI250X, "SYCL code compiled with DPC++ compiler and
        // OpenMP code compiled with base clang++ compiler gives lower
        // performance" because they cannot emit atomic RMW.
        let mi = platform_by_name("MI250X").unwrap();
        for name in FRAMEWORK_NAMES {
            let fw = framework_by_name(name).unwrap();
            let expect_cas = matches!(name, "OMP+LLVM" | "SYCL+DPCPP");
            assert_eq!(
                fw.atomics_on(&mi) == AtomicCodegen::CasLoop,
                expect_cas,
                "{name}"
            );
        }
    }

    #[test]
    fn pstl_is_tuning_oblivious_with_256_tpb() {
        for name in ["PSTL+ACPP", "PSTL+V"] {
            let fw = framework_by_name(name).unwrap();
            assert_eq!(fw.tunability, Tunability::Fixed { tpb: 256 });
            assert!(!fw.streams);
        }
    }

    #[test]
    fn toolchain_tables_are_complete() {
        for fw in all_frameworks() {
            assert!(fw.compiler_on(Vendor::Nvidia).is_some(), "{}", fw.name);
            if fw.supports_vendor(Vendor::Amd) {
                assert!(fw.compiler_on(Vendor::Amd).is_some(), "{}", fw.name);
                assert!(fw.flags_on(Vendor::Amd).is_some(), "{}", fw.name);
            }
        }
        // AMD flag table (Table III) marks the RMW-capable compilers with
        // -munsafe-fp-atomics.
        for name in ["HIP", "OMP+V", "PSTL+ACPP", "PSTL+V", "SYCL+ACPP"] {
            let fw = framework_by_name(name).unwrap();
            assert!(
                fw.flags_on(Vendor::Amd)
                    .unwrap()
                    .contains("-munsafe-fp-atomics"),
                "{name}"
            );
        }
    }
}
