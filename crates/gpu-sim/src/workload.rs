//! Kernel descriptors for one LSQR iteration of a given problem layout.
//!
//! One iteration launches the eight production kernels
//! (`aprod{1,2}_Kernel_{astro,att,instr,glob}`, §IV) plus the BLAS-1
//! vector work between them. Byte counts come from
//! [`gaia_sparse::footprint`]; the simulator only needs *traffic*,
//! *flops*, and which portion of the traffic goes through atomics.

use gaia_sparse::footprint::{
    aprod1_traffic_bytes, aprod2_traffic_bytes, aprod_flops, VALUE_BYTES,
};
use gaia_sparse::layout::BlockKind;
use gaia_sparse::SystemLayout;
use serde::{Deserialize, Serialize};

/// Which of the two sparse products a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// `b̃ += A x̃` (row-parallel, conflict-free).
    Aprod1,
    /// `x̃ += Aᵀ b̃` (column updates, conflicts outside the astrometric
    /// block).
    Aprod2,
    /// Vector operations between the products (norms, scalings, x/w
    /// updates).
    Blas,
}

/// One kernel launch of the iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name, e.g. `"aprod2_att"`.
    pub name: String,
    /// Product phase.
    pub phase: Phase,
    /// Block processed (`None` for the BLAS work).
    pub block: Option<BlockKind>,
    /// Bytes moved through the memory hierarchy.
    pub bytes: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes of the traffic that are executed as atomic updates
    /// (0 for conflict-free kernels).
    pub atomic_bytes: u64,
}

/// The per-iteration kernel list for a layout.
pub fn iteration_kernels(layout: &SystemLayout) -> Vec<KernelDesc> {
    let mut kernels = Vec::with_capacity(9);
    for kind in BlockKind::ALL {
        kernels.push(KernelDesc {
            name: format!("aprod1_{}", kind.label()),
            phase: Phase::Aprod1,
            block: Some(kind),
            bytes: aprod1_traffic_bytes(layout, kind),
            flops: aprod_flops(layout, kind),
            atomic_bytes: 0,
        });
    }
    for kind in BlockKind::ALL {
        let bytes = aprod2_traffic_bytes(layout, kind);
        // The scattered read-modify-write of x̃ is the atomic part:
        // 16 bytes per stored non-zero. The astrometric block is
        // conflict-free thanks to its block-diagonal structure (§IV).
        let atomic_bytes = if kind == BlockKind::Astrometric {
            0
        } else {
            2 * layout.nnz(kind) * VALUE_BYTES
        };
        kernels.push(KernelDesc {
            name: format!("aprod2_{}", kind.label()),
            phase: Phase::Aprod2,
            block: Some(kind),
            bytes,
            flops: aprod_flops(layout, kind),
            atomic_bytes,
        });
    }
    // BLAS-1 between the products: scale + norm of u (2 passes over m),
    // scale + norm of v (2 passes over n), x/w update (3 passes over n),
    // preconditioner application (2 passes over n).
    let m = layout.n_rows();
    let n = layout.n_cols();
    let blas_bytes = (3 * m + 7 * n) * VALUE_BYTES;
    kernels.push(KernelDesc {
        name: "blas1".into(),
        phase: Phase::Blas,
        block: None,
        bytes: blas_bytes,
        flops: 2 * (m + n),
        atomic_bytes: 0,
    });
    kernels
}

/// Total bytes of one iteration (the roofline lower bound numerator).
pub fn iteration_bytes(layout: &SystemLayout) -> u64 {
    iteration_kernels(layout).iter().map(|k| k.bytes).sum()
}

/// A generic CSR SpMV of the same matrix, for the amd-lab-notes
/// cross-check of §V-B ("we take similar SpMV kernels ... and test them on
/// matrix sizes similar to our own"): one value + one column index per
/// non-zero, a row-pointer array, gathered x, streamed y.
pub fn csr_spmv_kernel(layout: &SystemLayout) -> KernelDesc {
    let nnz = layout.nnz_total();
    let rows = layout.n_rows();
    let bytes = nnz * (VALUE_BYTES + 4) + (rows + 1) * 4 + nnz * VALUE_BYTES + rows * VALUE_BYTES;
    KernelDesc {
        name: "csr_spmv".into(),
        phase: Phase::Aprod1,
        block: None,
        bytes,
        flops: 2 * nnz,
        atomic_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_has_nine_kernels() {
        let l = SystemLayout::from_gb(1.0);
        let ks = iteration_kernels(&l);
        assert_eq!(ks.len(), 9);
        assert_eq!(ks.iter().filter(|k| k.phase == Phase::Aprod1).count(), 4);
        assert_eq!(ks.iter().filter(|k| k.phase == Phase::Aprod2).count(), 4);
    }

    #[test]
    fn only_non_astro_aprod2_kernels_have_atomics() {
        let l = SystemLayout::from_gb(1.0);
        for k in iteration_kernels(&l) {
            let expect_atomics =
                k.phase == Phase::Aprod2 && !matches!(k.block, Some(BlockKind::Astrometric) | None);
            assert_eq!(k.atomic_bytes > 0, expect_atomics, "{}", k.name);
            assert!(k.atomic_bytes <= k.bytes, "{}", k.name);
        }
    }

    #[test]
    fn iteration_traffic_scales_linearly_with_problem_size() {
        let b1 = iteration_bytes(&SystemLayout::from_gb(1.0)) as f64;
        let b10 = iteration_bytes(&SystemLayout::from_gb(10.0)) as f64;
        let ratio = b10 / b1;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn iteration_moves_a_few_times_the_matrix_size() {
        // Two sparse products + vectors: traffic should be ~2-4× the
        // stored matrix bytes.
        let l = SystemLayout::from_gb(10.0);
        let matrix = gaia_sparse::footprint::device_bytes(&l) as f64;
        let traffic = iteration_bytes(&l) as f64;
        assert!(
            traffic > 2.0 * matrix && traffic < 6.0 * matrix,
            "{}",
            traffic / matrix
        );
    }

    #[test]
    fn csr_spmv_moves_more_index_traffic_than_structured_aprod1() {
        // The structured storage replaces per-nnz column indices with two
        // per-row indices for 17 of 24 entries — the generic CSR kernel
        // must move more metadata.
        let l = SystemLayout::from_gb(1.0);
        let csr = csr_spmv_kernel(&l);
        let aprod1: u64 = iteration_kernels(&l)
            .iter()
            .filter(|k| k.phase == Phase::Aprod1)
            .map(|k| k.bytes)
            .sum();
        assert!(
            csr.bytes > aprod1 * 9 / 10,
            "csr {} vs aprod1 {}",
            csr.bytes,
            aprod1
        );
    }
}
