//! Multi-GPU / multi-node scaling model.
//!
//! The paper restricts its `P` study to a single GPU ("we measured the P
//! metric considering only runs using a single GPU", §V-A) but builds on
//! the predecessor study (ref \[22\], Malenza et al. 2024) that measured
//! the *weak scalability* of the CUDA and C++ PSTL ports "on up to 256
//! nodes of Leonardo with NVIDIA A100 GPUs". This module extends the
//! simulator with that axis:
//!
//! * each rank holds a shard of the observations and runs the
//!   single-GPU iteration model on it;
//! * per iteration, `aprod2` partial results are allreduce-summed across
//!   ranks (the unknown vector is replicated, as in `gaia-lsqr`'s
//!   distributed solver), plus two latency-bound scalar reductions for
//!   the norms;
//! * the allreduce is modeled as a bandwidth-optimal ring:
//!   `2·(N−1)/N · payload / link_bw + 2·(N−1) · latency`, using NVLink
//!   within a node and the per-node NIC across nodes.
//!
//! Under **weak scaling** the star count grows with the rank count, so
//! the unknown vector — and hence the allreduce payload — grows linearly
//! with `N` while per-rank compute stays constant: communication
//! eventually dominates, which is exactly the ceiling the predecessor
//! paper reports when projecting toward exascale.

use gaia_sparse::SystemLayout;
use serde::{Deserialize, Serialize};

use crate::framework::FrameworkSpec;
use crate::model::{iteration_time, SimConfig};
use crate::platform::PlatformSpec;

/// Interconnect description of a GPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Intra-node GPU-to-GPU bandwidth in GB/s (NVLink / Infinity Fabric).
    pub intra_node_bw_gbs: f64,
    /// Inter-node bandwidth per node in GB/s (NIC).
    pub inter_node_bw_gbs: f64,
    /// Per-hop network latency in microseconds.
    pub latency_us: f64,
}

impl ClusterSpec {
    /// Leonardo-like booster node: 4 GPUs per node, NVLink 3 inside,
    /// 2×100 Gb/s HDR InfiniBand out.
    pub fn leonardo() -> Self {
        ClusterSpec {
            name: "Leonardo".into(),
            gpus_per_node: 4,
            intra_node_bw_gbs: 300.0,
            inter_node_bw_gbs: 25.0,
            latency_us: 5.0,
        }
    }

    /// Setonix-like node: 8 GCDs per node, Infinity Fabric inside,
    /// Slingshot-10 out.
    pub fn setonix() -> Self {
        ClusterSpec {
            name: "Setonix".into(),
            gpus_per_node: 8,
            intra_node_bw_gbs: 200.0,
            inter_node_bw_gbs: 25.0,
            latency_us: 4.0,
        }
    }

    /// Slowest link in a job of `n_gpus` (NVLink while single-node, NIC
    /// beyond).
    pub fn link_bw_gbs(&self, n_gpus: u32) -> f64 {
        if n_gpus <= self.gpus_per_node {
            self.intra_node_bw_gbs
        } else {
            self.inter_node_bw_gbs
        }
    }

    /// Ring-allreduce time for `payload_bytes` across `n_gpus`.
    pub fn allreduce_seconds(&self, n_gpus: u32, payload_bytes: u64) -> f64 {
        if n_gpus <= 1 {
            return 0.0;
        }
        let n = f64::from(n_gpus);
        let bw = self.link_bw_gbs(n_gpus) * 1e9;
        2.0 * (n - 1.0) / n * payload_bytes as f64 / bw + 2.0 * (n - 1.0) * self.latency_us * 1e-6
    }
}

/// One point of a scaling curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// GPUs in the job.
    pub n_gpus: u32,
    /// Modeled iteration time (max over ranks + communication).
    pub iteration_seconds: f64,
    /// Compute component.
    pub compute_seconds: f64,
    /// Communication component.
    pub comm_seconds: f64,
    /// Scaling efficiency relative to one GPU (weak: `T₁/T_N`;
    /// strong: `T₁/(N·T_N)`).
    pub efficiency: f64,
}

/// Weak-scaling sweep: `gb_per_gpu` stays fixed while the problem grows
/// with the rank count. Returns `None` when the per-GPU shard does not
/// fit the device or the framework cannot run there.
pub fn weak_scaling(
    fw: &FrameworkSpec,
    platform: &PlatformSpec,
    cluster: &ClusterSpec,
    gb_per_gpu: f64,
    gpu_counts: &[u32],
) -> Option<Vec<ScalingPoint>> {
    let shard = SystemLayout::from_gb(gb_per_gpu);
    let compute = iteration_time(&shard, fw, platform, &SimConfig::default())?.seconds;
    let mut points = Vec::with_capacity(gpu_counts.len());
    let t1 = {
        // Single-GPU reference: no communication.
        compute
    };
    for &n in gpu_counts {
        assert!(n >= 1, "need at least one GPU");
        // Weak scaling: total unknowns grow with N (stars scale with the
        // observation count), so the replicated-vector allreduce payload
        // is the *global* column count.
        let total = SystemLayout::from_gb(gb_per_gpu * f64::from(n));
        let payload = total.n_cols() * 8;
        let comm = cluster.allreduce_seconds(n, payload)
            // two latency-bound scalar norm reductions per iteration
            + 2.0 * cluster.allreduce_seconds(n, 8);
        let t = compute + comm;
        points.push(ScalingPoint {
            n_gpus: n,
            iteration_seconds: t,
            compute_seconds: compute,
            comm_seconds: comm,
            efficiency: t1 / t,
        });
    }
    Some(points)
}

/// Strong-scaling sweep: a fixed `total_gb` problem split across ranks.
/// Ranks whose shard would still not fit the device are skipped (returns
/// only feasible points).
pub fn strong_scaling(
    fw: &FrameworkSpec,
    platform: &PlatformSpec,
    cluster: &ClusterSpec,
    total_gb: f64,
    gpu_counts: &[u32],
) -> Vec<ScalingPoint> {
    let total = SystemLayout::from_gb(total_gb);
    let payload = total.n_cols() * 8;
    let mut points = Vec::new();
    let mut t1: Option<f64> = None;
    for &n in gpu_counts {
        assert!(n >= 1, "need at least one GPU");
        let shard = SystemLayout::from_gb(total_gb / f64::from(n));
        let Some(b) = iteration_time(&shard, fw, platform, &SimConfig::default()) else {
            continue;
        };
        let comm = cluster.allreduce_seconds(n, payload) + 2.0 * cluster.allreduce_seconds(n, 8);
        let t = b.seconds + comm;
        if n == 1 {
            t1 = Some(t);
        }
        let efficiency = match t1 {
            Some(t1) => t1 / (f64::from(n) * t),
            // If one GPU cannot hold the problem (the paper's 60 GB case),
            // report efficiency relative to ideal splitting of the first
            // feasible point.
            None => {
                t1 = Some(t * f64::from(n));
                1.0
            }
        };
        points.push(ScalingPoint {
            n_gpus: n,
            iteration_seconds: t,
            compute_seconds: b.seconds,
            comm_seconds: comm,
            efficiency,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::framework_by_name;
    use crate::platforms::platform_by_name;

    fn setup() -> (FrameworkSpec, PlatformSpec, ClusterSpec) {
        (
            framework_by_name("CUDA").unwrap(),
            platform_by_name("A100").unwrap(),
            ClusterSpec::leonardo(),
        )
    }

    #[test]
    fn weak_scaling_starts_at_unit_efficiency_and_decays() {
        let (fw, p, cluster) = setup();
        let pts = weak_scaling(&fw, &p, &cluster, 10.0, &[1, 4, 16, 64, 256]).unwrap();
        assert_eq!(pts[0].n_gpus, 1);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-12,
                "weak-scaling efficiency must not increase: {w:?}"
            );
        }
        // Communication eventually dominates (the predecessor paper's
        // exascale ceiling): at 256 GPUs the payload is 256× the 1-GPU
        // unknown vector.
        let last = pts.last().unwrap();
        assert!(last.comm_seconds > pts[1].comm_seconds * 10.0);
        assert!(last.efficiency < 0.9);
    }

    #[test]
    fn crossing_the_node_boundary_costs_bandwidth() {
        let cluster = ClusterSpec::leonardo();
        let payload = 100_000_000u64;
        let inside = cluster.allreduce_seconds(4, payload);
        let outside = cluster.allreduce_seconds(5, payload);
        assert!(
            outside > inside * 5.0,
            "NIC hop must dominate: {inside} vs {outside}"
        );
    }

    #[test]
    fn strong_scaling_speedup_is_sublinear_but_real() {
        let (fw, p, cluster) = setup();
        let pts = strong_scaling(&fw, &p, &cluster, 30.0, &[1, 2, 4]);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].iteration_seconds < w[0].iteration_seconds, "{w:?}");
            assert!(w[1].efficiency <= w[0].efficiency + 1e-12);
        }
    }

    #[test]
    fn strong_scaling_skips_infeasible_single_gpu() {
        // 60 GB does not fit an A100: the 1-GPU point must be absent and
        // the first feasible point normalized to efficiency 1.
        let (fw, p, cluster) = setup();
        let pts = strong_scaling(&fw, &p, &cluster, 60.0, &[1, 2, 4]);
        assert!(pts.iter().all(|pt| pt.n_gpus >= 2));
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let cluster = ClusterSpec::leonardo();
        assert_eq!(cluster.allreduce_seconds(1, 1 << 30), 0.0);
    }

    #[test]
    fn unsupported_framework_yields_none() {
        let cuda = framework_by_name("CUDA").unwrap();
        let mi = platform_by_name("MI250X").unwrap();
        assert!(weak_scaling(&cuda, &mi, &ClusterSpec::setonix(), 10.0, &[1, 2]).is_none());
    }
}
