//! Kernel-shape tuner and tuning ablation.
//!
//! §V-B: "In our experiments, we tuned the parameters of the CUDA, HIP,
//! and SYCL kernels for each platform, achieving up to 40% reduction in
//! iteration time. This testifies how relevant tuning such frameworks can
//! be. Unfortunately, different platforms often require different tuning."
//!
//! The tuner sweeps the thread-block sizes a programmer would try and
//! reports the best choice next to an untuned default — the ablation that
//! regenerates the 40 % claim.

use gaia_sparse::SystemLayout;
use serde::{Deserialize, Serialize};

use crate::framework::{FrameworkSpec, Tunability};
use crate::model::{iteration_time, SimConfig};
use crate::occupancy::TPB_RANGE;
use crate::platform::PlatformSpec;

/// Result of tuning one framework on one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// Framework name.
    pub framework: String,
    /// Platform name.
    pub platform: String,
    /// Best threads-per-block found.
    pub best_tpb: u32,
    /// Iteration seconds at the best tpb.
    pub best_seconds: f64,
    /// Iteration seconds at the untuned default tpb.
    pub default_seconds: f64,
    /// The untuned default used for comparison.
    pub default_tpb: u32,
}

impl TuneResult {
    /// Fractional reduction in iteration time achieved by tuning.
    pub fn reduction(&self) -> f64 {
        1.0 - self.best_seconds / self.default_seconds
    }
}

/// Sweep thread-block sizes for a tunable framework; `None` when the
/// framework cannot run there or exposes no tuning (PSTL).
pub fn tune(
    layout: &SystemLayout,
    fw: &FrameworkSpec,
    platform: &PlatformSpec,
    default_tpb: u32,
) -> Option<TuneResult> {
    if matches!(fw.tunability, Tunability::Fixed { .. }) {
        return None;
    }
    let mut best: Option<(u32, f64)> = None;
    for &tpb in &TPB_RANGE {
        let cfg = SimConfig {
            tpb_override: Some(tpb),
        };
        let t = iteration_time(layout, fw, platform, &cfg)?.seconds;
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((tpb, t));
        }
    }
    let (best_tpb, best_seconds) = best?;
    let default_seconds = iteration_time(
        layout,
        fw,
        platform,
        &SimConfig {
            tpb_override: Some(default_tpb),
        },
    )?
    .seconds;
    Some(TuneResult {
        framework: fw.name.clone(),
        platform: platform.name.clone(),
        best_tpb,
        best_seconds,
        default_seconds,
        default_tpb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::framework_by_name;
    use crate::platforms::{all_platforms, platform_by_name};

    #[test]
    fn tuner_finds_the_platform_optimum() {
        let layout = SystemLayout::from_gb(10.0);
        let cuda = framework_by_name("CUDA").unwrap();
        for p in all_platforms().iter().filter(|p| p.name != "MI250X") {
            let r = tune(&layout, &cuda, p, 1024).unwrap();
            assert_eq!(r.best_tpb, p.opt_tpb, "{}", p.name);
            assert!(r.best_seconds <= r.default_seconds);
        }
    }

    #[test]
    fn tuning_gains_reach_about_40_percent_on_tuning_sensitive_platforms() {
        // §V-B: "achieving up to 40% reduction in iteration time".
        let layout = SystemLayout::from_gb(10.0);
        let cuda = framework_by_name("CUDA").unwrap();
        let t4 = platform_by_name("T4").unwrap();
        let r = tune(&layout, &cuda, &t4, 1024).unwrap();
        assert!(
            (0.30..0.60).contains(&r.reduction()),
            "T4 tuning reduction = {}",
            r.reduction()
        );
        // Newer platforms gain much less.
        let h100 = platform_by_name("H100").unwrap();
        let r2 = tune(&layout, &cuda, &h100, 1024).unwrap();
        assert!(r2.reduction() < r.reduction());
    }

    #[test]
    fn pstl_cannot_be_tuned() {
        let layout = SystemLayout::from_gb(10.0);
        let pstl = framework_by_name("PSTL+ACPP").unwrap();
        let t4 = platform_by_name("T4").unwrap();
        assert!(tune(&layout, &pstl, &t4, 1024).is_none());
    }

    #[test]
    fn different_platforms_require_different_tuning() {
        // §V-B: "different platforms often require different tuning".
        let layout = SystemLayout::from_gb(10.0);
        let hip = framework_by_name("HIP").unwrap();
        let t4 = platform_by_name("T4").unwrap();
        let h100 = platform_by_name("H100").unwrap();
        let r_t4 = tune(&layout, &hip, &t4, 256).unwrap();
        let r_h100 = tune(&layout, &hip, &h100, 256).unwrap();
        assert_ne!(r_t4.best_tpb, r_h100.best_tpb);
    }
}
