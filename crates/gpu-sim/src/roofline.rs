//! Roofline analysis of the solver kernels.
//!
//! §VI: "The main operations are two sparse matrix-by-vector products, a
//! well-known, highly memory-bound operation." This module quantifies
//! that: arithmetic intensity (flops per byte) of every kernel, each
//! platform's ridge point (`peak_flops / peak_bandwidth`), and how far
//! below the ridge the solver sits — the analysis that justifies the
//! simulator's bandwidth-only kernel model.

use gaia_sparse::SystemLayout;
use serde::{Deserialize, Serialize};

use crate::platform::PlatformSpec;
use crate::workload::{iteration_kernels, KernelDesc};

/// Roofline placement of one kernel on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: String,
    /// Arithmetic intensity in FLOP/byte.
    pub intensity: f64,
    /// The platform's ridge point in FLOP/byte (below ⇒ memory-bound).
    pub ridge: f64,
    /// Attainable performance at this intensity, in GFLOP/s
    /// (`min(peak, bw × intensity)`).
    pub attainable_gflops: f64,
    /// Fraction of the platform's FP64 peak that attainable performance
    /// represents.
    pub fraction_of_peak: f64,
}

impl RooflinePoint {
    /// True when the kernel sits on the bandwidth slope of the roofline.
    pub fn memory_bound(&self) -> bool {
        self.intensity < self.ridge
    }
}

/// Arithmetic intensity of a kernel descriptor.
pub fn intensity(kernel: &KernelDesc) -> f64 {
    if kernel.bytes == 0 {
        return f64::INFINITY;
    }
    kernel.flops as f64 / kernel.bytes as f64
}

/// The platform's ridge point in FLOP/byte.
pub fn ridge_point(platform: &PlatformSpec) -> f64 {
    platform.fp64_tflops * 1e12 / platform.bw_bytes_per_sec()
}

/// Roofline placement of every per-iteration kernel on `platform`.
pub fn analyze(layout: &SystemLayout, platform: &PlatformSpec) -> Vec<RooflinePoint> {
    let ridge = ridge_point(platform);
    let peak = platform.fp64_tflops * 1e12;
    iteration_kernels(layout)
        .into_iter()
        .map(|k| {
            let ai = intensity(&k);
            let attainable = (platform.bw_bytes_per_sec() * ai).min(peak);
            RooflinePoint {
                kernel: k.name,
                intensity: ai,
                ridge,
                attainable_gflops: attainable / 1e9,
                fraction_of_peak: attainable / peak,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{all_platforms, platform_by_name};

    #[test]
    fn every_solver_kernel_is_memory_bound_everywhere() {
        // The §VI premise, verified over the whole grid: the aprod kernels
        // sit far below every platform's ridge point.
        let layout = SystemLayout::from_gb(10.0);
        for p in all_platforms() {
            for pt in analyze(&layout, &p) {
                assert!(
                    pt.memory_bound(),
                    "{} on {}: AI {} vs ridge {}",
                    pt.kernel,
                    p.name,
                    pt.intensity,
                    pt.ridge
                );
                // "Far below": at least 10x under the ridge on FP64-strong
                // parts (everything but the T4, whose FP64 peak is tiny).
                if p.name != "T4" {
                    assert!(
                        pt.intensity * 10.0 < pt.ridge,
                        "{} on {}",
                        pt.kernel,
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn intensity_is_a_structure_constant() {
        // Arithmetic intensity depends only on the matrix structure, not
        // the problem size: doubling the size doubles flops and bytes.
        let a = analyze(
            &SystemLayout::from_gb(1.0),
            &platform_by_name("A100").unwrap(),
        );
        let b = analyze(
            &SystemLayout::from_gb(8.0),
            &platform_by_name("A100").unwrap(),
        );
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.intensity - y.intensity).abs() < 0.02 * x.intensity.max(1e-12),
                "{}: {} vs {}",
                x.kernel,
                x.intensity,
                y.intensity
            );
        }
    }

    #[test]
    fn aprod_intensity_is_fractions_of_a_flop_per_byte() {
        // 2 flops per stored non-zero against ~20+ bytes of traffic.
        let layout = SystemLayout::from_gb(10.0);
        let pts = analyze(&layout, &platform_by_name("H100").unwrap());
        for pt in pts.iter().filter(|p| p.kernel.starts_with("aprod")) {
            assert!(
                pt.intensity > 0.01 && pt.intensity < 0.25,
                "{}: AI {}",
                pt.kernel,
                pt.intensity
            );
        }
    }

    #[test]
    fn ridge_points_match_datasheet_ratios() {
        // H100 (34 TF / 4 TB/s) ridge ≈ 8.5; T4 (0.25 TF / 0.32 TB/s)
        // ridge ≈ 0.78 — even the T4 is compute-rich relative to the
        // solver's ~0.1 FLOP/byte.
        let h100 = platform_by_name("H100").unwrap();
        assert!((ridge_point(&h100) - 8.5).abs() < 0.1);
        let t4 = platform_by_name("T4").unwrap();
        assert!((ridge_point(&t4) - 0.78).abs() < 0.03);
    }
}
