//! The iteration-time model: platforms × frameworks × problem layouts.

use gaia_sparse::footprint::total_device_bytes;
use gaia_sparse::SystemLayout;
use serde::{Deserialize, Serialize};

use crate::atomics::atomic_multiplier;
use crate::engine::{aprod2_phase_seconds, KernelTiming};
use crate::framework::FrameworkSpec;
use crate::occupancy::occupancy_efficiency;
use crate::platform::PlatformSpec;
use crate::workload::{iteration_kernels, Phase};

/// Absolute device-memory headroom below which capacity pressure kicks in.
/// Runtime-managed memory (managed allocations, system USM) starts paging
/// and throttling when the *spare bytes* — not the spare fraction — run
/// out: the V100 running the 30 GB problem keeps only ~0.7 GB free, while
/// the MI250X running 60 GB still has ~1.7 GB.
pub const PRESSURE_MARGIN_BYTES: f64 = 2e9;

/// Simulation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Force a threads-per-block value (used by the tuner and the tuning
    /// ablation; `None` = the framework's own choice).
    pub tpb_override: Option<u32>,
}

/// Full accounting of one modeled iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Total modeled iteration time in seconds.
    pub seconds: f64,
    /// Time in the four `aprod1` kernels.
    pub aprod1_seconds: f64,
    /// Time in the (possibly overlapped) `aprod2` phase.
    pub aprod2_seconds: f64,
    /// Time in the BLAS-1 vector work.
    pub blas_seconds: f64,
    /// Kernel-launch latency.
    pub launch_seconds: f64,
    /// Runtime synchronization overhead.
    pub sync_seconds: f64,
    /// Threads-per-block actually used.
    pub tpb: u32,
    /// Effective bandwidth in GB/s after all derating factors.
    pub effective_bw_gbs: f64,
    /// Device-memory occupancy ratio of the problem.
    pub memory_ratio: f64,
    /// Per-kernel timings (launch latency excluded).
    pub kernels: Vec<KernelTiming>,
}

/// Capacity-pressure bandwidth factor for a framework given the problem's
/// device footprint and the platform memory.
pub fn pressure_factor(fw: &FrameworkSpec, bytes_needed: u64, mem_bytes: u64) -> f64 {
    let spare = mem_bytes.saturating_sub(bytes_needed) as f64;
    if spare >= PRESSURE_MARGIN_BYTES {
        1.0
    } else {
        let depth = 1.0 - spare / PRESSURE_MARGIN_BYTES;
        (1.0 - fw.pressure_sensitivity * depth).max(0.05)
    }
}

/// Model the average LSQR iteration time of `fw` on `platform` for
/// `layout`. Returns `None` when the framework cannot target the vendor or
/// the problem does not fit in device memory (→ `P = 0` semantics).
pub fn iteration_time(
    layout: &SystemLayout,
    fw: &FrameworkSpec,
    platform: &PlatformSpec,
    cfg: &SimConfig,
) -> Option<IterationBreakdown> {
    if !fw.supports_vendor(platform.vendor) {
        return None;
    }
    let bytes_needed = total_device_bytes(layout);
    if !platform.fits(bytes_needed) {
        return None;
    }
    let memory_ratio = bytes_needed as f64 / platform.mem_bytes() as f64;

    let tpb = cfg.tpb_override.unwrap_or_else(|| fw.tpb_on(platform));
    let occ = occupancy_efficiency(platform, tpb);
    let effective_bw = platform.bw_bytes_per_sec()
        * platform.coalescing
        * occ
        * fw.codegen_on(platform)
        * fw.coherence_bw_factor
        * pressure_factor(fw, bytes_needed, platform.mem_bytes());
    let fp64_peak = platform.fp64_tflops * 1e12;
    let atomics = fw.atomics_on(platform);

    let mut aprod1_seconds = 0.0;
    let mut blas_seconds = 0.0;
    let mut aprod2_kernels: Vec<KernelTiming> = Vec::with_capacity(4);
    let mut aprod2_bw_bound = 0.0;
    let mut kernels_out = Vec::new();
    let mut launches = 0u32;

    for k in iteration_kernels(layout) {
        let mem_time = k.bytes as f64 / effective_bw;
        let flop_time = k.flops as f64 / fp64_peak;
        let base = mem_time.max(flop_time);
        match k.phase {
            Phase::Aprod1 => {
                aprod1_seconds += base;
                launches += 1;
                kernels_out.push(KernelTiming {
                    name: k.name,
                    seconds: base,
                });
            }
            Phase::Blas => {
                blas_seconds += base;
                // The BLAS-1 work is several small launches.
                launches += 6;
                kernels_out.push(KernelTiming {
                    name: k.name,
                    seconds: base,
                });
            }
            Phase::Aprod2 => {
                // Atomic portion of the traffic pays the codegen-dependent
                // multiplier.
                let plain = (k.bytes - k.atomic_bytes) as f64 / effective_bw;
                let atomic = k.atomic_bytes as f64 / effective_bw
                    * atomic_multiplier(atomics, platform, fw.atomic_contention_mult);
                let t = plain + atomic.max(flop_time.min(atomic));
                aprod2_bw_bound += mem_time;
                launches += 1;
                let timing = KernelTiming {
                    name: k.name,
                    seconds: t,
                };
                aprod2_kernels.push(timing.clone());
                kernels_out.push(timing);
            }
        }
    }

    let aprod2_seconds = aprod2_phase_seconds(&aprod2_kernels, fw.streams, aprod2_bw_bound);
    let launch_seconds = f64::from(launches) * platform.launch_us * 1e-6;
    let sync_seconds = fw.sync_us * 1e-6;
    let seconds = aprod1_seconds + aprod2_seconds + blas_seconds + launch_seconds + sync_seconds;

    Some(IterationBreakdown {
        seconds,
        aprod1_seconds,
        aprod2_seconds,
        blas_seconds,
        launch_seconds,
        sync_seconds,
        tpb,
        effective_bw_gbs: effective_bw / 1e9,
        memory_ratio,
        kernels: kernels_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::{all_frameworks, framework_by_name, FRAMEWORK_NAMES};
    use crate::platforms::{all_platforms, platform_by_name, PLATFORM_NAMES};

    fn grid_times(gb: f64) -> Vec<(String, String, f64)> {
        let layout = SystemLayout::from_gb(gb);
        let mut out = Vec::new();
        for fw in all_frameworks() {
            for p in all_platforms() {
                if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                    out.push((fw.name.clone(), p.name.clone(), b.seconds));
                }
            }
        }
        out
    }

    fn eff(times: &[(String, String, f64)], fw: &str, platform: &str) -> Option<f64> {
        let t = times
            .iter()
            .find(|(f, p, _)| f == fw && p == platform)
            .map(|(_, _, t)| *t)?;
        let best = times
            .iter()
            .filter(|(_, p, _)| p == platform)
            .map(|(_, _, t)| *t)
            .fold(f64::INFINITY, f64::min);
        Some(best / t)
    }

    fn pp(times: &[(String, String, f64)], fw: &str, platforms: &[&str]) -> f64 {
        let mut inv = 0.0;
        for p in platforms {
            match eff(times, fw, p) {
                Some(e) if e > 0.0 => inv += 1.0 / e,
                _ => return 0.0,
            }
        }
        platforms.len() as f64 / inv
    }

    #[test]
    fn unsupported_combinations_return_none() {
        let layout = SystemLayout::from_gb(10.0);
        let cuda = framework_by_name("CUDA").unwrap();
        let mi = platform_by_name("MI250X").unwrap();
        assert!(iteration_time(&layout, &cuda, &mi, &SimConfig::default()).is_none());
        let t4 = platform_by_name("T4").unwrap();
        let hip = framework_by_name("HIP").unwrap();
        let layout30 = SystemLayout::from_gb(30.0);
        assert!(iteration_time(&layout30, &hip, &t4, &SimConfig::default()).is_none());
    }

    #[test]
    fn faster_platforms_give_faster_iterations() {
        // Fig. 4: "newer and more performant platforms clearly deliver
        // lower average iteration times across all model sizes".
        let times = grid_times(10.0);
        let t = |p: &str| {
            times
                .iter()
                .find(|(f, pl, _)| f == "CUDA" && pl == p)
                .map(|(_, _, t)| *t)
                .unwrap()
        };
        assert!(t("H100") < t("A100"));
        assert!(t("A100") < t("V100"));
        assert!(t("V100") < t("T4"));
    }

    #[test]
    fn iteration_times_are_sub5min_as_in_artifact_appendix() {
        // Appendix A: "a single execution (100 iterations) should not
        // exceed 5 minutes" → one iteration stays well under 3 s.
        for gb in [10.0, 30.0, 60.0] {
            for (fw, p, t) in grid_times(gb) {
                assert!(t < 3.0, "{fw} on {p} at {gb} GB: {t}s");
                assert!(t > 1e-4, "{fw} on {p} at {gb} GB suspiciously fast: {t}s");
            }
        }
    }

    // ------------------------------------------------------------------
    // Calibration shape tests: the published headline results (§V-B).
    // ------------------------------------------------------------------

    #[test]
    fn hip_wins_p_at_10gb_with_sycl_acpp_close() {
        let times = grid_times(10.0);
        let all: Vec<&str> = PLATFORM_NAMES.to_vec();
        let hip = pp(&times, "HIP", &all);
        let acpp = pp(&times, "SYCL+ACPP", &all);
        assert!(hip > 0.90, "HIP P(10GB) = {hip}");
        assert!(acpp > 0.85, "SYCL+ACPP P(10GB) = {acpp}");
        assert!(
            hip >= acpp,
            "HIP ({hip}) must lead at 10 GB over ACPP ({acpp})"
        );
        for fw in FRAMEWORK_NAMES.iter().filter(|f| **f != "HIP") {
            assert!(
                pp(&times, fw, &all) <= hip + 1e-12,
                "{fw} beats HIP at 10 GB"
            );
        }
    }

    #[test]
    fn sycl_acpp_overtakes_hip_at_30gb() {
        // §V-B: "Here the best score is 0.93 by SYCL+ACPP which surpasses
        // HIP with a score of 0.88."
        let times = grid_times(30.0);
        let set: Vec<&str> = vec!["V100", "A100", "H100", "MI250X"];
        let hip = pp(&times, "HIP", &set);
        let acpp = pp(&times, "SYCL+ACPP", &set);
        assert!(
            acpp > hip,
            "ACPP ({acpp}) must surpass HIP ({hip}) at 30 GB"
        );
        assert!(acpp > 0.85 && hip > 0.80, "acpp {acpp} hip {hip}");
    }

    #[test]
    fn cuda_is_zero_on_full_set_but_wins_nvidia_only() {
        let times = grid_times(10.0);
        assert_eq!(pp(&times, "CUDA", PLATFORM_NAMES.as_ref()), 0.0);
        let nvidia = vec!["T4", "V100", "A100", "H100"];
        let cuda = pp(&times, "CUDA", &nvidia);
        assert!(cuda > 0.95, "CUDA P(NVIDIA-only) = {cuda} (paper: 0.97)");
        for fw in FRAMEWORK_NAMES.iter().filter(|f| **f != "CUDA") {
            assert!(
                pp(&times, fw, &nvidia) <= cuda + 1e-12,
                "{fw} beats CUDA on NVIDIA-only"
            );
        }
    }

    #[test]
    fn omp_llvm_is_the_worst_supported_framework_at_10gb() {
        // §V-B: "the worst value is 0.25 obtained by OMP+LLVM".
        let times = grid_times(10.0);
        let all: Vec<&str> = PLATFORM_NAMES.to_vec();
        let omp = pp(&times, "OMP+LLVM", &all);
        assert!(omp < 0.40, "OMP+LLVM P(10GB) = {omp} (paper: 0.25)");
        assert!(omp > 0.10, "OMP+LLVM must still run everywhere ({omp})");
        for fw in FRAMEWORK_NAMES
            .iter()
            .filter(|f| **f != "OMP+LLVM" && **f != "CUDA")
        {
            assert!(pp(&times, fw, &all) >= omp, "{fw} below OMP+LLVM");
        }
    }

    #[test]
    fn platform_winners_match_the_paper() {
        // §V-B: fastest framework per platform is CUDA on T4/A100, HIP on
        // V100/H100, OMP+V on MI250X.
        let times = grid_times(10.0);
        let winner = |platform: &str| -> String {
            times
                .iter()
                .filter(|(_, p, _)| p == platform)
                .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
                .map(|(f, _, _)| f.clone())
                .unwrap()
        };
        assert_eq!(winner("T4"), "CUDA");
        assert_eq!(winner("A100"), "CUDA");
        assert_eq!(winner("V100"), "HIP");
        assert_eq!(winner("H100"), "HIP");
        assert_eq!(winner("MI250X"), "OMP+V");
    }

    #[test]
    fn best_platform_per_framework_matches_the_paper() {
        // §V-B at 10 GB: H100 is the best platform for several frameworks
        // "including even HIP"; "MI250X is the best platform for OMP+V";
        // "surprisingly, T4 is the best platform for SYCL+DPCPP"; "only
        // V100 has never been the best platform".
        let times = grid_times(10.0);
        let best_platform = |fw: &str| -> String {
            PLATFORM_NAMES
                .iter()
                .filter_map(|p| eff(&times, fw, p).map(|e| (p.to_string(), e)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(p, _)| p)
                .unwrap()
        };
        assert_eq!(best_platform("HIP"), "H100");
        assert_eq!(best_platform("OMP+V"), "MI250X");
        assert_eq!(best_platform("SYCL+DPCPP"), "T4");
        let h100_count = FRAMEWORK_NAMES
            .iter()
            .filter(|f| best_platform(f) == "H100")
            .count();
        assert!(h100_count >= 3, "H100 best for {h100_count} frameworks");
        for fw in FRAMEWORK_NAMES {
            assert_ne!(best_platform(fw), "V100", "{fw}: V100 is never the best");
        }
    }

    #[test]
    fn pstl_vendor_average_p_is_mid_range() {
        // §V-B/abstract: "the tuning-oblivious C++ PSTL achieves 0.62 when
        // coupled with vendor-specific compilers" (average over sizes).
        let sets: [(f64, Vec<&str>); 3] = [
            (10.0, PLATFORM_NAMES.to_vec()),
            (30.0, vec!["V100", "A100", "H100", "MI250X"]),
            (60.0, vec!["H100", "MI250X"]),
        ];
        let mut total = 0.0;
        for (gb, set) in &sets {
            let times = grid_times(*gb);
            total += pp(&times, "PSTL+V", set);
        }
        let avg = total / 3.0;
        assert!(
            (0.5..0.8).contains(&avg),
            "PSTL+V average P = {avg} (paper: 0.62)"
        );
    }

    #[test]
    fn pstl_efficiency_increases_from_t4_to_h100() {
        // §V-B: "The C++ PSTL efficiency increases from T4 to H100,
        // reaching a value of 90% application efficiency on H100."
        let times = grid_times(10.0);
        let e = |p: &str| eff(&times, "PSTL+ACPP", p).unwrap();
        assert!(e("T4") < e("V100") && e("V100") < e("A100") && e("A100") < e("H100"));
        assert!(e("H100") > 0.85, "PSTL+ACPP on H100 = {}", e("H100"));
        assert!(e("T4") < 0.7, "PSTL+ACPP on T4 = {}", e("T4"));
        // And 0.45-0.6 on MI250X for both PSTL variants.
        for fw in ["PSTL+ACPP", "PSTL+V"] {
            let m = eff(&times, fw, "MI250X").unwrap();
            assert!((0.40..0.65).contains(&m), "{fw} on MI250X = {m}");
        }
    }

    #[test]
    fn cas_loop_frameworks_sink_on_mi250x() {
        let times = grid_times(10.0);
        for fw in ["OMP+LLVM", "SYCL+DPCPP"] {
            let e = eff(&times, fw, "MI250X").unwrap();
            assert!(e < 0.65, "{fw} on MI250X = {e} (CAS loops must hurt)");
        }
        // While the RMW frameworks stay healthy there.
        for fw in ["HIP", "OMP+V", "SYCL+ACPP"] {
            let e = eff(&times, fw, "MI250X").unwrap();
            assert!(e > 0.80, "{fw} on MI250X = {e}");
        }
    }

    #[test]
    fn production_baseline_is_about_2x_slower_than_optimized_cuda() {
        // §V-B: "a preliminary comparison of our optimized CUDA version
        // against the production version ... obtaining a speed-up of 2.0x
        // on Leonardo on a 42 GB problem" (A100-class node).
        let layout = SystemLayout::from_gb(42.0);
        let h100 = platform_by_name("H100").unwrap();
        let cuda = framework_by_name("CUDA").unwrap();
        let prod = framework_by_name("CUDA-production").unwrap();
        let t_opt = iteration_time(&layout, &cuda, &h100, &SimConfig::default())
            .unwrap()
            .seconds;
        let t_prod = iteration_time(&layout, &prod, &h100, &SimConfig::default())
            .unwrap()
            .seconds;
        let speedup = t_prod / t_opt;
        assert!(
            (1.6..2.6).contains(&speedup),
            "optimized-vs-production speedup = {speedup} (paper: 2.0)"
        );
    }

    #[test]
    fn more_frameworks_score_high_at_60gb() {
        // §V-B: at 60 GB "more frameworks obtain high scores due to the
        // low number of hardware platforms".
        let t10 = grid_times(10.0);
        let t60 = grid_times(60.0);
        let all: Vec<&str> = PLATFORM_NAMES.to_vec();
        let set60: Vec<&str> = vec!["H100", "MI250X"];
        let high10 = FRAMEWORK_NAMES
            .iter()
            .filter(|f| pp(&t10, f, &all) > 0.85)
            .count();
        let high60 = FRAMEWORK_NAMES
            .iter()
            .filter(|f| **f != "CUDA")
            .filter(|f| pp(&t60, f, &set60) > 0.85)
            .count();
        assert!(high60 > high10, "high scores: 10GB {high10}, 60GB {high60}");
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let layout = SystemLayout::from_gb(10.0);
        let fw = framework_by_name("HIP").unwrap();
        let p = platform_by_name("MI250X").unwrap();
        let b = iteration_time(&layout, &fw, &p, &SimConfig::default()).unwrap();
        let sum = b.aprod1_seconds
            + b.aprod2_seconds
            + b.blas_seconds
            + b.launch_seconds
            + b.sync_seconds;
        assert!((b.seconds - sum).abs() < 1e-15);
        assert_eq!(b.kernels.len(), 9);
        assert_eq!(b.tpb, p.opt_tpb);
    }
}

/// Fluid-simulated schedule of the `aprod2` phase (see [`crate::events`]):
/// the discrete-event counterpart of the closed-form overlap model, used
/// by the profiler view for exact per-kernel intervals.
pub fn aprod2_fluid_schedule(
    layout: &SystemLayout,
    fw: &FrameworkSpec,
    platform: &PlatformSpec,
) -> Option<crate::events::FluidSchedule> {
    use crate::events::{simulate_concurrent, simulate_serial, FluidTask};
    let b = iteration_time(layout, fw, platform, &SimConfig::default())?;
    let effective_bw = b.effective_bw_gbs * 1e9;
    let atomics = fw.atomics_on(platform);
    let tasks: Vec<FluidTask> = iteration_kernels(layout)
        .into_iter()
        .filter(|k| k.phase == Phase::Aprod2)
        .map(|k| {
            let shared = k.bytes as f64 / effective_bw;
            let excess = atomic_multiplier(atomics, platform, fw.atomic_contention_mult) - 1.0;
            let private = k.atomic_bytes as f64 / effective_bw * excess;
            FluidTask {
                name: k.name,
                shared_seconds: shared,
                private_seconds: private,
            }
        })
        .collect();
    Some(if fw.streams {
        simulate_concurrent(&tasks)
    } else {
        simulate_serial(&tasks)
    })
}

#[cfg(test)]
mod fluid_tests {
    use super::*;
    use crate::frameworks::{all_frameworks, framework_by_name};
    use crate::platforms::{all_platforms, platform_by_name};

    #[test]
    fn fluid_schedule_brackets_the_closed_form() {
        // For every supported cell, the fluid makespan and the closed-form
        // aprod2 phase must agree within the overlap-model slack (the
        // closed form charges max(bw bound, slowest kernel); the fluid
        // model can land anywhere between that and the serial sum).
        let layout = SystemLayout::from_gb(10.0);
        for fw in all_frameworks() {
            for p in all_platforms() {
                let (Some(b), Some(s)) = (
                    iteration_time(&layout, &fw, &p, &SimConfig::default()),
                    aprod2_fluid_schedule(&layout, &fw, &p),
                ) else {
                    continue;
                };
                if fw.streams {
                    // Same lower bounds; fluid may exceed the closed form
                    // by at most the private tails it cannot hide.
                    let serial: f64 = s.kernels.iter().map(|k| k.end - k.start).sum();
                    assert!(
                        s.makespan >= b.aprod2_seconds - 1e-12,
                        "{} on {}: fluid {} below closed form {}",
                        fw.name,
                        p.name,
                        s.makespan,
                        b.aprod2_seconds
                    );
                    assert!(
                        s.makespan <= serial + 1e-12,
                        "{} on {}: fluid exceeds serial",
                        fw.name,
                        p.name
                    );
                    // Agreement within 25 % for RMW codegen; CAS loops
                    // grow private tails the closed form optimistically
                    // hides under the bandwidth bound, so allow more slack
                    // there (the fluid number is the more faithful one —
                    // recorded as a model limitation in EXPERIMENTS.md).
                    let tol = match fw.atomics_on(&p) {
                        crate::framework::AtomicCodegen::Rmw => 0.25,
                        crate::framework::AtomicCodegen::CasLoop => 0.60,
                    };
                    assert!(
                        (s.makespan - b.aprod2_seconds).abs() <= tol * b.aprod2_seconds,
                        "{} on {}: fluid {} vs closed {}",
                        fw.name,
                        p.name,
                        s.makespan,
                        b.aprod2_seconds
                    );
                } else {
                    // Serial frameworks: both models are the plain sum.
                    assert!(
                        (s.makespan - b.aprod2_seconds).abs() <= 1e-9 * b.aprod2_seconds,
                        "{} on {}: serial fluid {} vs closed {}",
                        fw.name,
                        p.name,
                        s.makespan,
                        b.aprod2_seconds
                    );
                }
            }
        }
    }

    #[test]
    fn fluid_schedule_orders_kernels_sensibly() {
        let layout = SystemLayout::from_gb(10.0);
        let fw = framework_by_name("CUDA").unwrap();
        let p = platform_by_name("H100").unwrap();
        let s = aprod2_fluid_schedule(&layout, &fw, &p).unwrap();
        assert_eq!(s.kernels.len(), 4);
        // The attitude kernel carries the most traffic and the largest
        // atomic tail — it finishes last among the four.
        let att_end = s
            .kernels
            .iter()
            .find(|k| k.name == "aprod2_att")
            .unwrap()
            .end;
        assert!((att_end - s.makespan).abs() < 1e-15, "attitude ends last");
    }
}
