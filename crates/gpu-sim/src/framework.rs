//! Programming-framework (plus compiler) description.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::platform::{PlatformSpec, Vendor};

/// How much kernel-shape control a framework exposes (§IV, §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tunability {
    /// Explicit blocks × threads-per-block (CUDA, HIP, SYCL `NDrange`):
    /// the tuner picks the platform optimum.
    Full,
    /// Coarse pragma-level control (`num_teams`, `thread_limit`): tuned to
    /// the platform optimum, "with parameters similar to the ones used by
    /// HIP and SYCL" (§V-B).
    Pragma,
    /// No control at all (C++ PSTL): the runtime default applies
    /// everywhere. §V-B: "the default parameter tuning spans 256 threads
    /// per block on each architecture".
    Fixed {
        /// The runtime's hard-wired threads-per-block.
        tpb: u32,
    },
}

/// FP64 atomic accumulation emitted for the colliding `aprod2` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicCodegen {
    /// Native read-modify-write (`atomicAdd` / `global_atomic_add_f64`).
    Rmw,
    /// Compare-and-swap retry loop — "they probably generate code in which
    /// atomic operations are performed with a compare-and-swap (CAS) loop.
    /// In our case, this degrades performance" (§V-B).
    CasLoop,
}

/// Compiler/toolchain metadata (paper Tables I–III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolchain {
    /// Compiler used on NVIDIA platforms (`None` = not supported).
    pub nvidia_compiler: Option<String>,
    /// Compilation flags on NVIDIA (Table II; `XX` stands for the SM
    /// architecture number).
    pub nvidia_flags: Option<String>,
    /// Compiler used on AMD (`None` = not supported).
    pub amd_compiler: Option<String>,
    /// Compilation flags on AMD (Table III).
    pub amd_flags: Option<String>,
}

/// One framework + compiler combination of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkSpec {
    /// Display name, matching the paper's legend (`"HIP"`,
    /// `"SYCL+ACPP"`, ...).
    pub name: String,
    /// Vendors the toolchain can target at all.
    pub targets: Vec<Vendor>,
    /// Kernel-shape control.
    pub tunability: Tunability,
    /// Atomic codegen per vendor.
    pub atomics_nvidia: AtomicCodegen,
    /// Atomic codegen on AMD (irrelevant when AMD is not targeted).
    pub atomics_amd: AtomicCodegen,
    /// Whether the port overlaps the four `aprod2` kernels in streams /
    /// out-of-order queues (§IV: CUDA, HIP, SYCL do; OpenMP and PSTL
    /// execute them back-to-back).
    pub streams: bool,
    /// Fixed per-iteration runtime synchronization overhead in
    /// microseconds (queue flushes, dependence tracking). This is what
    /// hurts heavyweight runtimes on *fast* GPUs, where kernels are too
    /// short to hide it — and why the T4 is SYCL+DPC++'s relatively best
    /// platform (§V-B).
    pub sync_us: f64,
    /// Per-platform code-generation efficiency: the fraction of the
    /// platform's tuned effective bandwidth this compiler's kernels
    /// achieve. 1.0 = native-quality codegen. Keyed by platform name;
    /// missing key = `default_codegen_eff`. These are the calibration
    /// constants of the model — each entry cites its paper passage in
    /// [`crate::frameworks`].
    pub codegen_eff: BTreeMap<String, f64>,
    /// Fallback codegen efficiency.
    pub default_codegen_eff: f64,
    /// Sensitivity to running close to the memory-capacity limit
    /// (0 = explicit memory management, unaffected; 1 = fully
    /// runtime-managed memory, strongly affected). Models the §V-B
    /// observation that efficiencies spread out at 30 GB, where the V100
    /// (and at 60 GB the MI250X) run within a few % of device capacity.
    pub pressure_sensitivity: f64,
    /// Extra multiplier on the atomic collision cost (1.0 = the optimized
    /// kernel layout of §IV that shrinks the colliding regions; the
    /// production baseline that predates that optimization uses > 1).
    pub atomic_contention_mult: f64,
    /// Bandwidth factor for the memory-coherence mode (1.0 = coarse-grain;
    /// < 1 for fine-grain coherence, which the paper found to cause
    /// "performance degradations due to the atomic operations" before
    /// forcing coarse grain via `hipMemAdvise`).
    pub coherence_bw_factor: f64,
    /// Toolchain metadata (Tables I–III).
    pub toolchain: Toolchain,
}

impl FrameworkSpec {
    /// Can this framework target the platform's vendor?
    pub fn supports_vendor(&self, vendor: Vendor) -> bool {
        self.targets.contains(&vendor)
    }

    /// Atomic codegen on a platform.
    pub fn atomics_on(&self, platform: &PlatformSpec) -> AtomicCodegen {
        match platform.vendor {
            Vendor::Nvidia => self.atomics_nvidia,
            Vendor::Amd => self.atomics_amd,
        }
    }

    /// Threads-per-block the framework ends up using on a platform.
    pub fn tpb_on(&self, platform: &PlatformSpec) -> u32 {
        match self.tunability {
            Tunability::Full | Tunability::Pragma => platform.opt_tpb,
            Tunability::Fixed { tpb } => tpb,
        }
    }

    /// Codegen efficiency on a platform.
    pub fn codegen_on(&self, platform: &PlatformSpec) -> f64 {
        self.codegen_eff
            .get(&platform.name)
            .copied()
            .unwrap_or(self.default_codegen_eff)
    }

    /// Compiler used on a platform, if supported (Table I).
    pub fn compiler_on(&self, vendor: Vendor) -> Option<&str> {
        match vendor {
            Vendor::Nvidia => self.toolchain.nvidia_compiler.as_deref(),
            Vendor::Amd => self.toolchain.amd_compiler.as_deref(),
        }
    }

    /// Compilation flags on a platform, if supported (Tables II–III).
    pub fn flags_on(&self, vendor: Vendor) -> Option<&str> {
        match vendor {
            Vendor::Nvidia => self.toolchain.nvidia_flags.as_deref(),
            Vendor::Amd => self.toolchain.amd_flags.as_deref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::platform_by_name;

    #[test]
    fn tpb_respects_tunability() {
        let t4 = platform_by_name("T4").unwrap();
        let h100 = platform_by_name("H100").unwrap();
        let mut fw = crate::frameworks::framework_by_name("CUDA").unwrap();
        assert_eq!(fw.tpb_on(&t4), 32);
        assert_eq!(fw.tpb_on(&h100), 256);
        fw.tunability = Tunability::Fixed { tpb: 256 };
        assert_eq!(fw.tpb_on(&t4), 256);
    }

    #[test]
    fn codegen_falls_back_to_default() {
        let fw = FrameworkSpec {
            name: "X".into(),
            targets: vec![Vendor::Nvidia],
            tunability: Tunability::Full,
            atomics_nvidia: AtomicCodegen::Rmw,
            atomics_amd: AtomicCodegen::Rmw,
            streams: false,
            sync_us: 0.0,
            codegen_eff: BTreeMap::new(),
            default_codegen_eff: 0.8,
            pressure_sensitivity: 0.0,
            atomic_contention_mult: 1.0,
            coherence_bw_factor: 1.0,
            toolchain: Toolchain {
                nvidia_compiler: Some("nvcc".into()),
                nvidia_flags: None,
                amd_compiler: None,
                amd_flags: None,
            },
        };
        let t4 = platform_by_name("T4").unwrap();
        assert_eq!(fw.codegen_on(&t4), 0.8);
        assert!(fw.supports_vendor(Vendor::Nvidia));
        assert!(!fw.supports_vendor(Vendor::Amd));
    }
}
