//! Energy model — the "green computing" extension.
//!
//! The AVU-GSR line of work explicitly tracks energy next to performance
//! (ref \[46\]: "The MPI+CUDA Gaia AVU-GSR parallel solver in perspective
//! of next-generation Exascale infrastructures and new green computing
//! milestones"). The paper at hand reports time only; this module extends
//! the simulator with the energy side so the harness can rank platforms
//! and frameworks by energy-to-solution as well:
//!
//! `E_iter = (P_board · u + P_idle · (1 − u)) · t_iter`
//!
//! with `u` the sustained-power utilization of a memory-bound kernel
//! stream (boards rarely hit TDP on bandwidth-bound code; HBM parts sit
//! around 70–85 %).

use serde::{Deserialize, Serialize};

use crate::platform::PlatformSpec;

/// Board power figures for a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Board power limit (TDP) in watts.
    pub tdp_w: f64,
    /// Idle power in watts.
    pub idle_w: f64,
    /// Sustained-power fraction of TDP for memory-bound kernels.
    pub mem_bound_utilization: f64,
}

/// Datasheet/measurement-based power figures per platform.
pub fn power_spec(platform: &PlatformSpec) -> PowerSpec {
    match platform.name.as_str() {
        // Tesla T4: 70 W board, famously efficient inference card.
        "T4" => PowerSpec {
            tdp_w: 70.0,
            idle_w: 10.0,
            mem_bound_utilization: 0.85,
        },
        // V100S PCIe: 250 W.
        "V100" => PowerSpec {
            tdp_w: 250.0,
            idle_w: 25.0,
            mem_bound_utilization: 0.80,
        },
        // A100 SXM 40 GB: 400 W.
        "A100" => PowerSpec {
            tdp_w: 400.0,
            idle_w: 45.0,
            mem_bound_utilization: 0.75,
        },
        // H100 in a Grace-Hopper module: up to 700 W for the GPU side.
        "H100" => PowerSpec {
            tdp_w: 700.0,
            idle_w: 60.0,
            mem_bound_utilization: 0.70,
        },
        // MI250X: 560 W per OAM (two GCDs) → 280 W per GCD.
        "MI250X" => PowerSpec {
            tdp_w: 280.0,
            idle_w: 35.0,
            mem_bound_utilization: 0.80,
        },
        _ => PowerSpec {
            tdp_w: 300.0,
            idle_w: 30.0,
            mem_bound_utilization: 0.75,
        },
    }
}

/// Energy in joules consumed by one iteration of duration
/// `iteration_seconds`.
pub fn iteration_energy_j(platform: &PlatformSpec, iteration_seconds: f64) -> f64 {
    let p = power_spec(platform);
    let watts = p.tdp_w * p.mem_bound_utilization + p.idle_w * (1.0 - p.mem_bound_utilization);
    watts * iteration_seconds
}

/// Iterations obtainable from one kilowatt-hour.
pub fn iterations_per_kwh(platform: &PlatformSpec, iteration_seconds: f64) -> f64 {
    3.6e6 / iteration_energy_j(platform, iteration_seconds)
}

/// Energy efficiency in bytes of solver traffic per joule (the "green"
/// counterpart of bandwidth).
pub fn bytes_per_joule(
    platform: &PlatformSpec,
    iteration_bytes: u64,
    iteration_seconds: f64,
) -> f64 {
    iteration_bytes as f64 / iteration_energy_j(platform, iteration_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::framework_by_name;
    use crate::model::{iteration_time, SimConfig};
    use crate::platforms::{all_platforms, platform_by_name};
    use gaia_sparse::SystemLayout;

    #[test]
    fn every_platform_has_sane_power_numbers() {
        for p in all_platforms() {
            let ps = power_spec(&p);
            assert!(ps.idle_w < ps.tdp_w, "{}", p.name);
            assert!(
                (0.5..=1.0).contains(&ps.mem_bound_utilization),
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let t4 = platform_by_name("T4").unwrap();
        let e1 = iteration_energy_j(&t4, 0.1);
        let e2 = iteration_energy_j(&t4, 0.2);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert!(e1 > 0.0);
    }

    #[test]
    fn h100_is_fastest_but_not_automatically_greenest() {
        // The green-computing motivation: time-to-solution and
        // energy-to-solution rank platforms differently. Verify both
        // metrics are computable and that the T4 (70 W) beats the H100
        // (700 W module) on energy-per-iteration normalized by speed
        // ratio... i.e. compute J/iteration explicitly.
        let layout = SystemLayout::from_gb(10.0);
        let cuda = framework_by_name("CUDA").unwrap();
        let t4 = platform_by_name("T4").unwrap();
        let h100 = platform_by_name("H100").unwrap();
        let t_t4 = iteration_time(&layout, &cuda, &t4, &SimConfig::default())
            .unwrap()
            .seconds;
        let t_h100 = iteration_time(&layout, &cuda, &h100, &SimConfig::default())
            .unwrap()
            .seconds;
        assert!(t_h100 < t_t4, "H100 is faster");
        let e_t4 = iteration_energy_j(&t4, t_t4);
        let e_h100 = iteration_energy_j(&h100, t_h100);
        // Both well-defined and in a plausible band (sub-kilojoule per
        // iteration at 10 GB).
        assert!(e_t4 > 0.0 && e_t4 < 1000.0, "{e_t4}");
        assert!(e_h100 > 0.0 && e_h100 < 1000.0, "{e_h100}");
        // And the ranking genuinely can differ from the speed ranking —
        // assert the energy ratio is much smaller than the speed ratio.
        let speed_ratio = t_t4 / t_h100;
        let energy_ratio = e_t4 / e_h100;
        assert!(energy_ratio < speed_ratio / 2.0);
    }

    #[test]
    fn iterations_per_kwh_inverts_energy() {
        let a100 = platform_by_name("A100").unwrap();
        let t = 0.05;
        let per_kwh = iterations_per_kwh(&a100, t);
        let energy = iteration_energy_j(&a100, t);
        assert!((per_kwh * energy - 3.6e6).abs() < 1e-6);
    }
}
