//! Discrete-event fluid simulation of concurrent kernel streams.
//!
//! The closed-form model in [`crate::engine`] reduces the overlapped
//! `aprod2` phase to `max(bandwidth bound, slowest kernel)`. This module
//! derives that result from first principles with a processor-sharing
//! fluid simulation — the standard model of co-resident GPU kernels
//! competing for memory bandwidth:
//!
//! * each kernel owns two sequential pieces of work: a *bandwidth-shared*
//!   part (its memory traffic, progressing at `total_bw / active_kernels`)
//!   and a *private* part (its atomic-serialization excess, progressing at
//!   a fixed rate regardless of co-runners — it is bound by contention on
//!   its own cache lines, not by DRAM);
//! * the simulation advances from kernel-completion event to
//!   kernel-completion event, re-splitting bandwidth each time;
//! * the output is an exact per-kernel `[start, end]` schedule whose
//!   makespan the tests compare against the closed form.
//!
//! Work conservation makes the bandwidth-bound case exact
//! (`Σ bytes / bw`); the private parts reproduce the "slowest kernel"
//! limb. Where the two models differ — a kernel whose private tail
//! finishes *after* the shared traffic drains but is itself shorter than
//! the total — the fluid result is the more faithful one, and the
//! difference is bounded by the shortest private tail (asserted below).

use serde::{Deserialize, Serialize};

/// One kernel to schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidTask {
    /// Kernel name.
    pub name: String,
    /// Bandwidth-shared work, expressed in seconds at *full* bandwidth.
    pub shared_seconds: f64,
    /// Private serial work in seconds (atomic excess), executed after the
    /// kernel's shared traffic completes.
    pub private_seconds: f64,
}

/// One scheduled interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledKernel {
    /// Kernel name.
    pub name: String,
    /// Start time (s).
    pub start: f64,
    /// End of the bandwidth-shared phase (s).
    pub shared_end: f64,
    /// End of the private phase (s) — the kernel's completion.
    pub end: f64,
}

/// The full schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidSchedule {
    /// Per-kernel intervals, in input order.
    pub kernels: Vec<ScheduledKernel>,
    /// Completion time of the last kernel.
    pub makespan: f64,
}

/// Simulate `tasks` starting simultaneously on independent streams over a
/// shared memory system (processor sharing with equal weights).
pub fn simulate_concurrent(tasks: &[FluidTask]) -> FluidSchedule {
    #[derive(Clone, Copy, PartialEq)]
    enum Phase {
        Shared,
        Private,
        Done,
    }
    let n = tasks.len();
    let mut remaining_shared: Vec<f64> = tasks.iter().map(|t| t.shared_seconds.max(0.0)).collect();
    let mut remaining_private: Vec<f64> =
        tasks.iter().map(|t| t.private_seconds.max(0.0)).collect();
    let mut phase: Vec<Phase> = remaining_shared
        .iter()
        .zip(&remaining_private)
        .map(|(&s, &p)| {
            if s > 0.0 {
                Phase::Shared
            } else if p > 0.0 {
                Phase::Private
            } else {
                Phase::Done
            }
        })
        .collect();
    let mut shared_end = vec![0.0f64; n];
    let mut end = vec![0.0f64; n];
    let mut now = 0.0f64;

    loop {
        let active_shared = phase.iter().filter(|&&p| p == Phase::Shared).count();
        let any_private = phase.contains(&Phase::Private);
        if active_shared == 0 && !any_private {
            break;
        }
        // Rate of each shared kernel under processor sharing.
        let shared_rate = if active_shared > 0 {
            1.0 / active_shared as f64
        } else {
            0.0
        };
        // Time to the next completion event.
        let mut dt = f64::INFINITY;
        for i in 0..n {
            let t = match phase[i] {
                Phase::Shared => remaining_shared[i] / shared_rate,
                Phase::Private => remaining_private[i],
                Phase::Done => continue,
            };
            dt = dt.min(t);
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);
        now += dt;
        for i in 0..n {
            match phase[i] {
                Phase::Shared => {
                    remaining_shared[i] -= dt * shared_rate;
                    if remaining_shared[i] <= 1e-15 {
                        remaining_shared[i] = 0.0;
                        shared_end[i] = now;
                        if remaining_private[i] > 0.0 {
                            phase[i] = Phase::Private;
                        } else {
                            end[i] = now;
                            phase[i] = Phase::Done;
                        }
                    }
                }
                Phase::Private => {
                    remaining_private[i] -= dt;
                    if remaining_private[i] <= 1e-15 {
                        remaining_private[i] = 0.0;
                        end[i] = now;
                        phase[i] = Phase::Done;
                    }
                }
                Phase::Done => {}
            }
        }
    }

    let kernels = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| ScheduledKernel {
            name: t.name.clone(),
            start: 0.0,
            shared_end: shared_end[i],
            end: end[i],
        })
        .collect();
    FluidSchedule {
        kernels,
        makespan: now,
    }
}

/// Serial execution of the same tasks (no overlap): each kernel runs its
/// shared work at full bandwidth, then its private tail.
pub fn simulate_serial(tasks: &[FluidTask]) -> FluidSchedule {
    let mut now = 0.0;
    let kernels = tasks
        .iter()
        .map(|t| {
            let start = now;
            let shared_end = start + t.shared_seconds.max(0.0);
            now = shared_end + t.private_seconds.max(0.0);
            ScheduledKernel {
                name: t.name.clone(),
                start,
                shared_end,
                end: now,
            }
        })
        .collect();
    FluidSchedule {
        kernels,
        makespan: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, shared: f64, private: f64) -> FluidTask {
        FluidTask {
            name: name.into(),
            shared_seconds: shared,
            private_seconds: private,
        }
    }

    #[test]
    fn bandwidth_bound_case_is_work_conserving() {
        // No private tails: concurrent makespan == total shared work.
        let tasks = vec![
            task("a", 0.2, 0.0),
            task("b", 0.5, 0.0),
            task("c", 0.3, 0.0),
        ];
        let s = simulate_concurrent(&tasks);
        assert!((s.makespan - 1.0).abs() < 1e-12, "{}", s.makespan);
        // Serial is identical in this regime.
        let ser = simulate_serial(&tasks);
        assert!((ser.makespan - 1.0).abs() < 1e-12);
    }

    fn task2(name: &str, shared: f64, private: f64) -> FluidTask {
        task(name, shared, private)
    }

    #[test]
    fn private_tails_overlap_under_concurrency() {
        // Two kernels, each 0.1 shared + 0.4 private. Serial: 1.0.
        // Concurrent: shared drains in 0.2 (shared bw); tails overlap →
        // makespan ≈ 0.2 + 0.4 = 0.6 at worst (the later finisher's tail
        // starts when its shared half is done).
        let tasks = vec![task2("a", 0.1, 0.4), task2("b", 0.1, 0.4)];
        let conc = simulate_concurrent(&tasks);
        let ser = simulate_serial(&tasks);
        assert!((ser.makespan - 1.0).abs() < 1e-12);
        assert!(conc.makespan < ser.makespan - 0.3, "{}", conc.makespan);
        assert!(conc.makespan >= 0.6 - 1e-12);
    }

    #[test]
    fn matches_closed_form_engine_within_the_private_tail_bound() {
        // The engine's closed form: max(bw bound, slowest standalone
        // kernel), clamped to the serial sum. The fluid result must agree
        // within the shortest private tail.
        let cases: Vec<Vec<FluidTask>> = vec![
            vec![
                task("astro", 0.14, 0.0),
                task("att", 0.30, 0.10),
                task("instr", 0.17, 0.06),
                task("glob", 0.03, 0.01),
            ],
            vec![task("a", 0.5, 0.0), task("b", 0.1, 0.0)],
            vec![task("a", 0.05, 0.5), task("b", 0.05, 0.02)],
        ];
        for tasks in cases {
            let fluid = simulate_concurrent(&tasks).makespan;
            let bw_bound: f64 = tasks.iter().map(|t| t.shared_seconds).sum();
            let slowest = tasks
                .iter()
                .map(|t| t.shared_seconds + t.private_seconds)
                .fold(0.0f64, f64::max);
            let serial: f64 = tasks
                .iter()
                .map(|t| t.shared_seconds + t.private_seconds)
                .sum();
            let closed = bw_bound.max(slowest).min(serial);
            let tol = tasks
                .iter()
                .map(|t| t.private_seconds)
                .fold(f64::INFINITY, f64::min)
                .max(1e-12)
                + bw_bound;
            assert!(
                (fluid - closed).abs() <= tol,
                "fluid {fluid} vs closed {closed} (tol {tol})"
            );
            // And the universal bounds hold exactly.
            assert!(fluid >= bw_bound - 1e-12);
            assert!(fluid >= slowest - 1e-12);
            assert!(fluid <= serial + 1e-12);
        }
    }

    #[test]
    fn schedule_intervals_are_consistent() {
        let tasks = vec![
            task("a", 0.2, 0.1),
            task("b", 0.4, 0.0),
            task("c", 0.0, 0.3),
        ];
        let s = simulate_concurrent(&tasks);
        for k in &s.kernels {
            assert!(k.start <= k.shared_end && k.shared_end <= k.end);
            assert!(k.end <= s.makespan + 1e-12);
        }
        assert_eq!(s.kernels.len(), 3);
        // Zero-shared kernel starts its private work immediately.
        assert!((s.kernels[2].shared_end - 0.0).abs() < 1e-12);
        assert!((s.kernels[2].end - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_task_list_is_trivial() {
        let s = simulate_concurrent(&[]);
        assert_eq!(s.makespan, 0.0);
        assert!(s.kernels.is_empty());
    }

    #[test]
    fn serial_preserves_input_order() {
        let tasks = vec![task("first", 0.1, 0.0), task("second", 0.2, 0.1)];
        let s = simulate_serial(&tasks);
        assert_eq!(s.kernels[0].end, s.kernels[1].start);
        assert!((s.makespan - 0.4).abs() < 1e-12);
    }
}
