//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the property-testing subset this workspace uses: the
//! [`proptest!`] macro over named strategies, numeric range strategies,
//! tuple composition, [`collection::vec`], [`bool::ANY`], `prop_map`,
//! `prop_filter`, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! assertion forms.
//!
//! Differences from real proptest, deliberate for an offline vendored
//! stub: no shrinking (a failure reports the exact generated inputs
//! instead of a minimized case), and the RNG is seeded deterministically
//! per test so CI failures always reproduce.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Why a test case could not complete.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case does not apply (filtered input or failed `prop_assume!`);
    /// the runner draws a fresh input without counting the case.
    Reject(String),
    /// An assertion failed; the runner aborts the test.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Source of randomness handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test RNG: same seed, same stream, every run.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name: distinct tests get distinct streams.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;

    /// Draw one value (or reject, e.g. from a filter).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (drawing replacements).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Result<U, TestCaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        let value = self.inner.generate(rng)?;
        if (self.pred)(&value) {
            Ok(value)
        } else {
            Err(TestCaseError::reject(self.reason))
        }
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.rng().gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.rng().gen_range(self.clone()))
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestCaseError, TestRng};
    use rand::Rng;

    /// Strategy yielding fair booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Result<bool, TestCaseError> {
            Ok(rng.rng().gen())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestCaseError, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case-driving loop behind [`crate::proptest!`].

    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Rejections tolerated before giving up, as a multiple of `cases`.
    const MAX_REJECTS_PER_CASE: u32 = 16;

    /// Run `body` until `config.cases` cases pass. Panics on the first
    /// failure (no shrinking: the generated inputs are reported as-is by
    /// the failure message the body produced).
    pub fn run(
        config: ProptestConfig,
        test_name: &str,
        body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::deterministic(test_name);
        let max_rejects = config.cases.saturating_mul(MAX_REJECTS_PER_CASE).max(1024);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejected} rejects for {passed} passes; last: {reason})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest `{test_name}` failed after {passed} passing cases:\n{message}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
        let _ = right;
    }};
}

/// Reject the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Define property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strategy,)+);
            $crate::test_runner::run($config, stringify!($name), |__proptest_rng| {
                let ($($pat,)+) =
                    $crate::Strategy::generate(&strategy, __proptest_rng)?;
                $body
                Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..50,
            (lo, hi) in (0u64..10, 10u64..20),
            f in -1.0f64..1.0,
            flag in crate::bool::ANY,
        ) {
            prop_assert!(a >= 1 && a < 50);
            prop_assert!(lo < hi);
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = flag;
        }

        #[test]
        fn map_and_filter_compose(v in evens().prop_filter("nonzero", |&v| v != 0)) {
            prop_assert!(v % 2 == 0, "odd value {v}");
            prop_assert_ne!(v, 1);
        }

        #[test]
        fn vec_sizes_fixed_and_ranged(
            fixed in crate::collection::vec(0.0f64..1.0, 8),
            ranged in crate::collection::vec(0u32..5, 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 3 == 0);
            prop_assert_eq!(x % 3, 0, "x = {}", x);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let sa = (0u64..1_000_000).generate(&mut a).unwrap();
        let sb = (0u64..1_000_000).generate(&mut b).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_message() {
        crate::test_runner::run(ProptestConfig::with_cases(5), "always_fails", |_| {
            Err(TestCaseError::fail("expected failure"))
        });
    }
}
