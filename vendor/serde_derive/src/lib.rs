//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Supports the shapes this workspace derives on: structs with named
//! fields, and enums whose variants are unit or struct-like — no tuple
//! variants, no generics. Anything else is a compile-time panic with a
//! pointed message rather than silently wrong code. The expansion targets
//! the vendored `serde`'s `Content` model with real serde's wire shapes
//! for this subset: structs map to `Content::Map` keyed by field name,
//! unit variants to `Content::Str` of the variant name, and struct
//! variants to the externally-tagged `{"Variant": {fields...}}` map.
//!
//! Implemented with direct `proc_macro::TokenTree` inspection because the
//! usual helpers (`syn`, `quote`) are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing entry deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`),
/// reporting whether a `#[serde(default)]` was among them.
fn skip_decorations(iter: &mut TokenIter) -> bool {
    let mut serde_default = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        serde_default |= is_serde_default(g.stream());
                    }
                    other => panic!("serde_derive: malformed attribute near {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return serde_default,
        }
    }
}

/// Recognize the `serde(default)` attribute body. Any other `serde(...)`
/// option is a hard error — silently ignoring it would produce wrong wire
/// shapes.
fn is_serde_default(attr: TokenStream) -> bool {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let opts: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if opts == ["default"] {
                true
            } else {
                panic!(
                    "serde_derive: unsupported serde attribute option(s) {opts:?} \
                     (the vendored derive only knows `default`)"
                )
            }
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_decorations(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive")
        }
        other => panic!(
            "serde_derive: expected braced body for `{name}` \
             (tuple structs are not supported), found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let default = skip_decorations(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{field}`, found {other:?}"),
        }
        // Skip the type: a top-level `,` ends the field; commas inside
        // `<...>` (tracked by angle depth) or delimited groups do not.
        let mut angle_depth = 0usize;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field {
            name: field,
            default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_decorations(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive: tuple variant `{name}` is not supported by the vendored derive"
            ),
            _ => None,
        };
        variants.push(Variant { name, fields });
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("serde_derive: expected `,` after variant, found {other:?}"),
        }
    }
    variants
}

fn struct_variant_to_content(enum_name: &str, v: &Variant, fields: &[Field]) -> String {
    let bindings = fields
        .iter()
        .map(|f| f.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    let entries = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{f}\"), ::serde::Serialize::to_content({f})),",
                f = f.name
            )
        })
        .collect::<String>();
    format!(
        "{enum_name}::{name} {{ {bindings} }} => ::serde::Content::Map(vec![(\n\
             String::from(\"{name}\"), ::serde::Content::Map(vec![{entries}]),\n\
         )]),",
        name = v.name
    )
}

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),",
                        f = f.name
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Content::Str(String::from(\"{v}\")),",
                        v = v.name
                    ),
                    Some(fields) => struct_variant_to_content(&name, v, fields),
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

fn field_init(f: &Field) -> String {
    let helper = if f.default {
        "field_or_default"
    } else {
        "field"
    };
    format!(
        "{f}: ::serde::{helper}(entries, \"{f}\")?,",
        f = f.name,
        helper = helper
    )
}

/// Derive `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits = fields.iter().map(field_init).collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         let entries = content.as_map_for(\"{name}\")?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect::<String>();
            let tagged_arms = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits = fields.iter().map(field_init).collect::<String>();
                    format!(
                        "\"{v}\" => {{\n\
                             let entries = inner.as_map_for(\"{name}::{v}\")?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                         }}",
                        v = v.name
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Content::Map(outer) if outer.len() == 1 => {{\n\
                                 let (tag, inner) = &outer[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::unexpected(\n\
                                 \"{name} variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
