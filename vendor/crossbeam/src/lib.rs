//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the handful of external crates it uses are vendored as
//! minimal, std-only reimplementations of exactly the API surface the
//! workspace consumes (see `vendor/README.md`). Here that surface is
//! `crossbeam::thread::scope` / `Scope::spawn`, reimplemented on top of
//! `std::thread::scope` (stable since Rust 1.63).

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention:
    //! `scope` returns a `Result` and the spawn closure receives the
    //! scope, allowing nested spawns.

    /// Result of a scope: `Err` carries a worker panic payload.
    ///
    /// `std::thread::scope` resumes unwinding on worker panic instead of
    /// returning it, so in this shim the `Err` arm is never produced; the
    /// type exists so `scope(...).expect(...)` call sites compile
    /// unchanged and panics still propagate (through the unwind).
    pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle that can spawn workers borrowing from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope (crossbeam
        /// convention — every call site in this workspace ignores it).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope, run `f` inside it, and join all workers.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        thread::scope(|s| {
            let mut rest = out.as_mut_slice();
            for (i, chunk) in data.chunks(2).enumerate() {
                let (mine, tail) = rest.split_at_mut(2);
                rest = tail;
                s.spawn(move |_| {
                    for (o, v) in mine.iter_mut().zip(chunk) {
                        *o = v * (i as u64 + 1);
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(out, vec![1, 2, 6, 8]);
    }

    #[test]
    fn join_handles_return_values() {
        let total: u64 = thread::scope(|s| {
            let hs: Vec<_> = (0..4u64).map(|i| s.spawn(move |_| i * i)).collect();
            hs.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 0 + 1 + 4 + 9);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u64).join().expect("inner") * 2);
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
