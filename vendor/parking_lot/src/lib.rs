//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free calling
//! convention: `lock()` returns the guard directly. A poisoned std lock
//! (only possible after a panic while holding the guard) is recovered
//! rather than propagated, matching parking_lot's behavior of not
//! tracking poisoning at all.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_then_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
