//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde is a zero-copy visitor framework; this stand-in trades all
//! of that for a tiny self-describing tree, [`Content`]: serializers
//! lower values into the tree, deserializers lift them back out. The
//! derive macros (vendored `serde_derive`) generate the same structural
//! mappings real serde would: structs become string-keyed maps, unit enum
//! variants become their name as a string. Formats (the vendored
//! `serde_json`) convert `Content` to and from text.
//!
//! Integer fidelity matters here: `u64` values round-trip through
//! [`Content::U64`] without ever touching a float, which is what lets the
//! solver checkpoints store `f64` bit patterns exactly.

#![warn(missing_docs)]

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing value tree — the data model connecting `Serialize`
/// impls to formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence (arrays, tuples, maps with non-string keys).
    Seq(Vec<Content>),
    /// String-keyed map in insertion order (structs, JSON objects).
    Map(Vec<(String, Content)>),
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error for an unexpected shape.
    pub fn unexpected(expected: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        DeError(format!("expected {expected}, got {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    /// Produce the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types that can lift themselves out of a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct a value from `content`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::unexpected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError(format!("{v} out of range for i64")))?,
                    other => return Err(DeError::unexpected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            // serde_json writes non-finite floats as null.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match content {
                    Content::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}
serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// Maps serialize as a sequence of [key, value] pairs so non-string keys
// (e.g. `BTreeMap<(String, String), f64>`) round-trip losslessly.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(<(K, V)>::from_content).collect(),
            other => Err(DeError::unexpected("map entry sequence", other)),
        }
    }
}

/// Fetch and deserialize a struct field from a derived map; used by the
/// code `serde_derive` generates.
pub fn field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|DeError(m)| DeError(format!("field `{name}`: {m}")))
        }
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but a missing entry yields `T::default()` — the
/// expansion of `#[serde(default)]` on a named field.
pub fn field_or_default<T: Deserialize + Default>(
    entries: &[(String, Content)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|DeError(m)| DeError(format!("field `{name}`: {m}")))
        }
        None => Ok(T::default()),
    }
}

impl Content {
    /// View as a struct map, or error mentioning the target type.
    pub fn as_map_for(&self, ty: &str) -> Result<&[(String, Content)], DeError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError(format!(
                "expected map for {ty}, got {:?}-shaped content",
                DeError::unexpected("map", other).0
            ))),
        }
    }

    /// View as a unit-variant name, or error mentioning the target type.
    pub fn as_variant_for(&self, ty: &str) -> Result<&str, DeError> {
        match self {
            Content::Str(s) => Ok(s),
            other => Err(DeError::unexpected(
                // The formatted string lives long enough via the error.
                &format!("variant string for {ty}"),
                other,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            let c = v.to_content();
            assert_eq!(u64::from_content(&c).unwrap(), v);
        }
        for v in [-1i64, i64::MIN, 7] {
            let c = v.to_content();
            assert_eq!(i64::from_content(&c).unwrap(), v);
        }
    }

    #[test]
    fn tuples_and_nested_vecs() {
        let v: Vec<(usize, Vec<u64>)> = vec![(3, vec![1, 2]), (9, vec![])];
        let c = v.to_content();
        let back: Vec<(usize, Vec<u64>)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_with_tuple_keys() {
        let mut m = BTreeMap::new();
        m.insert(("a".to_string(), "x".to_string()), 1.5f64);
        m.insert(("b".to_string(), "y".to_string()), 2.5f64);
        let back: BTreeMap<(String, String), f64> =
            Deserialize::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_null_round_trip() {
        let some = Some(42u32);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_content(&some.to_content()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u32>::from_content(&none.to_content()).unwrap(),
            none
        );
    }

    #[test]
    fn missing_field_is_an_error() {
        let entries = vec![("a".to_string(), Content::U64(1))];
        assert!(field::<u64>(&entries, "a").is_ok());
        let err = field::<u64>(&entries, "b").unwrap_err();
        assert!(err.0.contains("missing field"), "{err}");
    }
}
