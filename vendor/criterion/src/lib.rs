//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the harness API this workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`Throughput`], [`BenchmarkId`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a plain timing
//! loop: per sample, the routine runs in a batch sized so one batch takes
//! roughly [`TARGET_BATCH`], and the reported figure is the median
//! per-iteration time across samples. No statistical regression analysis,
//! no HTML reports, no gnuplot.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Time one batch should take, so short routines get amortized timing.
const TARGET_BATCH: Duration = Duration::from_millis(25);

/// Work performed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one batch?
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_batch = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / per_batch as u32);
        }
        per_iter.sort();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(group: &str, label: &str, median: Duration, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:.3} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<40} median {}{}", format_duration(median), rate);
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = throughput.into();
        self
    }

    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        if let Some(median) = bencher.result {
            report(&self.name, &id.label, median, self.throughput);
        }
        let _ = &self.criterion;
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        if let Some(median) = bencher.result {
            report(&self.name, &id.label, median, self.throughput);
        }
        self
    }

    /// Finish the group (reporting happens per-benchmark already).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 20,
            result: None,
        };
        f(&mut bencher);
        if let Some(median) = bencher.result {
            report("", name, median, None);
        }
        self
    }
}

/// Re-export for `b.iter(|| black_box(...))`-style benches that import it
/// from criterion rather than `std::hint`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let data: Vec<u64> = (0..100).collect();
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>());
        });
        g.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 2 + 2));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
