//! Offline stand-in for the `rand` crate, 0.8 API subset (see
//! `vendor/README.md`).
//!
//! Provides exactly what this workspace uses: [`rngs::SmallRng`] seeded
//! through [`SeedableRng::seed_from_u64`], and the [`Rng`] extension with
//! `gen`, `gen_bool`, and `gen_range` over integer/float ranges.
//!
//! **Stream compatibility.** The sampling paths the workspace exercises
//! are bit-compatible with `rand` 0.8 on 64-bit targets:
//!
//! * `SmallRng` is xoshiro256++ (as in `rand` 0.8 / `rand_xoshiro`),
//!   seeded through the same SplitMix64 expansion;
//! * `gen_range` over integer ranges uses the widening-multiply
//!   rejection sampler (`UniformInt::sample_single_inclusive`);
//! * `gen_range` over float ranges uses the `[1, 2)` mantissa-fill
//!   sampler (`UniformFloat::sample_single`);
//! * `gen::<f64>()` uses the 53-bit multiply conversion.
//!
//! Seeded fixtures (the sparse-system generator, proptest streams)
//! therefore reproduce the streams the test suite was written against.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, 0.8 calling convention.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p` (Bernoulli trial over one
    /// 64-bit draw, like `rand`'s `Bernoulli`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability");
        if p >= 1.0 {
            return true;
        }
        // rand scales into the full u64 range and compares one draw.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Sample uniformly from `range`.
    ///
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_uniform(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        // Compare against the most significant bit (rand uses the sign
        // bit of a u32 draw rather than the weaker low bit).
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! standard_int_32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_int_32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_int_64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int_64!(u64, usize, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_uniform<G: RngCore>(self, rng: &mut G) -> T;
}

/// `rand`'s `UniformInt::sample_single_inclusive`: map one widening
/// multiply of a full-width draw onto the span, rejecting the small
/// biased tail (Lemire's method). `$large` is the draw width (`u32` for
/// ≤32-bit types, `u64` for 64-bit), `$wide` its doubled width for the
/// multiply.
macro_rules! sample_range_int {
    ($($t:ty, $unsigned:ty, $large:ty, $wide:ty, $draw:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_uniform(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned)
                    .wrapping_add(1) as $large;
                if span == 0 {
                    // Full type range: any draw is unbiased.
                    return rng.$draw() as $t;
                }
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$draw() as $large;
                    let m = (v as $wide) * (span as $wide);
                    let lo_bits = m as $large;
                    if lo_bits <= zone {
                        let hi_bits = (m >> <$large>::BITS) as $unsigned;
                        return lo.wrapping_add(hi_bits as $t);
                    }
                }
            }
        }
    )*};
}
sample_range_int!(
    u8, u8, u32, u64, next_u32;
    u16, u16, u32, u64, next_u32;
    u32, u32, u32, u64, next_u32;
    u64, u64, u64, u128, next_u64;
    usize, usize, u64, u128, next_u64;
    i8, u8, u32, u64, next_u32;
    i16, u16, u32, u64, next_u32;
    i32, u32, u32, u64, next_u32;
    i64, u64, u64, u128, next_u64;
    isize, usize, u64, u128, next_u64;
);

/// `rand`'s `UniformFloat::sample_single`: fill a mantissa to get a
/// value in `[1, 2)`, then map onto `[low, high)`; on the (rounding-only)
/// event that the result lands on `high`, shrink the scale by one ulp
/// and redraw.
macro_rules! sample_range_float {
    ($($t:ty, $bits:ty, $discard:expr, $exp_bias:expr, $mant:expr, $draw:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let (low, high) = (self.start, self.end);
                let mut scale = high - low;
                loop {
                    let mantissa = rng.$draw() as $bits >> $discard;
                    let value1_2 =
                        <$t>::from_bits(mantissa | (($exp_bias as $bits) << $mant));
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    return lo;
                }
                // rand's inclusive float sampler widens the scale by one
                // ulp so `hi` itself is reachable.
                let mut scale = hi - lo;
                scale = <$t>::from_bits(scale.to_bits() + 1);
                loop {
                    let mantissa = rng.$draw() as $bits >> $discard;
                    let value1_2 =
                        <$t>::from_bits(mantissa | (($exp_bias as $bits) << $mant));
                    let res = value1_2 * scale + (lo - scale);
                    if res <= hi {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}
sample_range_float!(
    f64, u64, 12u32, 1023u64, 52u32, next_u64;
    f32, u32, 9u32, 127u32, 23u32, next_u32;
);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator — xoshiro256++, the
    /// algorithm behind `rand` 0.8's `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Construct directly from raw xoshiro state (test support).
        #[doc(hidden)]
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ output function (rand 0.8 uses ++, not **).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn xoshiro256plusplus_reference_vector() {
        // First outputs for state [1, 2, 3, 4], hand-checked against the
        // xoshiro256++ reference implementation
        // (https://prng.di.unimi.it/xoshiro256plusplus.c):
        //   rotl(1 + 4, 23) + 1             = 41943041
        //   rotl(7 + 6*2^45, 23) + 7        = 58720359
        let mut rng = SmallRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
    }

    #[test]
    fn splitmix64_seeding_reference_vector() {
        // SplitMix64's canonical first output for seed 0 is
        // 0xE220A8397B1DCDAF; seed_from_u64 expands the seed with
        // exactly that sequence (little-endian fill, as rand_xoshiro).
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        // state[0] = 0xE220A8397B1DCDAF feeds the ++ output function;
        // recompute the expected first output from the known expansion.
        let expand = |seed: u64| -> [u64; 4] {
            let mut state = seed;
            let mut out = [0u64; 4];
            for slot in &mut out {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            out
        };
        let s = expand(0);
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            first,
            s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0])
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0u64..=2);
            assert!(u <= 2);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let g = rng.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let b = rng.gen_range(0u8..200);
            assert!(b < 200);
        }
    }

    #[test]
    fn integer_ranges_are_unbiased_across_the_span() {
        // The widening-multiply sampler must cover every residue; a
        // modulo sampler would pass this too, but a broken zone test
        // (always rejecting) would hang and a shifted mapping would
        // miss endpoints.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..5_000 {
            match rng.gen_range(-1i64..=1) {
                -1 => hit_lo = true,
                1 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi, "inclusive endpoints reachable");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(5u64..5);
    }
}
