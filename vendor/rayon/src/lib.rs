//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the parallel-iterator subset this workspace uses with real
//! OS-thread parallelism: items are materialized from a standard
//! iterator, split into contiguous per-worker batches, and executed on
//! `std::thread::scope` workers (one batch per available core). This is
//! not a work-stealing pool — there is no global runtime to tune, which
//! coincidentally matches the role rayon plays in this repository: the
//! "tuning-oblivious runtime" analogue of C++ PSTL.
//!
//! Supported surface: `par_chunks`, `par_chunks_mut`, `par_iter`,
//! `par_iter_mut`, `into_par_iter` on ranges, and the adaptors
//! `enumerate`, `step_by`, `zip`, `map`, `for_each`, `reduce`, `sum`,
//! `collect`, plus [`current_num_threads`].

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads a parallel call will use at most.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item on scoped worker threads (contiguous batches).
fn parallel_for_each<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let batch = items.len().div_ceil(workers);
    let mut iter = items.into_iter();
    std::thread::scope(|scope| loop {
        let chunk: Vec<T> = iter.by_ref().take(batch).collect();
        if chunk.is_empty() {
            break;
        }
        scope.spawn(move || {
            for item in chunk {
                f(item);
            }
        });
    });
}

/// Map every item on scoped worker threads, preserving order.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let batch = items.len().div_ceil(workers);
    let mut iter = items.into_iter();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        loop {
            let chunk: Vec<T> = iter.by_ref().take(batch).collect();
            if chunk.is_empty() {
                break;
            }
            handles.push(scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// A parallel iterator backed by a standard (sequential) item source;
/// parallelism happens at the consuming call (`for_each`, `map`, ...).
pub struct ParIter<I> {
    inner: I,
}

impl<I> ParIter<I>
where
    I: Iterator,
    I::Item: Send,
{
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Keep every `step`-th item.
    pub fn step_by(self, step: usize) -> ParIter<std::iter::StepBy<I>> {
        ParIter {
            inner: self.inner.step_by(step),
        }
    }

    /// Pair items positionally with another parallel iterator.
    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J: Iterator,
        J::Item: Send,
    {
        ParIter {
            inner: self.inner.zip(other.inner),
        }
    }

    /// Transform items; the mapping runs on the worker threads.
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        U: Send,
        F: Fn(I::Item) -> U + Sync,
    {
        ParMap {
            inner: self.inner,
            f,
        }
    }

    /// Consume every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync,
    {
        parallel_for_each(self.inner.collect(), &f);
    }

    /// Collect items (sequential; sources are already ordered).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Number of items.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize
    where
        I: ExactSizeIterator,
    {
        self.inner.len()
    }
}

/// A mapped parallel iterator (the map closure runs on workers).
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    /// Map in parallel and collect in order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.inner.collect(), &self.f)
            .into_iter()
            .collect()
    }

    /// Map in parallel, then fold the ordered results with `op`,
    /// starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        parallel_map(self.inner.collect(), &self.f)
            .into_iter()
            .fold(identity(), op)
    }

    /// Map in parallel and sum the results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        parallel_map(self.inner.collect(), &self.f)
            .into_iter()
            .sum()
    }

    /// Consume every mapped item in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        parallel_for_each(self.inner.collect(), &move |item| g(f(item)));
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            inner: self.chunks(size),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-element mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            inner: self.chunks_mut(size),
        }
    }
}

/// `par_iter` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Iter: Iterator;
    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `par_iter_mut` on exclusive collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Iter: Iterator;
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

/// `into_par_iter` on owned sources.
pub trait IntoParallelIterator {
    /// Underlying sequential source.
    type Iter: Iterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Iter = Range<u64>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = i * 64 + j;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn range_step_map_reduce_matches_sequential() {
        let n = 10_000usize;
        let chunk = 37;
        let got = (0..n)
            .into_par_iter()
            .step_by(chunk)
            .map(|start| ((start..(start + chunk).min(n)).sum::<usize>()) as u64)
            .reduce(|| 0u64, |a, b| a + b);
        let want = (0..n as u64).sum::<u64>();
        assert_eq!(got, want);
    }

    #[test]
    fn zip_and_iter_mut() {
        let x: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let mut y = vec![1.0f64; 5000];
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| {
            *yi += 2.0 * xi;
        });
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 1.0 + 2.0 * i as f64);
        }
    }

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let v: Vec<u64> = (0..1_000).collect();
        let sums: Vec<u64> = v.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 10);
        assert_eq!(sums[0], (0..100).sum::<u64>());
        assert_eq!(sums[9], (900..1000).sum::<u64>());
    }

    #[test]
    fn empty_sources_are_fine() {
        let v: Vec<u64> = vec![];
        let total: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 0);
        (0..0usize).into_par_iter().for_each(|_| panic!("no items"));
    }
}
