//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: [`Value`], the [`json!`]
//! macro, [`to_value`], [`to_string`], [`to_string_pretty`],
//! [`to_writer`], [`from_str`], and [`from_reader`], bridged to the
//! vendored `serde`'s `Content` model.
//!
//! Integers are parsed and printed **exactly** (no round-trip through
//! `f64`): solver checkpoints store `f64` bit patterns as `u64` and must
//! survive JSON unscathed. Floats print with Rust's shortest round-trip
//! formatting and parse with the standard library's correctly-rounded
//! parser, so finite `f64` values also round-trip bit-exactly; non-finite
//! floats serialize as `null`, as real serde_json does.

#![warn(missing_docs)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Content, Deserialize, Serialize};

/// A JSON number: exact integers or a float.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer, exact.
    PosInt(u64),
    /// Negative integer, exact.
    NegInt(i64),
    /// Floating-point value (finite).
    Float(f64),
}

impl Number {
    /// Value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// Value as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// String-keyed object preserving insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number (exact integers preserved).
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric view as `u64` (integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_inner(self, None))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.0)
    }
}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(v) => Value::Number(Number::PosInt(v)),
        Content::I64(v) => Value::Number(Number::NegInt(v)),
        Content::F64(v) if v.is_finite() => Value::Number(Number::Float(v)),
        Content::F64(_) => Value::Null, // serde_json writes NaN/inf as null
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            let mut map = Map::new();
            for (k, v) in entries {
                map.insert(k, content_to_value(v));
            }
            Value::Object(map)
        }
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::PosInt(n)) => Content::U64(*n),
        Value::Number(Number::NegInt(n)) => Content::I64(*n),
        Value::Number(Number::Float(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content.clone()))
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(value.to_content()))
}

/// Reconstruct a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_content(&value_to_content(value))?)
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // `{:?}` is the shortest representation that parses back to
            // the same bits.
            out.push_str(&format!("{v:?}"));
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => push_number(out, n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(depth) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_value(out, item, pretty.map(|d| d + 1));
            }
            if let Some(depth) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(depth) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                push_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, val, pretty.map(|d| d + 1));
            }
            if let Some(depth) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push('}');
        }
    }
}

fn to_string_inner(v: &Value, pretty: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty);
    out
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    Ok(to_string_inner(&to_value(value)?, None))
}

/// Serialize to an indented JSON string (2 spaces).
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    Ok(to_string_inner(&to_value(value)?, Some(0)))
}

/// Serialize compactly into a writer.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Parse a value out of a string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    from_value(&value)
}

/// Parse a value out of a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(format!("read failed: {e}")))?;
    from_str(&text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            (1..=rest.len().min(4)).find_map(|n| {
                                std::str::from_utf8(&rest[..n])
                                    .ok()
                                    .and_then(|s| s.chars().next())
                            })
                        })
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        } else if let Some(digits) = text.strip_prefix('-') {
            let _ = digits;
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::new(format!("integer out of range `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new(format!("integer out of range `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

/// Build a [`Value`] with JSON-like syntax. Object values and array
/// elements are arbitrary serializable Rust expressions (including nested
/// `json!` calls); object keys are string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("json! element") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(String::from($key), $crate::to_value(&$val).expect("json! value")); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_integers_round_trip_exactly() {
        for v in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let text = to_string(&v).unwrap();
            let back: u64 = from_str(&text).unwrap();
            assert_eq!(back, v, "via {text}");
        }
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly() {
        for v in [0.1f64, -1.5e-300, 3.141592653589793, -0.0, 1e300] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "via {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn json_macro_objects_arrays_and_exprs() {
        let xs = vec![1u64, 2, 3];
        let v = json!({
            "name": "aprod1",
            "count": xs.len(),
            "items": xs,
            "nested": json!({"inner": true}),
        });
        assert_eq!(v["name"].as_str(), Some("aprod1"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["items"].as_array().unwrap().len(), 3);
        assert_eq!(v["nested"]["inner"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": [1, 2], "b": json!({"c": "x\"y\n"})});
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\tnewline\nquote\"backslash\\unicode\u{1F600}control\u{1}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn unicode_escape_with_surrogate_pair() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }
}
