#!/usr/bin/env bash
# Regenerate every table/figure and extension study of the reproduction,
# in the order of EXPERIMENTS.md. Artifacts (JSON/SVG/REPORT.md) land in
# ./results. Mirrors the role of the paper artifact's Scripts/ directory
# (there per-cluster SLURM scripts; here one local run).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release

run() { echo; echo "### $*"; cargo run --release -p gaia-bench --bin "$@"; }

run fig3
run fig4
run fig5
run fig6
run table_flags
run speedup_production
run tuning_ablation
run spmv_labnotes
run precond_ablation
run matrix_stats
run roofline
run profile
run weak_scaling
run energy
run executors_projection
run solver_comparison
run sensitivity
run whatif
run normalization_study
run cpu_portability
run report_all

echo
echo "All artifacts written to ./results"
