#!/usr/bin/env bash
# Replay one gaia-verify corpus seed: every metamorphic property on every
# backend, plus the trajectory comparison against the sequential reference.
# Writes results/verify/verify-seed-<seed>.json and exits non-zero on any
# violated invariant.
#
# The seed fully determines the system under test (shape, patterns, values)
# via gaia_sparse::fuzz, so a CI failure reproduces from the seed alone.
# The committed corpus lives in crates/verify/corpus/sparse_seeds.txt.
#
# Usage: scripts/replay_verify_seed.sh <seed> [extra verify flags...]
set -euo pipefail
if [ $# -lt 1 ]; then
    echo "usage: $0 <seed> [--schedules N] [--out DIR]" >&2
    exit 2
fi
seed=$1
shift
exec cargo run --release -p gaia-verify --bin verify -- --seed "$seed" "$@"
