//! Kernel-tuning advisor: for a platform, report the thread-block sweep
//! of every tunable framework and the cost of running untuned — the
//! interactive version of the paper's "up to 40 % reduction" finding.
//!
//! ```sh
//! cargo run --example tuning_advisor -- T4
//! cargo run --example tuning_advisor -- MI250X 30
//! ```

use gaia_avugsr::gpu::occupancy::TPB_RANGE;
use gaia_avugsr::gpu::tuner::tune;
use gaia_avugsr::gpu::{all_frameworks, iteration_time, platform_by_name, SimConfig};
use gaia_avugsr::sparse::SystemLayout;

fn main() {
    let mut args = std::env::args().skip(1);
    let platform_name = args.next().unwrap_or_else(|| "T4".to_string());
    let gb: f64 = args.next().map(|a| a.parse().expect("GB")).unwrap_or(10.0);

    let Some(platform) = platform_by_name(&platform_name) else {
        eprintln!("unknown platform {platform_name}; try T4, V100, A100, H100, MI250X");
        std::process::exit(1);
    };
    let layout = SystemLayout::from_gb(gb);
    println!(
        "tuning advisor: {} ({:?}, {} GB/s, optimum tpb {}), {gb} GB problem\n",
        platform.name, platform.vendor, platform.bw_gbs, platform.opt_tpb
    );

    for fw in all_frameworks() {
        let Some(base) = iteration_time(&layout, &fw, &platform, &SimConfig::default()) else {
            println!("{:<12} cannot run here", fw.name);
            continue;
        };
        match tune(&layout, &fw, &platform, 1024) {
            Some(r) => {
                let sweep: String = TPB_RANGE
                    .iter()
                    .map(|&tpb| {
                        let t = iteration_time(
                            &layout,
                            &fw,
                            &platform,
                            &SimConfig {
                                tpb_override: Some(tpb),
                            },
                        )
                        .expect("supported");
                        let marker = if tpb == r.best_tpb { "*" } else { " " };
                        format!("{tpb}:{:.1}ms{marker} ", 1e3 * t.seconds)
                    })
                    .collect();
                println!(
                    "{:<12} tuned tpb {:>4} -> {:.2} ms ({:.0}% better than untuned 1024)",
                    fw.name,
                    r.best_tpb,
                    1e3 * r.best_seconds,
                    100.0 * r.reduction()
                );
                println!("             sweep: {sweep}");
            }
            None => {
                println!(
                    "{:<12} not tunable (runtime default tpb {}) -> {:.2} ms",
                    fw.name,
                    base.tpb,
                    1e3 * base.seconds
                );
            }
        }
    }
    println!(
        "\nLegend: '*' marks the tuner's choice. PSTL rows show why the paper\n\
         wants C++26 executors: the fixed default cannot follow the optimum."
    );
}
