//! Checkpoint/restart: interrupt a solve mid-flight, persist the full
//! Golub–Kahan state to disk, restore it in a "new job", and verify the
//! resumed solve is bit-identical to an uninterrupted one — the restart
//! discipline of the production pipeline at CINECA.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart
//! ```

use gaia_avugsr::backends::ReplicatedBackend;
use gaia_avugsr::lsqr::checkpoint::Checkpoint;
use gaia_avugsr::lsqr::{Lsqr, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    let layout = SystemLayout::small();
    let sys = Generator::new(
        GeneratorConfig::new(layout)
            .seed(321)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-9 }),
    )
    .generate();
    let cfg = LsqrConfig::new();
    let backend = ReplicatedBackend::with_threads(4);
    let solver = Lsqr::new(&sys, &backend, cfg);

    // Reference: one uninterrupted run.
    let direct = solver.run();
    println!(
        "uninterrupted run: {:?} after {} iterations, |r| = {:.3e}",
        direct.stop, direct.iterations, direct.rnorm
    );

    // "Job 1": run a third of the iterations, then the allocation ends.
    let mut state = solver.init_state();
    let budget = (direct.iterations / 3).max(1);
    for _ in 0..budget {
        solver.step(&mut state);
    }
    let path = std::env::temp_dir().join("gaia_avugsr_restart.json");
    Checkpoint::capture(&sys, &cfg, &state)
        .save(&path)
        .expect("write checkpoint");
    println!(
        "job 1 stopped at iteration {} -> checkpoint {} ({} bytes)",
        state.itn,
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    drop(state);

    // "Job 2": a fresh process would rebuild the system from the same
    // seed, reload the state, and continue.
    let restored = Checkpoint::load(&path)
        .expect("read checkpoint")
        .restore(&sys, &cfg)
        .expect("checkpoint matches system");
    println!("job 2 resumes from iteration {}", restored.itn);
    let resumed = solver.run_from(restored);

    println!(
        "resumed run:       {:?} after {} iterations, |r| = {:.3e}",
        resumed.stop, resumed.iterations, resumed.rnorm
    );
    assert_eq!(resumed.x, direct.x, "resume must be bit-identical");
    assert_eq!(resumed.iterations, direct.iterations);
    println!("resumed solution is bit-identical to the uninterrupted run.");

    // Integrity: resuming against the wrong dataset is refused.
    let other = Generator::new(
        GeneratorConfig::new(layout)
            .seed(9999)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-9 }),
    )
    .generate();
    let err = Checkpoint::load(&path)
        .expect("read checkpoint")
        .restore(&other, &cfg)
        .unwrap_err();
    println!("resume against a different dataset is rejected: {err}");
    std::fs::remove_file(&path).ok();
}
