//! Render the block structure of the reduced matrix `A` (paper Fig. 2):
//! the block-diagonal astrometric part, the strided 3×4 attitude pattern,
//! the irregular instrumental columns, and the single global column.
//!
//! ```sh
//! cargo run --example matrix_structure
//! ```

use gaia_avugsr::sparse::{Generator, GeneratorConfig, SystemLayout};

fn main() {
    let layout = SystemLayout {
        n_stars: 4,
        obs_per_star: 16,
        n_deg_freedom_att: 10,
        n_instr_params: 8,
        n_glob_params: 1,
        n_constraint_rows: 3,
    };
    let sys = Generator::new(GeneratorConfig::new(layout).seed(1)).generate();
    let cols = sys.n_cols();
    let c = sys.columns();

    println!(
        "reduced matrix A: {} rows x {} cols  (•=astro  a=attitude  i=instr  g=global)",
        sys.n_rows(),
        cols
    );
    let header: String = (0..cols)
        .map(|j| {
            let j = j as u64;
            if j == c.att || j == c.instr || j == c.glob {
                '|'
            } else {
                ' '
            }
        })
        .collect();
    println!("     {header}");

    for row in 0..sys.n_rows() {
        let mut line = vec![' '; cols];
        for (col, _) in sys.row_entries(row) {
            let col = col as usize;
            line[col] = if (col as u64) < c.att {
                '•'
            } else if (col as u64) < c.instr {
                'a'
            } else if (col as u64) < c.glob {
                'i'
            } else {
                'g'
            };
        }
        let kind = if row < sys.n_obs_rows() {
            "obs "
        } else {
            "con "
        };
        println!("{kind}{row:>2} {}", line.into_iter().collect::<String>());
    }

    println!("\ncolumn blocks:");
    println!(
        "  astrometric  [{:>3}, {:>3})  5 contiguous nnz/row, star-diagonal",
        c.astro, c.att
    );
    println!(
        "  attitude     [{:>3}, {:>3})  3 axes x 4 nnz, stride = DOF per axis",
        c.att, c.instr
    );
    println!(
        "  instrumental [{:>3}, {:>3})  6 irregular nnz/row",
        c.instr, c.glob
    );
    println!(
        "  global       [{:>3}, {:>3})  <=1 nnz/row (PPN-gamma)",
        c.glob, c.end
    );
    println!(
        "\nstored nnz: {} of {} dense entries ({:.1}% sparse)",
        sys.layout().nnz_total(),
        sys.n_rows() as u64 * cols as u64,
        100.0
            * (1.0 - sys.layout().nnz_total() as f64 / (sys.n_rows() as u64 * cols as u64) as f64)
    );
}
