//! Quickstart: generate a synthetic Gaia AVU-GSR system, solve it with
//! the preconditioned LSQR on a parallel backend, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gaia_avugsr::backends::AtomicBackend;
use gaia_avugsr::lsqr::{solve, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    // 1. Describe the problem shape. `SystemLayout::from_gb(10.0)` gives
    //    the paper's 10 GB benchmark; here we use a laptop-sized instance.
    let layout = SystemLayout::small();
    println!(
        "system: {} stars x {} obs -> {} rows, {} unknowns ({} astrometric)",
        layout.n_stars,
        layout.obs_per_star,
        layout.n_rows(),
        layout.n_cols(),
        layout.n_astro_cols(),
    );

    // 2. Generate the seeded synthetic dataset (b = A·x_true + noise).
    let config = GeneratorConfig::new(layout)
        .seed(2024)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 });
    let (system, truth) = Generator::new(config).generate_with_truth();
    let x_true = truth.expect("consistent RHS requested");

    // 3. Solve with the CUDA-analogue backend (row-parallel, atomic f64
    //    updates for the colliding aprod2 blocks).
    let backend = AtomicBackend::with_threads(4);
    let solution = solve(&system, &backend, &LsqrConfig::new());

    println!(
        "LSQR stopped after {} iterations: {:?}",
        solution.iterations, solution.stop
    );
    println!(
        "relative residual |b - Ax| / |b| = {:.3e}",
        solution.relative_residual()
    );
    println!(
        "condition estimate = {:.3e}, mean iteration time = {:.3} ms",
        solution.acond,
        1e3 * solution.mean_iteration_seconds()
    );

    // 4. Compare against the generating truth.
    let err: f64 = solution
        .x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let scale: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("relative solution error vs truth = {:.3e}", err / scale);

    // 5. Standard errors (the quantity validated in the paper's Fig. 6).
    let se = solution.standard_errors().expect("var accumulated");
    let astro = layout.n_astro_cols() as usize;
    let mean_se_astro: f64 = se[..astro].iter().sum::<f64>() / astro as f64;
    println!("mean astrometric standard error = {mean_se_astro:.3e}");
    assert!(err / scale < 1e-6, "quickstart should converge tightly");
}
