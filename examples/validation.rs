//! Port validation (the paper's §V-C protocol in miniature): solve the
//! same system with every registered backend and check each against the
//! sequential reference — solutions must agree within 1σ and the
//! standard-error differences must stay below the 10 µas astrometric
//! threshold (the right-hand side is calibrated to radians).
//!
//! ```sh
//! cargo run --release --example validation
//! ```

use gaia_avugsr::backends::{all_backends, SeqBackend};
use gaia_avugsr::lsqr::validate::GAIA_THRESHOLD_RAD;
use gaia_avugsr::lsqr::{compare_solutions, solve, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    let layout = SystemLayout::small();
    let (mut sys, _) = Generator::new(
        GeneratorConfig::new(layout)
            .seed(99)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-5 }),
    )
    .generate_with_truth();
    // Radian-calibrated astrometry: scale b so the solution has the
    // magnitude of real astrometric corrections.
    let b: Vec<f64> = sys.known_terms().iter().map(|v| v * 1e-7).collect();
    sys.set_known_terms(b);

    let cfg = LsqrConfig::new();
    let reference = solve(&sys, &SeqBackend, &cfg);
    println!(
        "reference: {:?} after {} iterations\n",
        reference.stop, reference.iterations
    );
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>8} {:>8}",
        "backend", "max |Δx|", "1σ [%]", "Δse std", "1σ", "10µas"
    );

    let mut failures = 0;
    for backend in all_backends(4) {
        let sol = solve(&sys, &backend, &cfg);
        let agr = compare_solutions(&reference, &sol);
        let sigma_ok = agr.passes(0.99);
        let uas_ok = agr.stderr_within(GAIA_THRESHOLD_RAD);
        println!(
            "{:<14} {:>12.3e} {:>10.2} {:>12.3e} {:>8} {:>8}",
            backend.name(),
            agr.max_abs_diff,
            100.0 * agr.within_one_sigma.unwrap_or(0.0),
            agr.stderr_std_diff.unwrap_or(f64::NAN),
            if sigma_ok { "PASS" } else { "FAIL" },
            if uas_ok { "PASS" } else { "FAIL" },
        );
        if !(sigma_ok && uas_ok) {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures} backend(s) failed validation");
    println!("\nall backends validate against the reference solution.");
}
