//! End-to-end performance-portability study through the public API:
//! model the framework × platform grid for a problem size (default the
//! paper's 10 GB), derive application efficiencies, and rank frameworks
//! by Pennycook's `P`.
//!
//! ```sh
//! cargo run --example portability_study            # 10 GB
//! cargo run --example portability_study -- 30      # 30 GB
//! ```

use gaia_avugsr::gpu::{all_frameworks, all_platforms, iteration_time, SimConfig};
use gaia_avugsr::p3::{report, Cascade, MeasurementSet, Normalization};
use gaia_avugsr::sparse::{footprint, SystemLayout};

fn main() {
    let gb: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("problem size in GB"))
        .unwrap_or(10.0);
    let layout = SystemLayout::from_gb(gb);
    println!(
        "problem: {gb} GB -> {} rows, {} unknowns, {:.1} GB on device\n",
        layout.n_rows(),
        layout.n_cols(),
        footprint::total_device_bytes(&layout) as f64 / 1e9
    );

    let mut set = MeasurementSet::new();
    for fw in all_frameworks() {
        for platform in all_platforms() {
            match iteration_time(&layout, &fw, &platform, &SimConfig::default()) {
                Some(b) => {
                    set.record(&fw.name, &platform.name, b.seconds);
                }
                None => println!(
                    "  {} does not run on {} (vendor or memory capacity)",
                    fw.name, platform.name
                ),
            }
        }
    }
    println!();

    let platforms: Vec<String> = all_platforms()
        .into_iter()
        .map(|p| p.name)
        .filter(|p| set.platform_best(p).is_some())
        .collect();
    let matrix = set.efficiencies(Normalization::PlatformBest);

    println!("{}", report::times_table(&set, &platforms));
    println!("{}", report::efficiency_table(&matrix, &platforms));
    println!("{}", report::pp_table(&matrix, &platforms));

    // The best and worst cascades, for a feel of the spread.
    let mut ranked: Vec<(String, f64)> = matrix
        .apps()
        .iter()
        .map(|a| (a.clone(), matrix.pp(a, &platforms)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (app, _) in [&ranked[0], &ranked[ranked.len() - 1]] {
        let c = Cascade::build(&matrix, app, &platforms);
        print!("{}", report::cascade_table(&c));
    }
}
