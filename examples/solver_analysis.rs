//! Solver-family analysis: run LSQR and LSMR on the same system, print
//! their convergence profiles, and show what the preconditioner buys —
//! the numerical-analysis view behind the paper's "customized and
//! preconditioned" design.
//!
//! ```sh
//! cargo run --release --example solver_analysis
//! ```

use gaia_avugsr::backends::HybridBackend;
use gaia_avugsr::lsqr::analysis::{convergence_profile, iterations_to_tolerance, profile_text};
use gaia_avugsr::lsqr::{solve, solve_lsmr, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn main() {
    let layout = SystemLayout::small();
    let (sys, _) = Generator::new(
        GeneratorConfig::new(layout)
            .seed(77)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-9 }),
    )
    .generate_with_truth();
    let backend = HybridBackend::with_threads(4);
    println!(
        "system: {} rows x {} cols; backend: {}\n",
        sys.n_rows(),
        sys.n_cols(),
        gaia_avugsr::backends::Backend::name(&backend)
    );

    for (name, sol) in [
        (
            "LSQR (preconditioned)",
            solve(&sys, &backend, &LsqrConfig::new()),
        ),
        (
            "LSMR (preconditioned)",
            solve_lsmr(&sys, &backend, &LsqrConfig::new()),
        ),
        (
            "LSQR (no preconditioner)",
            solve(
                &sys,
                &backend,
                &LsqrConfig::new().precondition(false).max_iters(20_000),
            ),
        ),
    ] {
        println!("=== {name} ===");
        println!(
            "stopped: {:?} after {} iterations; cond(A) ~ {:.2e}",
            sol.stop, sol.iterations, sol.acond
        );
        print!("{}", profile_text(&sol));
        if let Some(p) = convergence_profile(&sol, 10) {
            if p.rate < 0.999 {
                println!(
                    "tail rate {:.4} per iteration (~{:.1} iterations per residual digit)",
                    p.rate,
                    p.iterations_per_digit.unwrap_or(f64::NAN)
                );
            } else {
                println!("tail: plateaued at the noise floor");
            }
        }
        for tol in [1e-3, 1e-6] {
            match iterations_to_tolerance(&sol, tol) {
                Some(k) => println!("reached |r|/|b| ≤ {tol:.0e} at iteration {k}"),
                None => println!("never reached |r|/|b| ≤ {tol:.0e}"),
            }
        }
        println!();
    }
    println!(
        "Takeaways: the Jacobi column scaling collapses the condition number\n\
         and the iteration count (the §III-B customization); LSMR tracks LSQR\n\
         iteration-for-iteration while keeping ‖Aᵀr‖ monotone — same aprod\n\
         cost, safer early stopping."
    );
}
