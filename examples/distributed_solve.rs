//! Distributed LSQR: shard the observations across simulated MPI ranks
//! (threads + deterministic collectives), solve, and verify the result is
//! identical to a single-rank solve — the §IV decomposition of the
//! production code.
//!
//! ```sh
//! cargo run --release --example distributed_solve -- 4
//! ```

use gaia_avugsr::backends::{backend_by_name, SeqBackend};
use gaia_avugsr::lsqr::distributed::{solve_distributed, solve_hybrid};
use gaia_avugsr::lsqr::{solve, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, RowPartition, SystemLayout};

fn main() {
    let n_ranks: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rank count"))
        .unwrap_or(4);

    let layout = SystemLayout::small();
    let sys = Generator::new(
        GeneratorConfig::new(layout)
            .seed(11)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-9 }),
    )
    .generate();

    let partition = RowPartition::new(&layout, n_ranks);
    println!("observation sharding over {n_ranks} ranks:");
    for rank in 0..n_ranks {
        let r = partition.range(rank);
        println!(
            "  rank {rank}: rows [{:>6}, {:>6})  ({} rows)",
            r.start,
            r.end,
            r.len()
        );
    }
    println!(
        "load imbalance = {:.4} (1.0 = perfect)\n",
        partition.imbalance()
    );

    let cfg = LsqrConfig::new();
    let serial = solve(&sys, &SeqBackend, &cfg);
    let dist = solve_distributed(&sys, n_ranks, &cfg);

    println!(
        "serial:      {:>4} iterations, stop {:?}, |r| = {:.6e}",
        serial.iterations, serial.stop, serial.rnorm
    );
    println!(
        "distributed: {:>4} iterations, stop {:?}, |r| = {:.6e}",
        dist.iterations, dist.stop, dist.rnorm
    );

    let max_diff = serial
        .x
        .iter()
        .zip(&dist.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_serial - x_distributed| = {max_diff:.3e}");
    println!(
        "mean iteration time (max over ranks, as the paper measures): {:.3} ms",
        1e3 * dist.mean_iteration_seconds()
    );
    assert!(max_diff < 1e-6, "distributed solve must match serial");
    println!("\ndistributed solve matches the single-rank reference.");

    // Hybrid MPI+X: each rank drives its shard with a multi-threaded
    // backend — the structure of the production MPI+CUDA solver.
    let hybrid = solve_hybrid(&sys, n_ranks, &cfg, |rank| {
        backend_by_name(if rank % 2 == 0 { "atomic" } else { "streamed" }, 2).expect("registry")
    });
    let hybrid_diff = serial
        .x
        .iter()
        .zip(&hybrid.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "hybrid (MPI + threaded backends per rank): {} iterations, max |Δx| = {hybrid_diff:.3e}",
        hybrid.iterations
    );
    assert!(hybrid_diff < 1e-8, "hybrid solve must match serial");
}
