//! Integration: the simulator → p3 analysis pipeline that regenerates the
//! paper's figures, exercised end-to-end through the facade crate.

use gaia_avugsr::gpu::{
    all_frameworks, all_platforms, framework_by_name, iteration_time, platform_by_name, SimConfig,
};
use gaia_avugsr::p3::{Cascade, MeasurementSet, Normalization};
use gaia_avugsr::sparse::SystemLayout;

fn measurements(gb: f64) -> MeasurementSet {
    let layout = SystemLayout::from_gb(gb);
    let mut set = MeasurementSet::new();
    for fw in all_frameworks() {
        for p in all_platforms() {
            if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                set.record(&fw.name, &p.name, b.seconds);
            }
        }
    }
    set
}

#[test]
fn fig3_pipeline_produces_the_paper_rankings() {
    let set = measurements(10.0);
    let platforms = set.platforms();
    let matrix = set.efficiencies(Normalization::PlatformBest);

    let pp = |app: &str| matrix.pp(app, &platforms);
    // HIP leads; SYCL+ACPP second; OMP+LLVM worst among portable; CUDA 0.
    assert!(pp("HIP") > 0.9);
    assert!(pp("SYCL+ACPP") > 0.85 && pp("SYCL+ACPP") <= pp("HIP"));
    assert_eq!(pp("CUDA"), 0.0);
    for fw in [
        "HIP",
        "OMP+V",
        "PSTL+ACPP",
        "PSTL+V",
        "SYCL+ACPP",
        "SYCL+DPCPP",
    ] {
        assert!(pp(fw) > pp("OMP+LLVM"), "{fw} vs OMP+LLVM");
    }

    // Cascade invariants: cumulative P is non-increasing and ends at pp().
    for app in matrix.apps() {
        let c = Cascade::build(&matrix, app, &platforms);
        for w in c.points.windows(2) {
            assert!(w[1].cumulative_pp <= w[0].cumulative_pp + 1e-12, "{app}");
        }
        assert!((c.final_pp() - matrix.pp(app, &platforms)).abs() < 1e-12);
    }
}

#[test]
fn fig4_iteration_times_scale_with_problem_size() {
    let t10 = measurements(10.0);
    let t30 = measurements(30.0);
    for app in t30.apps() {
        for p in t30.platforms() {
            if let (Some(a), Some(b)) = (t10.time(&app, &p), t30.time(&app, &p)) {
                let ratio = b / a;
                assert!(
                    (1.5..6.0).contains(&ratio),
                    "{app} on {p}: 30GB/10GB time ratio {ratio}"
                );
            }
        }
    }
}

#[test]
fn fig5_efficiencies_are_within_unit_interval() {
    for gb in [10.0, 30.0, 60.0] {
        let set = measurements(gb);
        let m = set.efficiencies(Normalization::PlatformBest);
        for app in m.apps() {
            for p in m.platforms() {
                if let Some(e) = m.efficiency(app, p) {
                    assert!(e > 0.0 && e <= 1.0 + 1e-12, "{app} on {p}: {e}");
                }
            }
        }
        // Exactly one framework at efficiency 1.0 per platform (the best).
        for p in m.platforms() {
            let best = m
                .apps()
                .iter()
                .filter_map(|a| m.efficiency(a, p))
                .fold(0.0f64, f64::max);
            assert!((best - 1.0).abs() < 1e-12, "platform {p}");
        }
    }
}

#[test]
fn sixty_gb_only_runs_on_h100_and_mi250x() {
    let set = measurements(60.0);
    assert_eq!(
        set.platforms(),
        vec!["H100".to_string(), "MI250X".to_string()]
    );
    // CUDA survives only on the H100 there (the paper notes P over that
    // set is not meaningful for CUDA).
    assert!(set.time("CUDA", "H100").is_some());
    assert!(set.time("CUDA", "MI250X").is_none());
}

#[test]
fn tuning_and_model_agree_on_the_untuned_penalty() {
    // The tuner's "default" column equals the model evaluated at the
    // forced tpb — no hidden state.
    let layout = SystemLayout::from_gb(10.0);
    let fw = framework_by_name("CUDA").unwrap();
    let t4 = platform_by_name("T4").unwrap();
    let r = gaia_avugsr::gpu::tuner::tune(&layout, &fw, &t4, 1024).unwrap();
    let direct = iteration_time(
        &layout,
        &fw,
        &t4,
        &SimConfig {
            tpb_override: Some(1024),
        },
    )
    .unwrap();
    assert!((r.default_seconds - direct.seconds).abs() < 1e-15);
}
