//! Integration: the measured CPU portability study (real backends, real
//! wall clock) produces a well-formed Pennycook analysis.

use std::time::Instant;

use gaia_avugsr::backends::backend_by_name;
use gaia_avugsr::lsqr::{solve, LsqrConfig};
use gaia_avugsr::p3::{MeasurementSet, Normalization};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, SystemLayout};

#[test]
fn measured_backend_portability_analysis_is_well_formed() {
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(5)).generate();
    let cfg = LsqrConfig::fixed_iterations(3);
    let mut set = MeasurementSet::new();
    for budget in [1usize, 4] {
        for name in ["seq", "atomic", "replicated", "streamed"] {
            let backend = backend_by_name(name, budget).unwrap();
            let start = Instant::now();
            let sol = solve(&sys, &backend, &cfg);
            assert_eq!(sol.iterations, 3);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            set.record(name, &format!("threads-{budget}"), secs);
        }
    }
    let platforms = set.platforms();
    let matrix = set.efficiencies(Normalization::PlatformBest);
    for app in matrix.apps() {
        let p = matrix.pp(app, &platforms);
        assert!(
            (0.0..=1.0 + 1e-12).contains(&p),
            "{app}: P = {p} out of range"
        );
        assert!(p > 0.0, "{app} ran on every budget, P must be positive");
    }
    // Exactly one backend defines the frontier on each budget.
    for p in &platforms {
        let best = matrix
            .apps()
            .iter()
            .filter_map(|a| matrix.efficiency(a, p))
            .fold(0.0f64, f64::max);
        assert!((best - 1.0).abs() < 1e-12);
    }
}
