//! Integration: the solver family (LSQR + LSMR), convergence analysis,
//! and dataset I/O exercised together through the facade crate.

use gaia_avugsr::backends::{all_backends, SeqBackend};
use gaia_avugsr::lsqr::analysis::{convergence_profile, iterations_to_tolerance};
use gaia_avugsr::lsqr::{solve, solve_lsmr, LsqrConfig};
use gaia_avugsr::sparse::{io, Generator, GeneratorConfig, Rhs, SystemLayout};

fn system(seed: u64) -> gaia_avugsr::sparse::SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-7 }),
    )
    .generate()
}

#[test]
fn lsmr_agrees_with_lsqr_on_every_backend() {
    let sys = system(700);
    let cfg = LsqrConfig::new();
    let reference = solve(&sys, &SeqBackend, &cfg);
    for backend in all_backends(3) {
        let lsmr = solve_lsmr(&sys, &backend, &cfg);
        assert!(
            lsmr.stop.converged(),
            "{} LSMR: {:?}",
            backend.name(),
            lsmr.stop
        );
        let max_diff = reference
            .x
            .iter()
            .zip(&lsmr.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-7,
            "{}: LSMR deviates from LSQR by {max_diff}",
            backend.name()
        );
    }
}

#[test]
fn convergence_profiles_describe_both_solvers() {
    let sys = system(701);
    let cfg = LsqrConfig::new();
    let lsqr = solve(&sys, &SeqBackend, &cfg);
    let lsmr = solve_lsmr(&sys, &SeqBackend, &cfg);
    for (name, sol) in [("LSQR", &lsqr), ("LSMR", &lsmr)] {
        let p = convergence_profile(sol, 8).expect("history long enough");
        assert!(p.rate < 1.0, "{name} rate {}", p.rate);
        assert!(p.final_relative_residual < 1e-3, "{name}");
        // Reaching 1e-3 relative residual happens before the run ends.
        let k = iterations_to_tolerance(sol, 1e-3).expect("reached 1e-3");
        assert!(k <= sol.iterations);
    }
}

#[test]
fn dataset_round_trip_preserves_the_solution() {
    // Save → load → solve must equal solve on the original, bit for bit
    // (the GAVU container is bit-exact).
    let sys = system(702);
    let mut buf = Vec::new();
    io::write_system(&sys, &mut buf).unwrap();
    let loaded = io::read_system(buf.as_slice()).unwrap();
    let cfg = LsqrConfig::new();
    let a = solve(&sys, &SeqBackend, &cfg);
    let b = solve(&loaded, &SeqBackend, &cfg);
    assert_eq!(a.x, b.x);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn scan_law_datasets_solve_like_linear_ones() {
    use gaia_avugsr::sparse::{AttitudePattern, InstrumentPattern};
    // The realism knobs change the sparsity pattern, not solvability.
    let cfg = GeneratorConfig::new(SystemLayout::tiny())
        .seed(703)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 })
        .attitude(AttitudePattern::ScanLaw { revolutions: 4 })
        .instrument(InstrumentPattern::Grouped);
    let (sys, truth) = Generator::new(cfg).generate_with_truth();
    let x_true = truth.unwrap();
    let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
    assert!(sol.stop.converged(), "{:?}", sol.stop);
    let err: f64 = sol
        .x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let scale: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err / scale < 1e-6, "relative error {}", err / scale);
}
