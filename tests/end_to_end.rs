//! Integration: generator → backends → LSQR → validation, across crates.

use gaia_avugsr::backends::{all_backends, SeqBackend};
use gaia_avugsr::lsqr::distributed::solve_distributed;
use gaia_avugsr::lsqr::validate::GAIA_THRESHOLD_RAD;
use gaia_avugsr::lsqr::{compare_solutions, solve, LsqrConfig};
use gaia_avugsr::sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

fn radian_system(seed: u64) -> gaia_avugsr::sparse::SparseSystem {
    let layout = SystemLayout::tiny();
    let (mut sys, _) = Generator::new(
        GeneratorConfig::new(layout)
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-5 }),
    )
    .generate_with_truth();
    let b: Vec<f64> = sys.known_terms().iter().map(|v| v * 1e-7).collect();
    sys.set_known_terms(b);
    sys
}

#[test]
fn every_backend_validates_against_the_reference() {
    let sys = radian_system(1);
    let cfg = LsqrConfig::new();
    let reference = solve(&sys, &SeqBackend, &cfg);
    assert!(reference.stop.converged(), "{:?}", reference.stop);
    for backend in all_backends(3) {
        let sol = solve(&sys, &backend, &cfg);
        let agr = compare_solutions(&reference, &sol);
        assert!(
            agr.passes(0.99),
            "backend {} fails 1σ validation: {agr:?}",
            backend.name()
        );
        assert!(
            agr.stderr_within(GAIA_THRESHOLD_RAD),
            "backend {} exceeds 10 µas: {agr:?}",
            backend.name()
        );
    }
}

#[test]
fn distributed_and_serial_agree_for_every_rank_count() {
    let sys = radian_system(2);
    let cfg = LsqrConfig::new();
    let serial = solve(&sys, &SeqBackend, &cfg);
    for ranks in [1, 2, 4, 6] {
        let dist = solve_distributed(&sys, ranks, &cfg);
        let agr = compare_solutions(&serial, &dist);
        // Rank-ordered partial sums round differently from the sequential
        // reduction, so the convergence test may fire one iteration apart;
        // the solutions still agree far below the astrometric requirement.
        assert!(
            agr.max_abs_diff < 1e-10,
            "{ranks} ranks: max diff {}",
            agr.max_abs_diff
        );
        assert!(
            dist.iterations.abs_diff(serial.iterations) <= 1,
            "{ranks} ranks: {} vs {} iterations",
            dist.iterations,
            serial.iterations
        );
    }
}

#[test]
fn fixed_iteration_timing_protocol_runs_on_all_backends() {
    // The paper's timing protocol: fixed iterations, no convergence tests.
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(3)).generate();
    let cfg = LsqrConfig::fixed_iterations(10);
    for backend in all_backends(2) {
        let sol = solve(&sys, &backend, &cfg);
        assert_eq!(sol.iterations, 10, "{}", backend.name());
        assert_eq!(sol.history.len(), 10);
        assert!(sol.mean_iteration_seconds() >= 0.0);
    }
}

#[test]
fn solutions_are_deterministic_per_backend_and_seed() {
    let sys = radian_system(4);
    let cfg = LsqrConfig::new();
    // Deterministic backends must reproduce bit-identical solutions.
    for name in ["seq", "chunked", "streamed"] {
        let b = gaia_avugsr::backends::backend_by_name(name, 4).unwrap();
        let s1 = solve(&sys, &b, &cfg);
        let s2 = solve(&sys, &b, &cfg);
        assert_eq!(s1.x, s2.x, "{name} is not deterministic");
    }
}
