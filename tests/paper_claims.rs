//! One integration test per headline claim of the paper's abstract and
//! conclusions — the top-level contract of this reproduction, exercised
//! end-to-end through the facade crate. (Finer-grained shape tests live
//! in `gaia-gpu-sim`; these are the reader-facing claims.)

use gaia_avugsr::gpu::{
    all_frameworks, all_platforms, framework_by_name, iteration_time, platform_by_name, SimConfig,
};
use gaia_avugsr::p3::{subsets, MeasurementSet, Normalization};
use gaia_avugsr::sparse::SystemLayout;

fn matrix_for(gb: f64) -> (gaia_avugsr::p3::EfficiencyMatrix, Vec<String>) {
    let layout = SystemLayout::from_gb(gb);
    let mut set = MeasurementSet::new();
    for fw in all_frameworks() {
        for p in all_platforms() {
            if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                set.record(&fw.name, &p.name, b.seconds);
            }
        }
    }
    let platforms = set.platforms();
    (set.efficiencies(Normalization::PlatformBest), platforms)
}

fn average_pp(app: &str) -> f64 {
    // Average P across the three problem sizes, each over its own
    // supported-platform set — the abstract's headline aggregation.
    let mut total = 0.0;
    for gb in [10.0, 30.0, 60.0] {
        let (m, platforms) = matrix_for(gb);
        total += m.pp(app, &platforms);
    }
    total / 3.0
}

#[test]
fn abstract_claim_hip_is_most_portable() {
    // "HIP was demonstrated to be the most portable solution with a 0.94
    // average P across the tested problem sizes, closely followed by SYCL
    // coupled with AdaptiveCpp (ACPP) with 0.93."
    let hip = average_pp("HIP");
    let acpp = average_pp("SYCL+ACPP");
    assert!(hip > 0.88, "HIP average P = {hip} (paper 0.94)");
    assert!(acpp > 0.88, "SYCL+ACPP average P = {acpp} (paper 0.93)");
    assert!(
        (hip - acpp).abs() < 0.06,
        "the two leaders must be close: {hip} vs {acpp}"
    );
    // And both must lead every other framework except possibly OMP+V at
    // 60 GB (two-platform set where it wins MI250X).
    for other in ["OMP+LLVM", "PSTL+ACPP", "PSTL+V", "SYCL+DPCPP"] {
        let p = average_pp(other);
        assert!(p < hip.max(acpp), "{other} average {p} beats the leaders");
    }
}

#[test]
fn abstract_claim_cuda_wins_nvidia_only() {
    // "If we only consider NVIDIA platforms, CUDA would be the winner
    // with 0.97."
    for gb in [10.0, 30.0] {
        let (m, platforms) = matrix_for(gb);
        let nvidia: Vec<String> = platforms
            .iter()
            .filter(|p| p.as_str() != "MI250X")
            .cloned()
            .collect();
        let (winner, p) = subsets::subset_winner(&m, &nvidia).expect("someone runs on NVIDIA");
        assert_eq!(winner, "CUDA", "{gb} GB");
        assert!(p > 0.95, "{gb} GB: CUDA NVIDIA-only P = {p}");
    }
}

#[test]
fn abstract_claim_pstl_vendor_scores_mid_060s() {
    // "The tuning-oblivious C++ PSTL achieves 0.62 when coupled with
    // vendor-specific compilers."
    let p = average_pp("PSTL+V");
    assert!(
        (0.5..0.78).contains(&p),
        "PSTL+V average P = {p} (paper 0.62)"
    );
}

#[test]
fn conclusion_claim_omp_vendor_rules_mi250x() {
    // "OpenMP is the most performant on AMD MI250X when compiled with
    // amdclang++."
    for gb in [10.0, 30.0, 60.0] {
        let layout = SystemLayout::from_gb(gb);
        let mi = platform_by_name("MI250X").unwrap();
        let mut best: Option<(String, f64)> = None;
        for fw in all_frameworks() {
            if let Some(b) = iteration_time(&layout, &fw, &mi, &SimConfig::default()) {
                if best.as_ref().is_none_or(|(_, t)| b.seconds < *t) {
                    best = Some((fw.name.clone(), b.seconds));
                }
            }
        }
        assert_eq!(best.unwrap().0, "OMP+V", "{gb} GB");
    }
}

#[test]
fn conclusion_claim_tuning_matters_for_tunable_frameworks() {
    // "In the Gaia AVU-GSR case, tuning kernel parameters is fundamental
    // ... Programming frameworks, such as C++ PSTL, for which this is not
    // possible, usually have lower performance portability values."
    let (m, platforms) = matrix_for(10.0);
    let tunable_best = ["HIP", "SYCL+ACPP"]
        .iter()
        .map(|f| m.pp(f, &platforms))
        .fold(0.0f64, f64::max);
    for pstl in ["PSTL+ACPP", "PSTL+V"] {
        let p = m.pp(pstl, &platforms);
        assert!(
            p < tunable_best - 0.1,
            "{pstl} ({p}) too close to the tunable frameworks ({tunable_best})"
        );
    }
}

#[test]
fn leave_one_out_diagnoses_each_frameworks_bottleneck() {
    let (m, platforms) = matrix_for(10.0);
    // CUDA's bottleneck is trivially the AMD platform (P: 0 → positive).
    let (worst, improved) = subsets::bottleneck_platform(&m, "CUDA", &platforms).unwrap();
    assert_eq!(worst, "MI250X");
    assert!(improved > 0.9);
    // OMP+LLVM's bottleneck is the T4 (its near-broken sm_75 codegen).
    let (worst, improved) = subsets::bottleneck_platform(&m, "OMP+LLVM", &platforms).unwrap();
    assert_eq!(worst, "T4");
    assert!(improved > 2.0 * m.pp("OMP+LLVM", &platforms));
}

#[test]
fn artifact_claim_runs_are_fast() {
    // Appendix A2: "A single execution of solvergaiaSim (100 iterations
    // ...) should not exceed 5 minutes" — every modeled cell obeys it
    // with wide margin.
    for gb in [10.0, 30.0, 60.0] {
        let layout = SystemLayout::from_gb(gb);
        for fw in all_frameworks() {
            for p in all_platforms() {
                if let Some(b) = iteration_time(&layout, &fw, &p, &SimConfig::default()) {
                    assert!(
                        100.0 * b.seconds < 300.0,
                        "{} on {} at {gb} GB: 100 iterations take {}s",
                        fw.name,
                        p.name,
                        100.0 * b.seconds
                    );
                }
            }
        }
    }
}

#[test]
fn production_speedup_claim_holds_on_an_a100_class_checkpoint() {
    // §V-B: optimized CUDA is ~2× the production solver on a 42 GB
    // problem (Leonardo). Our A100 cannot hold 42 GB (40 GB device), so
    // the H100 plays the Leonardo role; the claim is the ratio.
    let layout = SystemLayout::from_gb(42.0);
    let h100 = platform_by_name("H100").unwrap();
    let opt = framework_by_name("CUDA").unwrap();
    let prod = framework_by_name("CUDA-production").unwrap();
    let t_opt = iteration_time(&layout, &opt, &h100, &SimConfig::default()).unwrap();
    let t_prod = iteration_time(&layout, &prod, &h100, &SimConfig::default()).unwrap();
    let speedup = t_prod.seconds / t_opt.seconds;
    assert!(
        (1.5..2.5).contains(&speedup),
        "speedup {speedup} (paper 2.0)"
    );
}
